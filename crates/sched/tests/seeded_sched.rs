//! Seeded randomized tests for the scheduling substrate.
//!
//! Originally proptest properties; now a deterministic `SplitMix64` seed
//! sweep so the workspace builds with no external dependencies.

use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::{Dfg, NodeId, OpKind, Retiming};
use rotsched_sched::validate::{check_dag_schedule, realizing_retiming};
use rotsched_sched::{
    minimal_wrap, simulate, ListScheduler, LoopSchedule, PriorityPolicy, ResourceSet,
};

const CASES: u64 = 192;

/// Small valid DFGs (forward zero-delay edges, delayed edges anywhere).
fn small_dfg(rng: &mut SplitMix64) -> Dfg {
    let n = rng.range_u32(2, 7) as usize;
    let mut g = Dfg::new("prop");
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let time = rng.range_u32(1, 2);
            let op = if time > 1 { OpKind::Mul } else { OpKind::Add };
            g.add_node(format!("v{i}"), op, time)
        })
        .collect();
    for i in 0..n {
        for j in 0..n {
            match rng.range_u32(0, 3) {
                1 if i < j => {
                    g.add_edge(ids[i], ids[j], 0).expect("forward edge");
                }
                2 if i != j => {
                    g.add_edge(ids[i], ids[j], 1).expect("delayed edge");
                }
                3 => {
                    g.add_edge(ids[i], ids[j], 2).expect("delayed edge");
                }
                _ => {}
            }
        }
    }
    g
}

fn resource_config(rng: &mut SplitMix64) -> (u32, u32, bool) {
    (rng.range_u32(1, 3), rng.range_u32(1, 3), rng.chance(0.5))
}

#[test]
fn full_schedules_are_always_legal() {
    let policies = [
        PriorityPolicy::DescendantCount,
        PriorityPolicy::PathHeight,
        PriorityPolicy::Mobility,
        PriorityPolicy::InputOrder,
    ];
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let policy = policies[rng.index(policies.len())];
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::new(policy)
            .schedule(&g, None, &res)
            .expect("valid graphs schedule");
        assert!(
            check_dag_schedule(&g, None, &s, &res).is_ok(),
            "seed {seed}"
        );
        assert!(s.is_complete(), "seed {seed}");
    }
}

#[test]
fn partial_reschedule_never_moves_fixed_nodes() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let sched = ListScheduler::default();
        let mut s = sched.schedule(&g, None, &res).expect("schedulable");
        let free: Vec<NodeId> = g.node_ids().filter(|_| rng.chance(0.5)).collect();
        let fixed_before: Vec<_> = g
            .node_ids()
            .filter(|v| !free.contains(v))
            .map(|v| (v, s.start(v)))
            .collect();
        // Greedy list scheduling may box a freed node in between fixed
        // neighbors (another free node can take its only slot); that is
        // reported as NoFeasibleSlot, never as a corrupted schedule.
        match sched.reschedule(&g, None, &res, &mut s, &free) {
            Ok(()) => {
                for (v, before) in fixed_before {
                    assert_eq!(s.start(v), before, "seed {seed}: fixed node {v} moved");
                }
                assert!(
                    check_dag_schedule(&g, None, &s, &res).is_ok(),
                    "seed {seed}"
                );
            }
            Err(rotsched_sched::SchedError::NoFeasibleSlot { .. }) => {
                // Fixed nodes still must not have moved.
                for (v, before) in fixed_before {
                    assert_eq!(s.start(v), before, "seed {seed}: fixed node {v} moved");
                }
            }
            Err(other) => panic!("seed {seed}: unexpected error: {other}"),
        }
    }
}

#[test]
fn wrapped_length_never_exceeds_unwrapped() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        let w = minimal_wrap(&g, None, &s, &res).expect("legal schedules wrap");
        assert!(w.kernel_length <= s.length(&g), "seed {seed}");
        assert!(w.kernel_length >= 1, "seed {seed}");
    }
}

#[test]
fn realizing_retiming_certifies_list_schedules() {
    for seed in 0..CASES {
        let g = small_dfg(&mut SplitMix64::new(seed));
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        // A DAG schedule of G is realized by the zero retiming; the
        // solver must find one (possibly another) that is legal and
        // realizes the schedule.
        let r = realizing_retiming(&g, &s).expect("DAG schedules are static schedules");
        assert!(r.is_legal(&g), "seed {seed}");
        assert!(
            check_dag_schedule(&g, Some(&r), &s, &res).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn unpipelined_simulation_always_passes() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let iterations = rng.range_u32(1, 5);
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        let len = s.length(&g).max(1);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let report = simulate(&g, &ls, &res, iterations).expect("sequential pipeline is correct");
        assert_eq!(
            report.executions,
            g.node_count() * iterations as usize,
            "seed {seed}"
        );
    }
}
