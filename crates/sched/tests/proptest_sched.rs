//! Property-based tests for the scheduling substrate.

use proptest::prelude::*;
use rotsched_dfg::{Dfg, NodeId, OpKind, Retiming};
use rotsched_sched::validate::{check_dag_schedule, realizing_retiming};
use rotsched_sched::{
    minimal_wrap, simulate, ListScheduler, LoopSchedule, PriorityPolicy, ResourceSet,
};

/// Small valid DFGs (forward zero-delay edges, delayed edges anywhere).
fn small_dfg() -> impl Strategy<Value = Dfg> {
    (2_usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0_u8..4, n * n),
            proptest::collection::vec(1_u32..3, n),
        )
            .prop_map(|(n, kinds, times)| {
                let mut g = Dfg::new("prop");
                let ids: Vec<NodeId> = (0..n)
                    .map(|i| {
                        let op = if times[i] > 1 { OpKind::Mul } else { OpKind::Add };
                        g.add_node(format!("v{i}"), op, times[i])
                    })
                    .collect();
                for i in 0..n {
                    for j in 0..n {
                        match kinds[i * n + j] {
                            1 if i < j => {
                                g.add_edge(ids[i], ids[j], 0).expect("forward edge");
                            }
                            2 if i != j => {
                                g.add_edge(ids[i], ids[j], 1).expect("delayed edge");
                            }
                            3 => {
                                g.add_edge(ids[i], ids[j], 2).expect("delayed edge");
                            }
                            _ => {}
                        }
                    }
                }
                g
            })
    })
}

fn resource_config() -> impl Strategy<Value = (u32, u32, bool)> {
    (1_u32..4, 1_u32..4, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn full_schedules_are_always_legal(
        g in small_dfg(),
        (adders, mults, pipelined) in resource_config(),
        policy_idx in 0_usize..4,
    ) {
        let policies = [
            PriorityPolicy::DescendantCount,
            PriorityPolicy::PathHeight,
            PriorityPolicy::Mobility,
            PriorityPolicy::InputOrder,
        ];
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::new(policies[policy_idx])
            .schedule(&g, None, &res)
            .expect("valid graphs schedule");
        prop_assert!(check_dag_schedule(&g, None, &s, &res).is_ok());
        prop_assert!(s.is_complete());
    }

    #[test]
    fn partial_reschedule_never_moves_fixed_nodes(
        g in small_dfg(),
        (adders, mults, pipelined) in resource_config(),
        free_mask in proptest::collection::vec(any::<bool>(), 2..8),
    ) {
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let sched = ListScheduler::default();
        let mut s = sched.schedule(&g, None, &res).expect("schedulable");
        let free: Vec<NodeId> = g
            .node_ids()
            .filter(|v| *free_mask.get(v.index()).unwrap_or(&false))
            .collect();
        let fixed_before: Vec<_> = g
            .node_ids()
            .filter(|v| !free.contains(v))
            .map(|v| (v, s.start(v)))
            .collect();
        // Greedy list scheduling may box a freed node in between fixed
        // neighbors (another free node can take its only slot); that is
        // reported as NoFeasibleSlot, never as a corrupted schedule.
        match sched.reschedule(&g, None, &res, &mut s, &free) {
            Ok(()) => {
                for (v, before) in fixed_before {
                    prop_assert_eq!(s.start(v), before, "fixed node {} moved", v);
                }
                prop_assert!(check_dag_schedule(&g, None, &s, &res).is_ok());
            }
            Err(rotsched_sched::SchedError::NoFeasibleSlot { .. }) => {
                // Fixed nodes still must not have moved.
                for (v, before) in fixed_before {
                    prop_assert_eq!(s.start(v), before, "fixed node {} moved", v);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }

    #[test]
    fn wrapped_length_never_exceeds_unwrapped(
        g in small_dfg(),
        (adders, mults, pipelined) in resource_config(),
    ) {
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::default().schedule(&g, None, &res).expect("schedulable");
        let w = minimal_wrap(&g, None, &s, &res).expect("legal schedules wrap");
        prop_assert!(w.kernel_length <= s.length(&g));
        prop_assert!(w.kernel_length >= 1);
    }

    #[test]
    fn realizing_retiming_certifies_list_schedules(g in small_dfg()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let s = ListScheduler::default().schedule(&g, None, &res).expect("schedulable");
        // A DAG schedule of G is realized by the zero retiming; the
        // solver must find one (possibly another) that is legal and
        // realizes the schedule.
        let r = realizing_retiming(&g, &s).expect("DAG schedules are static schedules");
        prop_assert!(r.is_legal(&g));
        prop_assert!(check_dag_schedule(&g, Some(&r), &s, &res).is_ok());
    }

    #[test]
    fn unpipelined_simulation_always_passes(
        g in small_dfg(),
        (adders, mults, pipelined) in resource_config(),
        iterations in 1_u32..6,
    ) {
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let s = ListScheduler::default().schedule(&g, None, &res).expect("schedulable");
        let len = s.length(&g).max(1);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let report = simulate(&g, &ls, &res, iterations).expect("sequential pipeline is correct");
        prop_assert_eq!(report.executions, g.node_count() * iterations as usize);
    }
}
