//! Seeded randomized tests for the extension modules: chained scheduling,
//! register pressure, and datapath binding.
//!
//! Originally proptest properties; now a deterministic `SplitMix64` seed
//! sweep so the workspace builds with no external dependencies.

use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::{Dfg, NodeId, OpKind, Retiming};
use rotsched_sched::chaining::check_chained_schedule;
use rotsched_sched::{
    bind_datapath, register_pressure, ChainTiming, ChainedScheduler, ListScheduler, LoopSchedule,
    ResourceSet,
};

const CASES: u64 = 128;

/// Small valid DFGs with mixed op durations (in time units for the
/// chained tests; the unit interpretation is the caller's).
fn small_dfg(rng: &mut SplitMix64, max_time: u32) -> Dfg {
    let n = rng.range_u32(2, 7) as usize;
    let times: Vec<u32> = (0..n).map(|_| rng.range_u32(1, max_time)).collect();
    let mean = times.iter().sum::<u32>() / n as u32;
    let mut g = Dfg::new("prop");
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let op = if times[i] > mean {
                OpKind::Mul
            } else {
                OpKind::Add
            };
            g.add_node(format!("v{i}"), op, times[i])
        })
        .collect();
    for i in 0..n {
        for j in 0..n {
            match rng.range_u32(0, 3) {
                1 if i < j => {
                    g.add_edge(ids[i], ids[j], 0).expect("forward edge");
                }
                2 if i != j => {
                    g.add_edge(ids[i], ids[j], 1).expect("delayed edge");
                }
                3 => {
                    g.add_edge(ids[i], ids[j], 2).expect("delayed edge");
                }
                _ => {}
            }
        }
    }
    g
}

fn resource_config(rng: &mut SplitMix64) -> (u32, u32) {
    (rng.range_u32(1, 3), rng.range_u32(1, 3))
}

/// Chained schedules always validate and stay within the honest bounds:
/// at least the per-class occupancy bound, at most the fully-serialized
/// step count. (Chained and unchained list scheduling are different
/// greedy heuristics — neither dominates the other in general, so no
/// cross-comparison is asserted.)
#[test]
fn chained_schedules_validate_and_respect_bounds() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng, 60);
        let (adders, mults) = resource_config(&mut rng);
        let res = ResourceSet::adders_multipliers(adders, mults, false);
        let timing = ChainTiming::new(40);
        let chained = ChainedScheduler::default()
            .schedule(&g, None, &res, &timing)
            .expect("schedulable");
        check_chained_schedule(&g, None, &chained, &res, &timing).expect("valid");

        let len = chained.length(&g, &timing);
        // Upper bound: every op serialized into its own step span.
        let serialized: u32 = g.nodes().map(|(_, n)| timing.steps_for(n.time())).sum();
        assert!(len <= serialized, "seed {seed}");
        // Lower bound: the busiest class's step occupancy over its units.
        for class in res.classes() {
            let occupancy: u32 = g
                .nodes()
                .filter(|(_, n)| class.executes(n.op()))
                .map(|(_, n)| timing.steps_for(n.time()))
                .sum();
            if class.count() > 0 && occupancy > 0 {
                assert!(len >= occupancy.div_ceil(class.count()), "seed {seed}");
            }
        }
    }
}

/// Register binding always allocates at least MAXLIVE registers and
/// never assigns two overlapping lifetimes to the same register for
/// single-kernel lifetimes.
#[test]
fn binding_is_consistent_with_register_pressure() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng, 2);
        let (adders, mults) = resource_config(&mut rng);
        let res = ResourceSet::adders_multipliers(adders, mults, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        let len = s.length(&g).max(1);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        let binding = bind_datapath(&g, &ls, &res).expect("bindable");
        assert!(binding.register_count >= report.max_live, "seed {seed}");
        assert_eq!(binding.max_live, report.max_live, "seed {seed}");
        // Every node with a consumer after its production got a register.
        for v in g.node_ids() {
            let has_late_consumer = g.out_edges(v).iter().any(|&e| {
                let edge = g.edge(e);
                let su = ls.schedule().start(v).expect("complete");
                let sv = ls.schedule().start(edge.to()).expect("complete");
                i64::from(sv) + i64::from(edge.delays()) * i64::from(len)
                    > i64::from(su) + i64::from(g.node(v).time().max(1)) - 1
            });
            if has_late_consumer {
                assert!(binding.register(v).is_some(), "seed {seed}: {v} unbound");
            }
        }
    }
}

/// Unit binding never double-books an instance within the folded kernel.
#[test]
fn unit_binding_has_no_conflicts() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng, 2);
        let (adders, mults) = resource_config(&mut rng);
        let res = ResourceSet::adders_multipliers(adders, mults, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        let len = s.length(&g).max(1);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let binding = bind_datapath(&g, &ls, &res).expect("bindable");
        let mut seen = std::collections::HashSet::new();
        for v in g.node_ids() {
            let (class_idx, instance) = binding.unit(v);
            let class = &res.classes()[class_idx];
            assert!(instance < class.count(), "seed {seed}");
            let start = ls.schedule().start(v).expect("complete");
            for off in class.occupancy(g.node(v).time()) {
                let folded = (start + off - 1) % len + 1;
                assert!(
                    seen.insert((class_idx, instance, folded)),
                    "seed {seed}: instance ({class_idx},{instance}) double-booked at folded step {folded}"
                );
            }
        }
    }
}

/// Register pressure per slot sums the folded lifetimes exactly: total
/// lifetime equals the sum over slots.
#[test]
fn per_slot_pressure_sums_to_total_lifetime() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let g = small_dfg(&mut rng, 2);
        let res = ResourceSet::adders_multipliers(4, 4, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        let len = s.length(&g).max(1);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        let slot_sum: u64 = report.per_slot.iter().map(|&x| u64::from(x)).sum();
        assert_eq!(slot_sum, report.total_lifetime, "seed {seed}");
    }
}
