//! Functional-unit and register binding for a pipelined kernel —
//! the synthesis stage after scheduling.
//!
//! The paper's conclusion motivates keeping *many* optimal schedules:
//! "through a sequence of rotations, many optimal schedules can be
//! found, which expose more chances of optimization for the following
//! stages of high-level synthesis, e.g. connection binding, allocation
//! or data-path generation." This module implements those following
//! stages for a steady-state kernel:
//!
//! * **unit binding** — assign every operation to a concrete unit
//!   instance of its class such that no instance is used twice in the
//!   same (cyclic) control step; greedy interval coloring on the folded
//!   reservation intervals.
//! * **register binding** — assign every live value to a concrete
//!   register by the cyclic left-edge algorithm, using the lifetimes of
//!   [`register_pressure`](crate::registers::register_pressure); the
//!   register count achieved equals MAXLIVE plus any fragmentation
//!   (reported separately so schedules can be compared).
//!
//! Different optimal schedules genuinely produce different datapaths
//! here, which is what makes the `Q` set of rotation scheduling useful.

use std::collections::HashMap;

use rotsched_dfg::{Dfg, NodeId};

use crate::error::SchedError;
use crate::prologue::LoopSchedule;
use crate::resources::ResourceSet;

/// The bound datapath of one kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatapathBinding {
    /// `unit_of[v] = (class index, instance index)` for every node.
    pub unit_of: Vec<(usize, u32)>,
    /// `register_of[v] = Some(register index)` for nodes whose value
    /// must be stored (has consumers after production).
    pub register_of: Vec<Option<u32>>,
    /// Total registers allocated.
    pub register_count: u32,
    /// The MAXLIVE lower bound on registers (fragmentation =
    /// `register_count - max_live`).
    pub max_live: u32,
}

impl DatapathBinding {
    /// The unit instance of one node.
    #[must_use]
    pub fn unit(&self, v: NodeId) -> (usize, u32) {
        self.unit_of[v.index()]
    }

    /// The register holding `v`'s value, if it needs one.
    #[must_use]
    pub fn register(&self, v: NodeId) -> Option<u32> {
        self.register_of[v.index()]
    }
}

/// Binds a pipelined kernel to concrete units and registers.
///
/// # Errors
///
/// Returns [`SchedError::ResourceOverflow`] if the kernel demands more
/// simultaneous units of a class than exist (a schedule produced by this
/// crate's schedulers never does) and [`SchedError::UnboundOp`] for an
/// operation with no class.
pub fn bind_datapath(
    dfg: &Dfg,
    loop_schedule: &LoopSchedule,
    resources: &ResourceSet,
) -> Result<DatapathBinding, SchedError> {
    let ii = loop_schedule.kernel_length();
    let schedule = loop_schedule.schedule();

    // --- Unit binding: cyclic interval coloring per class. -------------
    // busy[(class, instance, folded step)] -> already taken.
    let mut busy: HashMap<(usize, u32, u32), NodeId> = HashMap::new();
    let mut unit_of = vec![(usize::MAX, u32::MAX); dfg.node_count()];
    // Deterministic order: by start step, then node id.
    let mut order: Vec<NodeId> = dfg.node_ids().collect();
    order.sort_by_key(|&v| (schedule.start(v), v));
    for v in order {
        let node = dfg.node(v);
        let class_id = resources
            .class_for(node.op())
            .ok_or(SchedError::UnboundOp { node: v })?;
        let class = resources.class(class_id);
        let start = schedule
            .start(v)
            .ok_or(SchedError::Unscheduled { node: v })?;
        let folded: Vec<u32> = class
            .occupancy(node.time())
            .map(|off| (start + off - 1) % ii + 1)
            .collect();
        let mut chosen = None;
        for instance in 0..class.count() {
            if folded
                .iter()
                .all(|&s| !busy.contains_key(&(class_id.index(), instance, s)))
            {
                chosen = Some(instance);
                break;
            }
        }
        let Some(instance) = chosen else {
            return Err(SchedError::ResourceOverflow {
                class: class.name().to_owned(),
                cs: folded.first().copied().unwrap_or(1),
                used: class.count() + 1,
                limit: class.count(),
            });
        };
        for &s in &folded {
            busy.insert((class_id.index(), instance, s), v);
        }
        unit_of[v.index()] = (class_id.index(), instance);
    }

    // --- Register binding: cyclic left-edge on value lifetimes. --------
    // Lifetime of v's value in absolute steps (avail, death], as in the
    // register-pressure analysis.
    let r = loop_schedule.retiming();
    let iii = i64::from(ii);
    let mut lifetimes: Vec<(NodeId, i64, i64)> = Vec::new(); // (v, avail, death)
    for v in dfg.node_ids() {
        let su = i64::from(schedule.start(v).expect("complete"));
        let avail = -r.of(v) * iii + su + i64::from(dfg.node(v).time().max(1)) - 1;
        let mut death = avail;
        for &e in dfg.out_edges(v) {
            let edge = dfg.edge(e);
            let w = edge.to();
            let sw = i64::from(schedule.start(w).expect("complete"));
            death = death.max((i64::from(edge.delays()) - r.of(w)) * iii + sw);
        }
        if death > avail {
            lifetimes.push((v, avail, death));
        }
    }
    // Greedy assignment: registers are per-(value copy); a value with a
    // lifetime spanning q kernels needs q registers cycling. We unroll
    // copies: copy c of v occupies folded interval shifted by c*ii.
    let mut register_of = vec![None; dfg.node_count()];
    // reg_busy[reg] = set of (folded step, multiplicity) — track per
    // step usage booleans per register.
    let mut reg_busy: Vec<Vec<bool>> = Vec::new();
    let mut sorted = lifetimes.clone();
    sorted.sort_by_key(|&(v, avail, death)| (avail, core::cmp::Reverse(death), v));
    let mut register_count = 0_u32;
    for (v, avail, death) in sorted {
        let copies = u32::try_from((death - avail + iii - 1) / iii).expect("copies fit");
        // Each copy needs its own register over its folded span; assign
        // the FIRST copy's register id as the node's representative.
        let mut first_reg = None;
        for c in 0..copies {
            let a = avail + i64::from(c) * iii;
            let d = (a + iii).min(death);
            // Folded steps covered by (a, d] within one kernel.
            let steps: Vec<u32> = (a + 1..=d)
                .map(|x| u32::try_from((x - 1).rem_euclid(iii) + 1).expect("slot"))
                .collect();
            let mut chosen = None;
            for (reg, slots) in reg_busy.iter().enumerate() {
                if steps.iter().all(|&s| !slots[s as usize - 1]) {
                    chosen = Some(reg);
                    break;
                }
            }
            let reg = chosen.unwrap_or_else(|| {
                reg_busy.push(vec![false; ii as usize]);
                register_count += 1;
                reg_busy.len() - 1
            });
            for &s in &steps {
                reg_busy[reg][s as usize - 1] = true;
            }
            first_reg.get_or_insert(u32::try_from(reg).expect("register index fits"));
        }
        register_of[v.index()] = first_reg;
    }

    let report = crate::registers::register_pressure(dfg, loop_schedule);
    Ok(DatapathBinding {
        unit_of,
        register_of,
        register_count,
        max_live: report.max_live,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use rotsched_dfg::{DfgBuilder, OpKind, Retiming};

    fn bound(g: &Dfg, kernel: u32, starts: &[(&str, u32)], res: &ResourceSet) -> DatapathBinding {
        let mut s = Schedule::empty(g);
        for &(name, cs) in starts {
            s.set(g.node_by_name(name).unwrap(), cs);
        }
        let ls = LoopSchedule::new(kernel, s, Retiming::zero(g));
        bind_datapath(g, &ls, res).unwrap()
    }

    #[test]
    fn parallel_ops_get_distinct_instances() {
        let g = DfgBuilder::new("par")
            .nodes("a", 2, OpKind::Add, 1)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let b = bound(&g, 1, &[("a0", 1), ("a1", 1)], &res);
        let u0 = b.unit(g.node_by_name("a0").unwrap());
        let u1 = b.unit(g.node_by_name("a1").unwrap());
        assert_eq!(u0.0, u1.0, "same class");
        assert_ne!(u0.1, u1.1, "different instances");
    }

    #[test]
    fn sequential_ops_share_an_instance() {
        let g = DfgBuilder::new("seq")
            .nodes("a", 2, OpKind::Add, 1)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let b = bound(&g, 2, &[("a0", 1), ("a1", 2)], &res);
        assert_eq!(
            b.unit(g.node_by_name("a0").unwrap()),
            b.unit(g.node_by_name("a1").unwrap())
        );
    }

    #[test]
    fn cyclic_overlap_of_multicycle_ops_is_respected() {
        // A 2-step mult in a 2-step kernel occupies its unit in BOTH
        // folded steps; a second mult cannot share the instance.
        let g = DfgBuilder::new("mc")
            .nodes("m", 2, OpKind::Mul, 2)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(0, 2, false);
        let b = bound(&g, 2, &[("m0", 1), ("m1", 2)], &res);
        let u0 = b.unit(g.node_by_name("m0").unwrap());
        let u1 = b.unit(g.node_by_name("m1").unwrap());
        assert_ne!(u0.1, u1.1);
    }

    #[test]
    fn register_binding_reaches_maxlive_on_chains() {
        let g = DfgBuilder::new("chain")
            .nodes("a", 3, OpKind::Add, 1)
            .chain(&["a0", "a1", "a2"])
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let b = bound(&g, 3, &[("a0", 1), ("a1", 2), ("a2", 3)], &res);
        // a0's value lives (1,2], a1's (2,3]; they can share one register
        // in a cyclic schedule only if their folded spans are disjoint —
        // they are (slots 2 and 3).
        assert_eq!(b.max_live, 1);
        assert_eq!(b.register_count, b.max_live);
        assert!(b.register(g.node_by_name("a2").unwrap()).is_none());
    }

    #[test]
    fn solved_schedule_binds_within_its_resources() {
        // End-to-end on a small recurrence: list-schedule, then bind.
        let g = DfgBuilder::new("iir")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .edge("a", "m", 1)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let s = crate::list::ListScheduler::default()
            .schedule(&g, None, &res)
            .unwrap();
        let len = s.length(&g);
        let ls = LoopSchedule::new(len, s, Retiming::zero(&g));
        let b = bind_datapath(&g, &ls, &res).unwrap();
        assert_eq!(
            b.unit(g.node_by_name("m").unwrap()).0,
            1,
            "multiplier class"
        );
        assert_eq!(b.unit(g.node_by_name("a").unwrap()).0, 0, "adder class");
        assert!(b.register_count >= b.max_live);
    }

    #[test]
    fn overlapping_lifetimes_need_more_registers() {
        // Two producers whose values both wait for a late consumer.
        let g = DfgBuilder::new("wide")
            .node("p0", OpKind::Add, 1)
            .node("p1", OpKind::Add, 1)
            .node("c", OpKind::Add, 1)
            .wire("p0", "c")
            .wire("p1", "c")
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let b = bound(&g, 3, &[("p0", 1), ("p1", 1), ("c", 3)], &res);
        assert_eq!(b.max_live, 2);
        assert_eq!(b.register_count, 2);
        let r0 = b.register(g.node_by_name("p0").unwrap());
        let r1 = b.register(g.node_by_name("p1").unwrap());
        assert_ne!(r0, r1);
    }
}
