//! Error types for scheduling.

use core::fmt;

use rotsched_dfg::{DfgError, NodeId};

/// Errors produced while constructing or validating schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The underlying graph (or the retimed graph) cannot be scheduled.
    Graph(DfgError),
    /// An operation kind has no resource class to execute on.
    UnboundOp {
        /// The node whose operation is unbound.
        node: NodeId,
    },
    /// A node is missing from a schedule that must be complete.
    Unscheduled {
        /// The missing node.
        node: NodeId,
    },
    /// A zero-delay precedence `u → v` is violated: `s(u) + t(u) > s(v)`.
    PrecedenceViolated {
        /// Producer.
        from: NodeId,
        /// Consumer.
        to: NodeId,
        /// Producer finish step (exclusive).
        finish: u32,
        /// Consumer start step.
        start: u32,
    },
    /// More units of a class are needed in a control step than exist.
    ResourceOverflow {
        /// Name of the over-subscribed class.
        class: String,
        /// The control step.
        cs: u32,
        /// Units demanded.
        used: u32,
        /// Units available.
        limit: u32,
    },
    /// No legal placement exists for a node (e.g. partial rescheduling
    /// boxed in by fixed successors).
    NoFeasibleSlot {
        /// The node that could not be placed.
        node: NodeId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Graph(e) => write!(f, "graph cannot be scheduled: {e}"),
            SchedError::UnboundOp { node } => {
                write!(f, "no resource class executes the operation of node {node}")
            }
            SchedError::Unscheduled { node } => {
                write!(f, "node {node} is not scheduled")
            }
            SchedError::PrecedenceViolated {
                from,
                to,
                finish,
                start,
            } => write!(
                f,
                "precedence violated: {from} finishes at step {finish} but {to} starts at step {start}"
            ),
            SchedError::ResourceOverflow {
                class,
                cs,
                used,
                limit,
            } => write!(
                f,
                "resource overflow: {used} {class} units needed in control step {cs}, only {limit} available"
            ),
            SchedError::NoFeasibleSlot { node } => {
                write!(f, "no feasible control step for node {node}")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for SchedError {
    fn from(e: DfgError) -> Self {
        SchedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_precedence() {
        let e = SchedError::PrecedenceViolated {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            finish: 5,
            start: 3,
        };
        assert!(e.to_string().contains("finishes at step 5"));
    }

    #[test]
    fn display_resource_overflow() {
        let e = SchedError::ResourceOverflow {
            class: "multiplier".into(),
            cs: 4,
            used: 2,
            limit: 1,
        };
        assert!(e.to_string().contains("2 multiplier units"));
    }

    #[test]
    fn graph_error_converts() {
        let ge = DfgError::ZeroTimeNode {
            node: NodeId::from_index(2),
        };
        let se: SchedError = ge.clone().into();
        assert!(matches!(se, SchedError::Graph(inner) if inner == ge));
    }
}
