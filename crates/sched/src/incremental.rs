//! Incremental rescheduling state carried across rotation steps.
//!
//! The paper's complexity claim (Section 3.3) is that one rotation costs
//! `O(|R||V|)` — only the rotated prefix `R` is rescheduled against the
//! fixed remainder. The from-scratch [`ListScheduler::reschedule`] meets
//! the *placement* bound but pays `O(V+E)` per call in setup: it rebuilds
//! the reservation table from every fixed node, re-derives the zero-delay
//! edge set, revalidates the topological order, and rebinds every
//! operation. [`SchedContext`] hoists all of that out of the loop:
//!
//! * the **reservation table** is maintained incrementally — a rotation
//!   releases only the prefix nodes' slots, and schedule normalization
//!   becomes an O(1) origin shift ([`ReservationTable::shift_origin`]);
//! * the **zero-delay edge set** is repaired locally — retiming the set
//!   `R` can only flip edges incident to `R`, so the [`ZeroSet`] (and its
//!   XOR fingerprint, the weight-cache key) updates in O(|R|·deg);
//! * **priority weights** are repaired instead of recomputed — only the
//!   reflexive ancestors of a flipped edge's source can change weight,
//!   so the descendant bitsets / path heights of exactly those nodes are
//!   rebuilt; repaired states are memoized by the zero-set fingerprint,
//!   so the periodic part of a rotation sequence re-activates them in
//!   O(1) (the other policies fall back to the fingerprint-keyed
//!   scheduler cache);
//! * the **topological sanity check** is skipped — a legal retiming
//!   preserves every cycle's delay sum, so the zero-delay subgraph stays
//!   acyclic by construction (`debug_assert`ed, not recomputed).
//!
//! Placement itself funnels through the same [`place_free`] core as the
//! from-scratch path, which is what makes the incremental results
//! bit-identical — cross-checked by `debug_assert`s against full
//! recomputation in debug builds.

use rotsched_dfg::analysis::topo::is_zero_delay_under;
use rotsched_dfg::{Dfg, EdgeId, NodeId, NodeMap, Retiming};

use crate::error::SchedError;
use crate::list::{
    bind_classes, build_fixed_table, place_free, ListScheduler, PlaceInputs, PlaceScratch, ZeroSet,
};
use crate::priority::{descendant_sets, PriorityPolicy};
use crate::reservation::ReservationTable;
use crate::resources::{ResourceClassId, ResourceSet};
use crate::schedule::Schedule;

/// Policy-dependent weight state that can be repaired locally.
#[derive(Clone, Debug)]
enum WeightsState {
    /// Descendant counts with the underlying per-node descendant bitsets
    /// (`words` words per node, row-major), so a dirty node's row is
    /// rebuilt from its (already-correct) successors' rows.
    Descendants {
        words: usize,
        sets: Vec<u64>,
        weights: NodeMap<u64>,
    },
    /// Path heights; repaired bottom-up over the dirty set.
    Heights { weights: NodeMap<u64> },
}

/// A memoized weight state, keyed by the exact zero-delay set it was
/// computed for. Rotation sequences revisit zero-delay sets (the state
/// space is eventually periodic), so repaired states are kept and
/// re-activated by fingerprint instead of repaired again — on dense
/// graphs the dirty region of a single rotation can approach the whole
/// graph, and the memo turns that repeated cost into an O(1) swap.
#[derive(Clone, Debug)]
struct WeightsEntry {
    zero: ZeroSet,
    state: WeightsState,
}

/// Retained [`WeightsEntry`]s; covers the typical rotation period (one
/// full revolution of the node set) with room to spare.
const WEIGHT_MEMO_CAP: usize = 64;

/// Cache-effectiveness counters of one [`SchedContext`], maintained by
/// the incremental hooks and exposed so the search engine's observer
/// layer can report per-phase hit rates without instrumenting the hot
/// path itself.
///
/// A *hit* is a retiming delta whose new zero-delay set re-activated a
/// memoized weight state in O(1); a *miss* had to repair the weights
/// locally (and memoize the result). Policies without a local repair
/// rule (mobility, input order) keep both counters at zero — they go
/// through the scheduler's fingerprint-keyed cache instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Retiming deltas answered by re-activating a memoized weight state.
    pub weight_memo_hits: u64,
    /// Retiming deltas that had to repair (and memoize) a weight state.
    pub weight_memo_misses: u64,
}

impl CacheStats {
    /// Counter-wise difference `self - earlier`, for per-phase deltas.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            weight_memo_hits: self.weight_memo_hits - earlier.weight_memo_hits,
            weight_memo_misses: self.weight_memo_misses - earlier.weight_memo_misses,
        }
    }
}

/// Persistent scheduling state for a run of rotations over one `(graph,
/// scheduler, resources)` triple.
///
/// The context must observe every mutation of the schedule it tracks:
/// [`SchedContext::release`] when a node's reservation is freed,
/// [`SchedContext::shift`] when the schedule is renumbered,
/// [`SchedContext::apply_retiming_delta`] after the retiming changed on a
/// node set, and [`SchedContext::reschedule`] to place freed nodes.
/// After a reschedule error the context is stale; rebuild it with
/// [`SchedContext::new`] before further use.
#[derive(Debug)]
pub struct SchedContext {
    policy: PriorityPolicy,
    /// Structure fingerprint of the graph this context was built for.
    graph: u64,
    class_of: NodeMap<ResourceClassId>,
    table: ReservationTable,
    zero: ZeroSet,
    /// Memoized weight states keyed by zero set; `active` indexes the
    /// entry matching the current `zero`. Empty for policies without a
    /// local repair rule (mobility, input order), which go through the
    /// scheduler's fingerprint-keyed cache on each reschedule instead.
    memo: Vec<WeightsEntry>,
    active: usize,
    scratch: PlaceScratch,
    /// Edge bitset + list of edges whose zero-delay status flipped in the
    /// current delta (cleared again before `apply_retiming_delta`
    /// returns).
    flipped: Vec<u64>,
    flips: Vec<EdgeId>,
    /// Node bitset + list of nodes whose weights need repair.
    dirty: Vec<u64>,
    dirty_list: Vec<NodeId>,
    stack: Vec<NodeId>,
    /// Dirty-restricted out-degrees for the children-first repair order.
    deg: NodeMap<u32>,
    /// Weight-memo effectiveness counters (see [`CacheStats`]).
    stats: CacheStats,
}

impl SchedContext {
    /// Builds the context for `schedule` under `retiming`: binds classes,
    /// reserves every scheduled node's slots, derives the zero-delay set
    /// and the policy's weight state.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::UnboundOp`] for an unbindable operation,
    /// [`SchedError::ResourceOverflow`] when `schedule` already violates
    /// the limits, and [`SchedError::Graph`] for a cyclic zero-delay
    /// subgraph.
    pub fn new(
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        retiming: Option<&Retiming>,
        schedule: &Schedule,
    ) -> Result<Self, SchedError> {
        let class_of = bind_classes(dfg, resources)?;
        let table = build_fixed_table(dfg, &class_of, resources, schedule)?;
        rotsched_dfg::analysis::zero_delay_topological_order(dfg, retiming)
            .map_err(SchedError::from)?;
        let zero = ZeroSet::compute(dfg, retiming);
        let state = match scheduler.policy() {
            PriorityPolicy::DescendantCount => {
                let (sets, weights) = descendant_sets(dfg, retiming).map_err(SchedError::from)?;
                Some(WeightsState::Descendants {
                    words: dfg.node_count().div_ceil(64),
                    sets,
                    weights,
                })
            }
            PriorityPolicy::PathHeight => Some(WeightsState::Heights {
                weights: PriorityPolicy::PathHeight
                    .weights(dfg, retiming)
                    .map_err(SchedError::from)?,
            }),
            _ => None,
        };
        let memo = state
            .map(|state| {
                vec![WeightsEntry {
                    zero: zero.clone(),
                    state,
                }]
            })
            .unwrap_or_default();
        Ok(SchedContext {
            policy: scheduler.policy(),
            graph: dfg.structure_fingerprint(),
            class_of,
            table,
            zero,
            memo,
            active: 0,
            scratch: PlaceScratch::new(dfg),
            flipped: vec![0_u64; dfg.edge_count().div_ceil(64)],
            flips: Vec::new(),
            dirty: vec![0_u64; dfg.node_count().div_ceil(64)],
            dirty_list: Vec::new(),
            stack: Vec::new(),
            deg: dfg.node_map(0_u32),
            stats: CacheStats::default(),
        })
    }

    /// The running weight-memo hit/miss counters of this context.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Releases `v`'s reservation; `cs` must be its current start step.
    /// Call before clearing `v` from the schedule.
    pub fn release(&mut self, dfg: &Dfg, resources: &ResourceSet, v: NodeId, cs: u32) {
        let class_id = self.class_of[v];
        let class = resources.class(class_id);
        let time = dfg.node(v).time();
        self.table
            .remove(class_id, class.occupancy(time).map(|off| cs + off));
    }

    /// Mirrors [`Schedule::shift`]`(delta)` on the reservation table in
    /// O(1) (an origin move, no data motion).
    pub fn shift(&mut self, delta: i64) {
        self.table.shift_origin(delta);
    }

    /// Repairs the zero-delay set and the weight state after the caller
    /// changed the retiming on exactly the nodes of `touched` (e.g. via
    /// [`Retiming::apply_set`]). Only edges incident to `touched` can
    /// change status, and only reflexive ancestors of a flipped edge's
    /// source can change weight, so the cost is proportional to the
    /// affected region, not the graph.
    pub fn apply_retiming_delta(&mut self, dfg: &Dfg, retiming: &Retiming, touched: &[NodeId]) {
        debug_assert!(self.flips.is_empty());
        // Flat SoA walk: an edge's new status is d(e) + r(u) − r(v) == 0,
        // read straight off the CSR delay arrays and the retiming slice.
        let csr = dfg.csr();
        let r = retiming.as_slice();
        let (in_ids, in_tails, in_delays) = (csr.in_edge_ids(), csr.in_tails(), csr.in_delays());
        let (out_ids, out_heads, out_delays) =
            (csr.out_edge_ids(), csr.out_heads(), csr.out_delays());
        for &v in touched {
            let rv = r[v.index()];
            for i in csr.in_range(v.index()) {
                let now = i64::from(in_delays[i]) + r[in_tails[i] as usize] - rv == 0;
                let e = in_ids[i];
                if self.zero.set(e, now) {
                    let i = e.index();
                    self.flipped[i / 64] |= 1 << (i % 64);
                    self.flips.push(e);
                }
            }
            for i in csr.out_range(v.index()) {
                let now = i64::from(out_delays[i]) + rv - r[out_heads[i] as usize] == 0;
                let e = out_ids[i];
                if self.zero.set(e, now) {
                    let i = e.index();
                    self.flipped[i / 64] |= 1 << (i % 64);
                    self.flips.push(e);
                }
            }
            debug_assert!(dfg
                .in_edges(v)
                .iter()
                .chain(dfg.out_edges(v))
                .all(|&e| self.zero.contains(e) == is_zero_delay_under(dfg, Some(retiming), e)));
        }
        if !self.flips.is_empty() && !self.memo.is_empty() {
            let key = self.zero.key();
            if let Some(i) = self
                .memo
                .iter()
                .position(|e| e.zero.key() == key && e.zero == self.zero)
            {
                // Re-activate the memoized state: an O(1) index move, no
                // copy, no repair.
                self.active = i;
                self.stats.weight_memo_hits += 1;
            } else {
                self.stats.weight_memo_misses += 1;
                let mut state = self.memo[self.active].state.clone();
                self.repair_weights(dfg, &mut state);
                self.memo.push(WeightsEntry {
                    zero: self.zero.clone(),
                    state,
                });
                self.active = self.memo.len() - 1;
                if self.memo.len() > WEIGHT_MEMO_CAP {
                    self.memo.remove(0);
                    self.active -= 1;
                }
            }
        }
        for &e in &self.flips {
            let i = e.index();
            self.flipped[i / 64] &= !(1 << (i % 64));
        }
        self.flips.clear();
    }

    /// Recomputes the weight state of exactly the nodes whose zero-delay
    /// subtree changed: the reflexive ancestors (over edges that are
    /// zero-delay before *or* after the delta) of each flipped edge's
    /// source, processed children-first over the new zero-delay DAG so a
    /// dirty node always reads already-repaired successors.
    fn repair_weights(&mut self, dfg: &Dfg, state: &mut WeightsState) {
        let SchedContext {
            zero,
            flipped,
            flips,
            dirty,
            dirty_list,
            stack,
            deg,
            ..
        } = self;
        let is_dirty =
            |dirty: &[u64], v: NodeId| (dirty[v.index() / 64] >> (v.index() % 64)) & 1 == 1;
        let csr = dfg.csr();
        let (in_ids, in_tails) = (csr.in_edge_ids(), csr.in_tails());
        let (out_ids, out_heads) = (csr.out_edge_ids(), csr.out_heads());
        let times = csr.times();

        // Upward closure from the flip sources. An edge that was zero
        // before the delta is either still zero or in `flipped`, so
        // `zero ∪ flipped` covers the union of the old and new DAGs.
        dirty_list.clear();
        stack.clear();
        let mark = |dirty: &mut Vec<u64>,
                    dirty_list: &mut Vec<NodeId>,
                    stack: &mut Vec<NodeId>,
                    v: NodeId| {
            if (dirty[v.index() / 64] >> (v.index() % 64)) & 1 == 0 {
                dirty[v.index() / 64] |= 1 << (v.index() % 64);
                dirty_list.push(v);
                stack.push(v);
            }
        };
        for &e in flips.iter() {
            mark(
                dirty,
                dirty_list,
                stack,
                NodeId::from_index(csr.edge_from()[e.index()] as usize),
            );
        }
        while let Some(v) = stack.pop() {
            for j in csr.in_range(v.index()) {
                let i = in_ids[j].index();
                if zero.contains(in_ids[j]) || (flipped[i / 64] >> (i % 64)) & 1 == 1 {
                    mark(
                        dirty,
                        dirty_list,
                        stack,
                        NodeId::from_index(in_tails[j] as usize),
                    );
                }
            }
        }

        // Children-first order via Kahn on the dirty-restricted new DAG.
        for &v in dirty_list.iter() {
            deg[v] = 0;
        }
        for &v in dirty_list.iter() {
            for j in csr.out_range(v.index()) {
                if zero.contains(out_ids[j])
                    && is_dirty(dirty, NodeId::from_index(out_heads[j] as usize))
                {
                    deg[v] += 1;
                }
            }
        }
        stack.clear();
        stack.extend(dirty_list.iter().copied().filter(|&v| deg[v] == 0));
        let mut processed = 0_usize;
        while let Some(v) = stack.pop() {
            match state {
                WeightsState::Descendants {
                    words,
                    sets,
                    weights,
                } => {
                    let words = *words;
                    let vi = v.index();
                    sets[vi * words..(vi + 1) * words].fill(0);
                    for j in csr.out_range(vi) {
                        if zero.contains(out_ids[j]) {
                            let w = out_heads[j] as usize;
                            sets[vi * words + w / 64] |= 1 << (w % 64);
                            for k in 0..words {
                                let bits = sets[w * words + k];
                                sets[vi * words + k] |= bits;
                            }
                        }
                    }
                    weights[v] = sets[vi * words..(vi + 1) * words]
                        .iter()
                        .map(|w| u64::from(w.count_ones()))
                        .sum();
                }
                WeightsState::Heights { weights } => {
                    let mut below = 0_u64;
                    for j in csr.out_range(v.index()) {
                        if zero.contains(out_ids[j]) {
                            below = below.max(weights[NodeId::from_index(out_heads[j] as usize)]);
                        }
                    }
                    weights[v] = below + u64::from(times[v.index()]);
                }
            }
            processed += 1;
            for j in csr.in_range(v.index()) {
                if zero.contains(in_ids[j]) {
                    let u = NodeId::from_index(in_tails[j] as usize);
                    if is_dirty(dirty, u) {
                        deg[u] -= 1;
                        if deg[u] == 0 {
                            stack.push(u);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(
            processed,
            dirty_list.len(),
            "dirty subgraph of a legal retiming is acyclic"
        );
        for &v in dirty_list.iter() {
            dirty[v.index() / 64] &= !(1 << (v.index() % 64));
        }
    }

    /// Places the nodes of `free` (already released via
    /// [`SchedContext::release`] and cleared from `schedule`) using the
    /// maintained table, zero-delay set and weights. Funnels through the
    /// same placement core as [`ListScheduler::reschedule`], so the
    /// result is bit-identical to a from-scratch call — `debug_assert`ed
    /// here against full recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoFeasibleSlot`] when a free node is boxed
    /// in by fixed successors (as the from-scratch path would); the
    /// context is stale afterwards.
    pub fn reschedule(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        schedule: &mut Schedule,
        free: &[NodeId],
    ) -> Result<(), SchedError> {
        debug_assert_eq!(
            self.policy,
            scheduler.policy(),
            "context/scheduler mismatch"
        );
        debug_assert_eq!(
            self.graph,
            dfg.structure_fingerprint(),
            "context/graph mismatch"
        );
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.zero,
                ZeroSet::compute(dfg, retiming),
                "incremental zero-delay set diverged"
            );
            assert!(
                rotsched_dfg::analysis::zero_delay_topological_order(dfg, retiming).is_ok(),
                "legal retimings keep the zero-delay subgraph acyclic"
            );
            let rebuilt = build_fixed_table(dfg, &self.class_of, resources, schedule)
                .expect("fixed part stayed feasible");
            assert!(
                self.table.same_usage(&rebuilt),
                "incremental reservation table diverged"
            );
        }

        let cached;
        let weights: &NodeMap<u64> = match self.memo.get(self.active) {
            Some(entry) => {
                debug_assert_eq!(entry.zero, self.zero, "active weight entry is stale");
                match &entry.state {
                    WeightsState::Descendants { weights, .. }
                    | WeightsState::Heights { weights } => weights,
                }
            }
            None => {
                cached = scheduler
                    .cached_weights_for(dfg, retiming, &self.zero)
                    .map_err(SchedError::from)?;
                &cached
            }
        };
        #[cfg(debug_assertions)]
        {
            let recomputed = self
                .policy
                .weights(dfg, retiming)
                .expect("weights computable on a legal retiming");
            assert_eq!(
                weights.as_slice(),
                recomputed.as_slice(),
                "incrementally repaired weights diverged"
            );
        }

        let inputs = PlaceInputs {
            dfg,
            zero: &self.zero,
            weights,
            class_of: &self.class_of,
            resources,
        };
        place_free(&inputs, &mut self.table, schedule, free, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    /// A small cyclic graph with a delayed back edge, so rotations have
    /// zero-delay flips to repair.
    fn ring() -> Dfg {
        DfgBuilder::new("ring")
            .node("a", OpKind::Add, 1)
            .node("b", OpKind::Mul, 2)
            .node("c", OpKind::Add, 1)
            .wire("a", "b")
            .wire("b", "c")
            .edge("c", "a", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn context_reschedule_matches_from_scratch() {
        let dfg = ring();
        let resources = ResourceSet::adders_multipliers(1, 1, false);
        let scheduler = ListScheduler::default();
        let mut retiming = Retiming::zero(&dfg);
        let mut schedule = scheduler.schedule(&dfg, None, &resources).unwrap();

        let mut ctx =
            SchedContext::new(&dfg, &scheduler, &resources, Some(&retiming), &schedule).unwrap();

        // Rotate the first control step down, twice, checking against the
        // from-scratch reschedule each time.
        for _ in 0..2 {
            let rotated = schedule.prefix_nodes(1);
            for &v in &rotated {
                let cs = schedule.start(v).unwrap();
                ctx.release(&dfg, &resources, v, cs);
                schedule.clear(v);
            }
            retiming.apply_set(&rotated, 1);
            ctx.apply_retiming_delta(&dfg, &retiming, &rotated);
            let first = schedule.first_step().unwrap();
            if first != 1 {
                schedule.shift(1 - i64::from(first));
                ctx.shift(1 - i64::from(first));
            }
            let mut reference = schedule.clone();
            ctx.reschedule(
                &dfg,
                &scheduler,
                Some(&retiming),
                &resources,
                &mut schedule,
                &rotated,
            )
            .unwrap();
            scheduler
                .reschedule(&dfg, Some(&retiming), &resources, &mut reference, &rotated)
                .unwrap();
            assert_eq!(schedule, reference);
        }
    }

    #[test]
    fn weight_repair_tracks_flips_for_all_local_policies() {
        for policy in [PriorityPolicy::DescendantCount, PriorityPolicy::PathHeight] {
            let dfg = ring();
            let resources = ResourceSet::adders_multipliers(1, 1, false);
            let scheduler = ListScheduler::new(policy);
            let mut retiming = Retiming::zero(&dfg);
            let mut schedule = scheduler.schedule(&dfg, None, &resources).unwrap();
            let mut ctx =
                SchedContext::new(&dfg, &scheduler, &resources, Some(&retiming), &schedule)
                    .unwrap();
            for _ in 0..3 {
                let rotated = schedule.prefix_nodes(1);
                for &v in &rotated {
                    let cs = schedule.start(v).unwrap();
                    ctx.release(&dfg, &resources, v, cs);
                    schedule.clear(v);
                }
                retiming.apply_set(&rotated, 1);
                ctx.apply_retiming_delta(&dfg, &retiming, &rotated);
                let first = schedule.first_step().unwrap();
                if first != 1 {
                    schedule.shift(1 - i64::from(first));
                    ctx.shift(1 - i64::from(first));
                }
                // The debug_asserts inside compare weights and table
                // against full recomputation.
                ctx.reschedule(
                    &dfg,
                    &scheduler,
                    Some(&retiming),
                    &resources,
                    &mut schedule,
                    &rotated,
                )
                .unwrap();
            }
        }
    }
}
