//! List scheduling — the paper's `FullSchedule` and `PartialSchedule`
//! procedures.
//!
//! The scheduler places operations into 1-based control steps, earliest
//! feasible step first, breaking ties among ready operations by a
//! [`PriorityPolicy`] weight (the paper uses descendant count). It
//! handles single-cycle, multi-cycle, and pipelined functional units
//! through the occupancy model of [`ResourceClass`].
//!
//! `PartialSchedule(G, s, X)` is the incremental mode: nodes outside `X`
//! keep their control steps and their resource reservations; only the
//! nodes of `X` are (re)placed. Rotation scheduling calls this after each
//! down-rotation so that "only a part of the DFG is rescheduled in each
//! rotation".
//!
//! [`ResourceClass`]: crate::ResourceClass

use std::sync::{Arc, Mutex};

use rotsched_dfg::{Dfg, DfgError, EdgeId, NodeId, NodeMap, Retiming};

use crate::error::SchedError;
use crate::priority::PriorityPolicy;
use crate::reservation::ReservationTable;
use crate::resources::{ResourceClassId, ResourceSet};
use crate::schedule::Schedule;

/// Capacity of the per-scheduler priority-weight cache. Rotation search
/// cycles through a handful of retimed zero-delay DAGs per phase, so a
/// small LRU captures nearly all repeats without unbounded growth.
const WEIGHT_CACHE_CAP: usize = 32;

/// Deterministic per-edge hash (the splitmix64 finalizer) for the
/// XOR-accumulated fingerprint of a zero-delay edge set. Flipping one
/// edge's membership is a single XOR, which is what lets the rotation
/// context maintain the cache key in O(flipped edges) per step.
pub(crate) fn edge_hash(edge_index: usize) -> u64 {
    let mut z = (edge_index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The zero-delay edge set of `G_r`: an exact bitset plus a cheap XOR
/// fingerprint over per-edge hashes. The fingerprint is the weight-cache
/// key (collisions fall back to the exact bitset comparison, so a
/// collision costs a compare, never a wrong answer) and is maintained
/// incrementally by [`SchedContext`](crate::SchedContext).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZeroSet {
    bits: Vec<u64>,
    key: u64,
}

impl ZeroSet {
    /// Evaluates every edge's retimed delay once, straight off the
    /// graph's flat [`CsrGraph`](rotsched_dfg::CsrGraph) edge arrays —
    /// `d(e) + r(u) − r(v) == 0` per edge, no edge objects touched.
    #[must_use]
    pub fn compute(dfg: &Dfg, retiming: Option<&Retiming>) -> Self {
        let csr = dfg.csr();
        let delays = csr.edge_delays();
        let mut bits = vec![0_u64; delays.len().div_ceil(64)];
        let mut key = 0_u64;
        let mut mark = |i: usize| {
            bits[i / 64] |= 1 << (i % 64);
            key ^= edge_hash(i);
        };
        match retiming {
            None => {
                for (i, &d) in delays.iter().enumerate() {
                    if d == 0 {
                        mark(i);
                    }
                }
            }
            Some(r) => {
                let r = r.as_slice();
                let from = csr.edge_from();
                let to = csr.edge_to();
                for (i, &d) in delays.iter().enumerate() {
                    if i64::from(d) + r[from[i] as usize] - r[to[i] as usize] == 0 {
                        mark(i);
                    }
                }
            }
        }
        ZeroSet { bits, key }
    }

    /// Whether edge `e` is zero-delay in this set.
    #[must_use]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets edge `e`'s membership, updating the fingerprint; returns
    /// `true` when the membership actually changed.
    pub fn set(&mut self, e: EdgeId, zero: bool) -> bool {
        if self.contains(e) == zero {
            return false;
        }
        let i = e.index();
        self.bits[i / 64] ^= 1 << (i % 64);
        self.key ^= edge_hash(i);
        true
    }

    /// The XOR fingerprint (the weight-cache key component).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }
}

/// One memoized weight computation.
#[derive(Clone, Debug)]
struct WeightEntry {
    /// [`Dfg::structure_fingerprint`] of the graph the weights belong to.
    graph: u64,
    /// Exact zero-delay edge set under the retiming; the embedded
    /// fingerprint is compared first, the bitset confirms on a match.
    zero: ZeroSet,
    weights: Arc<NodeMap<u64>>,
}

/// LRU cache of priority weights, most recently used last.
#[derive(Clone, Debug, Default)]
struct WeightCache {
    entries: Vec<WeightEntry>,
    hits: u64,
    misses: u64,
}

/// A list scheduler with a configurable priority policy.
///
/// # Examples
///
/// ```
/// use rotsched_dfg::{DfgBuilder, OpKind};
/// use rotsched_sched::{ListScheduler, ResourceSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DfgBuilder::new("pair")
///     .node("m1", OpKind::Mul, 1)
///     .node("m2", OpKind::Mul, 1)
///     .build()?;
/// // One multiplier: the two independent multiplies serialize.
/// let s = ListScheduler::default().schedule(
///     &g,
///     None,
///     &ResourceSet::adders_multipliers(1, 1, false),
/// )?;
/// assert_eq!(s.length(&g), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ListScheduler {
    policy: PriorityPolicy,
    /// Weight memo for the hot path: all four policies are pure functions
    /// of the graph structure and the retimed zero-delay edge set, and a
    /// rotation phase revisits the same few retimed DAGs over and over.
    /// A `Mutex` keeps the public API `&self` and the type `Sync`; the
    /// parallel portfolio clones the scheduler per worker, so the lock is
    /// uncontended in practice.
    cache: Mutex<WeightCache>,
}

impl Clone for ListScheduler {
    fn clone(&self) -> Self {
        ListScheduler {
            policy: self.policy,
            cache: Mutex::new(self.locked_cache().clone()),
        }
    }
}

// The cache is derived state: schedulers are equal iff their policies are.
impl PartialEq for ListScheduler {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
    }
}

impl Eq for ListScheduler {}

impl ListScheduler {
    /// A scheduler using the given priority policy.
    #[must_use]
    pub fn new(policy: PriorityPolicy) -> Self {
        ListScheduler {
            policy,
            cache: Mutex::new(WeightCache::default()),
        }
    }

    /// The cache guard; recovers from poisoning (a panic mid-insert at
    /// worst loses memoized entries, never correctness).
    fn locked_cache(&self) -> std::sync::MutexGuard<'_, WeightCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The priority policy in use.
    #[must_use]
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }

    /// `(hits, misses)` of the priority-weight cache since construction
    /// (clones start with their source's counters).
    #[must_use]
    pub fn weight_cache_stats(&self) -> (u64, u64) {
        let cache = self.locked_cache();
        (cache.hits, cache.misses)
    }

    /// [`PriorityPolicy::weights`] memoized on the retiming's effect on
    /// the zero-delay edge set. Returns a shared handle — a hit clones an
    /// `Arc`, never the weight vector.
    ///
    /// Two retimings that expose the same zero-delay DAG (and many do —
    /// a rotation only redistributes delays along a few edges) hit the
    /// same entry; the key also includes the graph's structure
    /// fingerprint so one scheduler can serve interleaved graphs, as the
    /// bench sweeps do.
    ///
    /// # Errors
    ///
    /// Propagates [`DfgError`] from the underlying weight computation
    /// (e.g. a cyclic zero-delay subgraph).
    pub fn cached_weights(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
    ) -> Result<Arc<NodeMap<u64>>, DfgError> {
        let zero = ZeroSet::compute(dfg, retiming);
        self.cached_weights_for(dfg, retiming, &zero)
    }

    /// [`Self::cached_weights`] with the caller's precomputed zero-delay
    /// set, so the incrementally-maintained [`ZeroSet`] of a rotation
    /// context probes the cache without the O(E) rebuild. The XOR
    /// fingerprint is checked first; the exact bitset confirms a match,
    /// so a hash collision costs one comparison, never a wrong answer.
    pub(crate) fn cached_weights_for(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        zero: &ZeroSet,
    ) -> Result<Arc<NodeMap<u64>>, DfgError> {
        let graph = dfg.structure_fingerprint();
        {
            let mut cache = self.locked_cache();
            if let Some(pos) = cache.entries.iter().position(|entry| {
                entry.graph == graph && entry.zero.key == zero.key && entry.zero.bits == zero.bits
            }) {
                cache.hits += 1;
                let entry = cache.entries.remove(pos);
                let weights = Arc::clone(&entry.weights);
                cache.entries.push(entry); // most recently used last
                return Ok(weights);
            }
            cache.misses += 1;
        }
        let weights = Arc::new(self.policy.weights(dfg, retiming)?);
        let mut cache = self.locked_cache();
        if cache.entries.len() >= WEIGHT_CACHE_CAP {
            cache.entries.remove(0);
        }
        cache.entries.push(WeightEntry {
            graph,
            zero: zero.clone(),
            weights: Arc::clone(&weights),
        });
        Ok(weights)
    }

    /// Schedules the whole zero-delay DAG of `G_r` from scratch
    /// (`FullSchedule`). The result is normalized to start at control
    /// step 1 and is a legal DAG schedule under `resources`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Graph`] if the (retimed) zero-delay subgraph
    /// is cyclic and [`SchedError::UnboundOp`] if some operation has no
    /// resource class.
    pub fn schedule(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
    ) -> Result<Schedule, SchedError> {
        let mut schedule = Schedule::empty(dfg);
        let free: Vec<NodeId> = dfg.node_ids().collect();
        self.reschedule(dfg, retiming, resources, &mut schedule, &free)?;
        schedule.normalize();
        Ok(schedule)
    }

    /// Incrementally places the nodes of `free` into `schedule` without
    /// moving any already-scheduled node (`PartialSchedule`). Nodes of
    /// `free` that were scheduled are deallocated first.
    ///
    /// Fixed nodes keep their reservations; each free node is placed at
    /// its earliest control step that satisfies (a) zero-delay precedence
    /// from both fixed and free predecessors, (b) zero-delay precedence
    /// *into* fixed successors, and (c) unit availability.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Graph`] for a cyclic zero-delay subgraph,
    /// [`SchedError::UnboundOp`] for an unbindable operation,
    /// [`SchedError::ResourceOverflow`] when the fixed part of the
    /// schedule already violates the resource limits, and
    /// [`SchedError::NoFeasibleSlot`] when a free node is boxed in by
    /// fixed successors.
    pub fn reschedule(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        schedule: &mut Schedule,
        free: &[NodeId],
    ) -> Result<(), SchedError> {
        let zero = ZeroSet::compute(dfg, retiming);
        let weights = self
            .cached_weights_for(dfg, retiming, &zero)
            .map_err(SchedError::from)?;

        for &v in free {
            schedule.clear(v);
        }

        let class_of = bind_classes(dfg, resources)?;
        let mut table = build_fixed_table(dfg, &class_of, resources, schedule)?;

        // Sanity: the zero-delay subgraph must be acyclic overall.
        rotsched_dfg::analysis::zero_delay_topological_order(dfg, retiming)
            .map_err(SchedError::from)?;

        let inputs = PlaceInputs {
            dfg,
            zero: &zero,
            weights: &weights,
            class_of: &class_of,
            resources,
        };
        let mut scratch = PlaceScratch::new(dfg);
        place_free(&inputs, &mut table, schedule, free, &mut scratch)
    }
}

/// Binds every operation to its resource class up front.
pub(crate) fn bind_classes(
    dfg: &Dfg,
    resources: &ResourceSet,
) -> Result<NodeMap<ResourceClassId>, SchedError> {
    let mut class_of = dfg.node_map(ResourceClassId::from_index(0));
    for (v, node) in dfg.nodes() {
        class_of[v] = resources
            .class_for(node.op())
            .ok_or(SchedError::UnboundOp { node: v })?;
    }
    Ok(class_of)
}

/// Builds a reservation table holding every scheduled node's slots,
/// reporting [`SchedError::ResourceOverflow`] if the schedule already
/// violates the resource limits.
pub(crate) fn build_fixed_table(
    dfg: &Dfg,
    class_of: &NodeMap<ResourceClassId>,
    resources: &ResourceSet,
    schedule: &Schedule,
) -> Result<ReservationTable, SchedError> {
    let mut table = ReservationTable::new(resources);
    for (v, cs) in schedule.iter() {
        let class_id = class_of[v];
        let class = resources.class(class_id);
        let time = dfg.node(v).time();
        if !table.can_place(class_id, class.occupancy(time).map(|off| cs + off)) {
            let bad = class
                .occupancy(time)
                .map(|off| cs + off)
                .find(|&s| table.used(class_id, s) >= class.count())
                .unwrap_or(cs);
            return Err(SchedError::ResourceOverflow {
                class: class.name().to_owned(),
                cs: bad,
                used: table.used(class_id, bad) + 1,
                limit: class.count(),
            });
        }
        table.place(class_id, class.occupancy(time).map(|off| cs + off));
    }
    Ok(table)
}

/// The immutable inputs of one placement pass.
pub(crate) struct PlaceInputs<'a> {
    pub(crate) dfg: &'a Dfg,
    pub(crate) zero: &'a ZeroSet,
    pub(crate) weights: &'a NodeMap<u64>,
    pub(crate) class_of: &'a NodeMap<ResourceClassId>,
    pub(crate) resources: &'a ResourceSet,
}

/// Reusable buffers for [`place_free`]. Entries are only ever written
/// for the free set of the current call (and `is_free` is cleared again
/// on exit), so a persistent scratch keeps each rotation step free of
/// O(V) allocations.
#[derive(Clone, Debug)]
pub(crate) struct PlaceScratch {
    is_free: NodeMap<bool>,
    blocking: NodeMap<u32>,
    latest: NodeMap<Option<u32>>,
    ready: Vec<NodeId>,
}

impl PlaceScratch {
    pub(crate) fn new(dfg: &Dfg) -> Self {
        PlaceScratch {
            is_free: dfg.node_map(false),
            blocking: dfg.node_map(0_u32),
            latest: dfg.node_map(None),
            ready: Vec::new(),
        }
    }
}

/// The placement core shared by [`ListScheduler::reschedule`] and the
/// incremental [`SchedContext`](crate::SchedContext): places the nodes
/// of `free` into `schedule`/`table` without moving any fixed node. The
/// free nodes must already be cleared from both. Both callers funnel
/// through this single decision procedure, which is what makes the
/// incremental path bit-identical to the from-scratch one.
pub(crate) fn place_free(
    inputs: &PlaceInputs<'_>,
    table: &mut ReservationTable,
    schedule: &mut Schedule,
    free: &[NodeId],
    scratch: &mut PlaceScratch,
) -> Result<(), SchedError> {
    for &v in free {
        scratch.is_free[v] = true;
        scratch.blocking[v] = 0;
        scratch.latest[v] = None;
    }
    let result = place_free_inner(inputs, table, schedule, free, scratch);
    for &v in free {
        scratch.is_free[v] = false;
    }
    result
}

fn place_free_inner(
    inputs: &PlaceInputs<'_>,
    table: &mut ReservationTable,
    schedule: &mut Schedule,
    free: &[NodeId],
    scratch: &mut PlaceScratch,
) -> Result<(), SchedError> {
    let PlaceInputs {
        dfg,
        zero,
        weights,
        class_of,
        resources,
    } = *inputs;
    let PlaceScratch {
        is_free,
        blocking,
        latest,
        ready,
    } = scratch;

    // The flat structure-of-arrays view: every precedence walk below
    // runs over these contiguous slices instead of per-node edge
    // vectors and edge objects. Per-node order is insertion order, so
    // every decision matches the `Vec<Vec<EdgeId>>` iteration exactly.
    let csr = dfg.csr();
    let in_ids = csr.in_edge_ids();
    let in_tails = csr.in_tails();
    let out_ids = csr.out_edge_ids();
    let out_heads = csr.out_heads();
    let times = csr.times();
    let is_free = is_free.as_slice();
    let weights = weights.as_slice();

    // Dependency bookkeeping over the zero-delay DAG of G_r.
    // blocking[v] = number of *unscheduled free* zero-delay preds.
    for v in free.iter().copied() {
        for i in csr.in_range(v.index()) {
            if zero.contains(in_ids[i]) && is_free[in_tails[i] as usize] {
                blocking[v] += 1;
            }
        }
    }

    // Latest start allowed by *fixed* zero-delay successors: v must
    // finish before any fixed successor w starts, i.e.
    // s(v) <= s(w) - t(v). A bound of 0 marks an unsatisfiable box-in
    // (control steps are 1-based). Fixed nodes never move, so this is
    // computed once.
    for &v in free {
        let t = times[v.index()];
        for i in csr.out_range(v.index()) {
            if zero.contains(out_ids[i]) {
                let w = out_heads[i] as usize;
                if !is_free[w] {
                    if let Some(sw) = schedule.start(NodeId::from_index(w)) {
                        let bound = sw.saturating_sub(t);
                        latest[v] = Some(latest[v].map_or(bound, |a| a.min(bound)));
                    }
                }
            }
        }
    }

    // Earliest start from already-scheduled zero-delay predecessors.
    let earliest_start = |v: NodeId, schedule: &Schedule| -> u32 {
        let mut earliest = 1;
        for i in csr.in_range(v.index()) {
            if zero.contains(in_ids[i]) {
                let u = in_tails[i] as usize;
                if let Some(su) = schedule.start(NodeId::from_index(u)) {
                    earliest = earliest.max(su + times[u]);
                }
            }
        }
        earliest
    };

    let mut remaining: usize = free.len();
    ready.clear();
    ready.extend(free.iter().copied().filter(|&v| blocking[v] == 0));

    // A safe horizon: everything fits after the fixed part even fully
    // serialized.
    let horizon = table.horizon() + u32::try_from(dfg.total_time()).unwrap_or(u32::MAX) + 1;

    let mut cs: u32 = 1;
    while remaining > 0 {
        // Steps before every ready node's earliest start place nothing —
        // skip them wholesale. Decisions are unchanged: a node whose
        // earliest start exceeds `cs` is passed over (and its deadline
        // not examined) by the scan below anyway.
        if let Some(min_earliest) = ready.iter().map(|&v| earliest_start(v, schedule)).min() {
            cs = cs.max(min_earliest);
        }
        if cs > horizon {
            let stuck = free
                .iter()
                .copied()
                .find(|&v| schedule.start(v).is_none())
                .expect("remaining > 0 implies an unscheduled free node");
            return Err(SchedError::NoFeasibleSlot { node: stuck });
        }

        // Ready nodes whose precedence admits this step: nodes boxed
        // in by fixed successors (earliest deadline) first, then by
        // weight. Unboxed nodes have no deadline, so plain full
        // scheduling is unaffected. The key ends in the unique node id,
        // so the unstable sort is deterministic and allocation-free.
        ready.sort_unstable_by_key(|&v| {
            (
                latest[v].unwrap_or(u32::MAX),
                core::cmp::Reverse(weights[v.index()]),
                v,
            )
        });
        let mut placed_any = true;
        while placed_any {
            placed_any = false;
            let mut i = 0;
            while i < ready.len() {
                let v = ready[i];
                let earliest = earliest_start(v, schedule);
                if earliest > cs {
                    i += 1;
                    continue;
                }
                if let Some(bound) = latest[v] {
                    if cs > bound {
                        return Err(SchedError::NoFeasibleSlot { node: v });
                    }
                }
                let class_id = class_of[v];
                let class = resources.class(class_id);
                let time = dfg.node(v).time();
                if table.can_place(class_id, class.occupancy(time).map(|off| cs + off)) {
                    table.place(class_id, class.occupancy(time).map(|off| cs + off));
                    schedule.set(v, cs);
                    remaining -= 1;
                    ready.swap_remove(i);
                    placed_any = true;
                    // Unblock free successors.
                    for j in csr.out_range(v.index()) {
                        if zero.contains(out_ids[j]) {
                            let w = NodeId::from_index(out_heads[j] as usize);
                            if is_free[w.index()] && schedule.start(w).is_none() {
                                blocking[w] -= 1;
                                if blocking[w] == 0 {
                                    ready.push(w);
                                }
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if placed_any {
                // Newly unblocked nodes may also fit in this step.
                ready.sort_unstable_by_key(|&v| {
                    (
                        latest[v].unwrap_or(u32::MAX),
                        core::cmp::Reverse(weights[v.index()]),
                        v,
                    )
                });
            }
        }
        cs += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_dag_schedule;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn resources(adders: u32, mults: u32) -> ResourceSet {
        ResourceSet::adders_multipliers(adders, mults, false)
    }

    #[test]
    fn serializes_on_one_unit() {
        let g = DfgBuilder::new("three-adds")
            .nodes("a", 3, OpKind::Add, 1)
            .build()
            .unwrap();
        let s = ListScheduler::default()
            .schedule(&g, None, &resources(1, 0))
            .unwrap();
        assert_eq!(s.length(&g), 3);
        check_dag_schedule(&g, None, &s, &resources(1, 0)).unwrap();
    }

    #[test]
    fn parallelizes_on_two_units() {
        let g = DfgBuilder::new("four-adds")
            .nodes("a", 4, OpKind::Add, 1)
            .build()
            .unwrap();
        let s = ListScheduler::default()
            .schedule(&g, None, &resources(2, 0))
            .unwrap();
        assert_eq!(s.length(&g), 2);
    }

    #[test]
    fn respects_zero_delay_chains() {
        let g = DfgBuilder::new("chain")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .build()
            .unwrap();
        let s = ListScheduler::default()
            .schedule(&g, None, &resources(1, 1))
            .unwrap();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(s.start(m), Some(1));
        assert_eq!(s.start(a), Some(3), "add waits for the 2-cycle mult");
    }

    #[test]
    fn delayed_edges_do_not_constrain_the_dag_schedule() {
        let g = DfgBuilder::new("feedback")
            .node("m", OpKind::Mul, 1)
            .node("a", OpKind::Add, 1)
            .edge("m", "a", 1)
            .build()
            .unwrap();
        let s = ListScheduler::default()
            .schedule(&g, None, &resources(1, 1))
            .unwrap();
        assert_eq!(s.length(&g), 1, "both ops share step 1 on distinct units");
    }

    #[test]
    fn pipelined_multiplier_issues_every_step() {
        let g = DfgBuilder::new("two-mults")
            .nodes("m", 2, OpKind::Mul, 2)
            .build()
            .unwrap();
        let pipelined = ResourceSet::adders_multipliers(1, 1, true);
        let s = ListScheduler::default()
            .schedule(&g, None, &pipelined)
            .unwrap();
        // Starts at steps 1 and 2; second finishes at step 3.
        assert_eq!(s.length(&g), 3);

        let nonpipelined = resources(1, 1);
        let s2 = ListScheduler::default()
            .schedule(&g, None, &nonpipelined)
            .unwrap();
        assert_eq!(s2.length(&g), 4, "non-pipelined unit is busy both steps");
    }

    #[test]
    fn priority_prefers_heavier_subtrees() {
        // r1 has 2 descendants, r2 has none; with one adder r1 must go
        // first for the optimal length.
        let g = DfgBuilder::new("weights")
            .nodes("r", 2, OpKind::Add, 1)
            .nodes("c", 2, OpKind::Add, 1)
            .wire("r0", "c0")
            .wire("c0", "c1")
            .build()
            .unwrap();
        let s = ListScheduler::default()
            .schedule(&g, None, &resources(1, 0))
            .unwrap();
        let r0 = g.node_by_name("r0").unwrap();
        assert_eq!(s.start(r0), Some(1));
        assert_eq!(s.length(&g), 4);
    }

    #[test]
    fn partial_reschedule_keeps_fixed_nodes() {
        let g = DfgBuilder::new("partial")
            .nodes("a", 3, OpKind::Add, 1)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let res = resources(1, 0);
        let mut s = ListScheduler::default().schedule(&g, None, &res).unwrap();
        let original_a1 = s.start(ids[1]);
        // Free a0; it should slot back without moving a1/a2.
        ListScheduler::default()
            .reschedule(&g, None, &res, &mut s, &[ids[0]])
            .unwrap();
        assert_eq!(s.start(ids[1]), original_a1);
        assert!(s.is_complete());
        check_dag_schedule(&g, None, &s, &res).unwrap();
    }

    #[test]
    fn partial_reschedule_fills_holes() {
        let g = DfgBuilder::new("holes")
            .nodes("a", 2, OpKind::Add, 1)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let res = resources(1, 0);
        let mut s = Schedule::empty(&g);
        s.set(ids[1], 5);
        ListScheduler::default()
            .reschedule(&g, None, &res, &mut s, &[ids[0]])
            .unwrap();
        assert_eq!(
            s.start(ids[0]),
            Some(1),
            "free node takes the earliest hole"
        );
    }

    #[test]
    fn fixed_successor_bounds_free_node() {
        let g = DfgBuilder::new("boxed")
            .node("u", OpKind::Add, 1)
            .node("w", OpKind::Add, 1)
            .wire("u", "w")
            .build()
            .unwrap();
        let u = g.node_by_name("u").unwrap();
        let w = g.node_by_name("w").unwrap();
        let res = resources(2, 0);
        let mut s = Schedule::empty(&g);
        s.set(w, 3);
        ListScheduler::default()
            .reschedule(&g, None, &res, &mut s, &[u])
            .unwrap();
        assert!(s.start(u).unwrap() < 3, "u finishes before w starts");
    }

    #[test]
    fn boxed_in_free_node_reports_no_slot() {
        let g = DfgBuilder::new("impossible")
            .node("u", OpKind::Mul, 2)
            .node("w", OpKind::Add, 1)
            .wire("u", "w")
            .build()
            .unwrap();
        let u = g.node_by_name("u").unwrap();
        let w = g.node_by_name("w").unwrap();
        let res = resources(1, 1);
        let mut s = Schedule::empty(&g);
        s.set(w, 2); // u needs 2 steps before w: impossible with w at 2.
        let err = ListScheduler::default()
            .reschedule(&g, None, &res, &mut s, &[u])
            .unwrap_err();
        assert!(matches!(err, SchedError::NoFeasibleSlot { node } if node == u));
    }

    #[test]
    fn oversubscribed_fixed_part_is_reported() {
        let g = DfgBuilder::new("overflow")
            .nodes("a", 2, OpKind::Add, 1)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let res = resources(1, 0);
        let mut s = Schedule::empty(&g);
        s.set(ids[0], 1);
        s.set(ids[1], 1);
        let err = ListScheduler::default()
            .reschedule(&g, None, &res, &mut s, &[])
            .unwrap_err();
        assert!(matches!(err, SchedError::ResourceOverflow { .. }));
    }

    #[test]
    fn unbound_op_is_reported() {
        let g = DfgBuilder::new("unbound")
            .node("m", OpKind::Mul, 1)
            .build()
            .unwrap();
        let only_adders = ResourceSet::new(vec![crate::resources::ResourceClass::new(
            "adder",
            1,
            vec![OpKind::Add],
            false,
        )]);
        let err = ListScheduler::default()
            .schedule(&g, None, &only_adders)
            .unwrap_err();
        assert!(matches!(err, SchedError::UnboundOp { .. }));
    }

    #[test]
    fn weight_cache_hits_on_repeated_reschedules() {
        let g = DfgBuilder::new("cache")
            .nodes("a", 4, OpKind::Add, 1)
            .wire("a0", "a1")
            .wire("a1", "a2")
            .build()
            .unwrap();
        let res = resources(2, 0);
        let sched = ListScheduler::default();
        let s1 = sched.schedule(&g, None, &res).unwrap();
        let s2 = sched.schedule(&g, None, &res).unwrap();
        assert_eq!(s1, s2, "cache must not change results");
        let (hits, misses) = sched.weight_cache_stats();
        assert_eq!(misses, 1, "second run reuses the first run's weights");
        assert_eq!(hits, 1);
    }

    #[test]
    fn weight_cache_distinguishes_retimings_by_zero_delay_set() {
        let g = DfgBuilder::new("cache-retimed")
            .node("a", OpKind::Add, 1)
            .node("b", OpKind::Add, 1)
            .wire("a", "b")
            .edge("b", "a", 1)
            .build()
            .unwrap();
        let a = g.node_by_name("a").unwrap();
        let res = resources(1, 0);
        let sched = ListScheduler::default();
        let plain = sched.schedule(&g, None, &res).unwrap();
        let r = rotsched_dfg::Retiming::from_set(&g, [a]);
        let rotated = sched.schedule(&g, Some(&r), &res).unwrap();
        assert_ne!(
            plain, rotated,
            "different zero-delay DAGs, different results"
        );
        let (hits, misses) = sched.weight_cache_stats();
        assert_eq!(misses, 2, "two distinct zero-delay edge sets");
        assert_eq!(hits, 0);
        // The uncached path must agree with the cached one.
        let fresh = ListScheduler::default();
        assert_eq!(fresh.schedule(&g, Some(&r), &res).unwrap(), rotated);
    }

    #[test]
    fn weight_cache_distinguishes_graphs_by_fingerprint() {
        let g1 = DfgBuilder::new("g1")
            .nodes("a", 3, OpKind::Add, 1)
            .wire("a0", "a1")
            .build()
            .unwrap();
        // Same node/edge counts, different wiring.
        let g2 = DfgBuilder::new("g2")
            .nodes("a", 3, OpKind::Add, 1)
            .wire("a1", "a2")
            .build()
            .unwrap();
        let res = resources(1, 0);
        let sched = ListScheduler::default();
        let s1 = sched.schedule(&g1, None, &res).unwrap();
        let _ = sched.schedule(&g2, None, &res).unwrap();
        let (_, misses) = sched.weight_cache_stats();
        assert_eq!(misses, 2, "different graphs may not share weights");
        // And the interleaved graph still round-trips correctly.
        assert_eq!(sched.schedule(&g1, None, &res).unwrap(), s1);
    }

    #[test]
    fn schedule_under_retiming_uses_retimed_dag() {
        let g = DfgBuilder::new("rot")
            .node("a", OpKind::Add, 1)
            .node("b", OpKind::Add, 1)
            .wire("a", "b")
            .edge("b", "a", 1)
            .build()
            .unwrap();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = rotsched_dfg::Retiming::from_set(&g, [a]);
        let s = ListScheduler::default()
            .schedule(&g, Some(&r), &resources(1, 0))
            .unwrap();
        // In G_r the zero-delay edge is b -> a.
        assert!(s.start(b) < s.start(a));
    }
}
