//! Schedule validation.
//!
//! * [`check_dag_schedule`] — is `s` a legal DAG schedule of `G_r` under
//!   the resource constraints? (Every zero-delay precedence satisfied,
//!   no unit over-subscribed, every node placed.)
//! * [`realizing_retiming`] — Lemma 1 / Theorem 2: does *some* legal
//!   retiming make `s` a legal static schedule of `G`? Solved via the
//!   shortest-path dual exactly as in Section 3.2; the returned retiming
//!   is normalized and has the minimum possible `max_v r(v)`, i.e. the
//!   shallowest pipeline depth.
//! * [`check_static_schedule`] — convenience wrapper combining both.

use rotsched_dfg::analysis::paths::{bellman_ford, WeightedEdge};
use rotsched_dfg::analysis::topo::is_zero_delay_under;
use rotsched_dfg::{Dfg, NodeId, Retiming};

use crate::error::SchedError;
use crate::reservation::ReservationTable;
use crate::resources::ResourceSet;
use crate::schedule::Schedule;

/// Checks that `schedule` is a complete, legal DAG schedule of `G_r`
/// under `resources`.
///
/// # Errors
///
/// Returns the first violation found: [`SchedError::Unscheduled`],
/// [`SchedError::PrecedenceViolated`], [`SchedError::ResourceOverflow`],
/// or [`SchedError::UnboundOp`].
pub fn check_dag_schedule(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<(), SchedError> {
    // Completeness.
    for v in dfg.node_ids() {
        if schedule.start(v).is_none() {
            return Err(SchedError::Unscheduled { node: v });
        }
    }

    // Zero-delay precedence: s(u) + t(u) <= s(v) whenever d_r(u, v) = 0.
    for (id, edge) in dfg.edges() {
        if is_zero_delay_under(dfg, retiming, id) {
            let su = schedule.start(edge.from()).expect("checked complete");
            let sv = schedule.start(edge.to()).expect("checked complete");
            // Saturating: a start near u32::MAX must report a precedence
            // violation, not wrap around and pass.
            let finish = su.saturating_add(dfg.node(edge.from()).time().max(1));
            if finish > sv {
                return Err(SchedError::PrecedenceViolated {
                    from: edge.from(),
                    to: edge.to(),
                    finish,
                    start: sv,
                });
            }
        }
    }

    check_resources(dfg, schedule, resources)
}

/// Checks only the resource limits of a (complete or partial) schedule.
///
/// # Errors
///
/// Returns [`SchedError::ResourceOverflow`] or [`SchedError::UnboundOp`].
pub fn check_resources(
    dfg: &Dfg,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<(), SchedError> {
    let mut table = ReservationTable::new(resources);
    for (v, cs) in schedule.iter() {
        let class_id = resources
            .class_for(dfg.node(v).op())
            .ok_or(SchedError::UnboundOp { node: v })?;
        let class = resources.class(class_id);
        let steps: Vec<u32> = class
            .occupancy(dfg.node(v).time())
            .map(|off| cs.saturating_add(off))
            .collect();
        if !table.can_place(class_id, steps.iter().copied()) {
            let bad = steps
                .iter()
                .copied()
                .find(|&s| table.used(class_id, s) >= class.count())
                .unwrap_or(cs);
            return Err(SchedError::ResourceOverflow {
                class: class.name().to_owned(),
                cs: bad,
                used: table.used(class_id, bad) + 1,
                limit: class.count(),
            });
        }
        table.place(class_id, steps);
    }
    Ok(())
}

/// Theorem 2 / Lemma 3: finds a legal retiming `r` such that `schedule`
/// is a legal DAG schedule of `G_r`, if one exists — i.e. decides whether
/// `schedule` is a legal *static* schedule of `G` and certifies it.
///
/// The LP form
///
/// ```text
/// r(v) − r(u) ≤ d(u, v)          for every edge
/// r(v) − r(u) ≤ d(u, v) − 1      for every edge with s(u) + t(u) > s(v)
/// ```
///
/// is the dual of a single-source shortest-path problem on a constraint
/// graph `H` with a pseudo-source (Lemma 3): with an H-edge `u → v` of
/// length `k` per constraint, the shortest-path distances satisfy
/// `Sh(v) ≤ Sh(u) + k`, so `r(v) = Sh(v)` solves the LP form. (The paper
/// states this as `r(v) = −Sh(v)` over the reversed constraint graph —
/// the same solution.) The result is normalized and yields a shallow
/// pipeline depth.
///
/// Returns `None` when `H` has a negative cycle, i.e. the schedule is not
/// a legal static schedule of `G` under any retiming.
///
/// # Panics
///
/// Panics if `schedule` is incomplete.
#[must_use]
pub fn realizing_retiming(dfg: &Dfg, schedule: &Schedule) -> Option<Retiming> {
    let n = dfg.node_count();
    // Vertex n is the pseudo-source v0.
    let mut edges = Vec::with_capacity(dfg.edge_count() + n);
    for (_, edge) in dfg.edges() {
        let su = schedule
            .start(edge.from())
            .expect("realizing_retiming requires a complete schedule");
        let sv = schedule
            .start(edge.to())
            .expect("realizing_retiming requires a complete schedule");
        let chained_ok = su.saturating_add(dfg.node(edge.from()).time().max(1)) <= sv;
        let k = i64::from(edge.delays()) - i64::from(!chained_ok);
        // Constraint r(v) − r(u) ≤ k becomes an H-edge u → v of length k.
        edges.push(WeightedEdge::new(edge.from().index(), edge.to().index(), k));
    }
    for v in 0..n {
        edges.push(WeightedEdge::new(n, v, 0));
    }

    let sp = bellman_ford(n + 1, &edges, n).ok()?;
    let values: Vec<i64> = (0..n)
        .map(|v| sp.dist[v].expect("pseudo-source reaches every vertex"))
        .collect();
    let r = Retiming::from_values(dfg, values).to_normalized();
    debug_assert!(r.is_legal(dfg), "shortest-path retiming is legal");
    Some(r)
}

/// Checks that `schedule` is a legal static schedule of `G` under
/// `resources`, returning the realizing retiming of minimum depth.
///
/// # Errors
///
/// Returns [`SchedError::PrecedenceViolated`] (with one witness edge)
/// when no retiming realizes the schedule, plus any resource or
/// completeness error.
pub fn check_static_schedule(
    dfg: &Dfg,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<Retiming, SchedError> {
    for v in dfg.node_ids() {
        if schedule.start(v).is_none() {
            return Err(SchedError::Unscheduled { node: v });
        }
    }
    check_resources(dfg, schedule, resources)?;
    match realizing_retiming(dfg, schedule) {
        Some(r) => Ok(r),
        None => {
            // Produce a concrete witness: some zero-delay-constrained edge
            // must be violated in every retiming; report the tightest one.
            let witness = find_violation_witness(dfg, schedule);
            Err(witness)
        }
    }
}

fn find_violation_witness(dfg: &Dfg, schedule: &Schedule) -> SchedError {
    for (_, edge) in dfg.edges() {
        let (Some(su), Some(sv)) = (schedule.start(edge.from()), schedule.start(edge.to())) else {
            continue;
        };
        let finish = su.saturating_add(dfg.node(edge.from()).time().max(1));
        if edge.delays() == 0 && finish > sv {
            return SchedError::PrecedenceViolated {
                from: edge.from(),
                to: edge.to(),
                finish,
                start: sv,
            };
        }
    }
    // No single zero-delay edge is violated; the inconsistency is a cycle
    // property. Report the first edge of a delay-starved cycle generically.
    let (id, edge) = dfg
        .edges()
        .next()
        .expect("an unrealizable schedule implies at least one edge");
    let _ = id;
    SchedError::PrecedenceViolated {
        from: edge.from(),
        to: edge.to(),
        finish: 0,
        start: 0,
    }
}

/// `NodeId`-keyed helper: true when the schedule assigns every node in
/// `nodes` a start step.
#[must_use]
pub fn all_scheduled(schedule: &Schedule, nodes: &[NodeId]) -> bool {
    nodes.iter().all(|&v| schedule.start(v).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn iir() -> Dfg {
        DfgBuilder::new("iir")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .edge("a", "m", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn list_schedule_passes_validation() {
        let g = iir();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let s = ListScheduler::default().schedule(&g, None, &res).unwrap();
        check_dag_schedule(&g, None, &s, &res).unwrap();
        let r = check_static_schedule(&g, &s, &res).unwrap();
        assert_eq!(r.depth(), 1, "a DAG schedule needs no pipelining");
    }

    #[test]
    fn precedence_violation_is_caught() {
        let g = iir();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let mut s = Schedule::empty(&g);
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        s.set(m, 1);
        s.set(a, 2); // m finishes at end of step 2; a cannot start at 2.
        let err = check_dag_schedule(&g, None, &s, &res).unwrap_err();
        assert!(matches!(err, SchedError::PrecedenceViolated { .. }));
    }

    #[test]
    fn resource_overflow_is_caught() {
        let g = DfgBuilder::new("two")
            .nodes("m", 2, OpKind::Mul, 1)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(0, 1, false);
        let mut s = Schedule::empty(&g);
        for v in g.node_ids() {
            s.set(v, 1);
        }
        let err = check_dag_schedule(&g, None, &s, &res).unwrap_err();
        assert!(matches!(err, SchedError::ResourceOverflow { .. }));
    }

    #[test]
    fn incomplete_schedule_is_caught() {
        let g = iir();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let s = Schedule::empty(&g);
        let err = check_dag_schedule(&g, None, &s, &res).unwrap_err();
        assert!(matches!(err, SchedError::Unscheduled { .. }));
    }

    #[test]
    fn swapped_schedule_is_realized_by_a_retiming() {
        // Schedule a *before* m: illegal as a DAG schedule of G, but legal
        // statically — the retiming r(m) = ... shifts m's iteration.
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.set(m, 2);
        assert!(check_dag_schedule(&g, None, &s, &res).is_err());
        let r = check_static_schedule(&g, &s, &res).unwrap();
        // r must break the m -> a zero-delay constraint: d_r(m, a) >= 1.
        let (me, _) = g.edges().find(|(_, e)| e.from() == m).unwrap();
        assert!(r.retimed_delay(&g, me) >= 1);
        assert!(r.is_legal(&g));
        // And the DAG schedule of G_r must hold.
        check_dag_schedule(&g, Some(&r), &s, &res).unwrap();
    }

    #[test]
    fn impossible_static_schedule_is_rejected() {
        // Both ops in step 1 with a 2-cycle mult feeding the add through
        // zero delays in a tight cycle with only one delay total:
        // no retiming can satisfy both directions.
        let g = DfgBuilder::new("tight")
            .node("x", OpKind::Add, 1)
            .node("y", OpKind::Add, 1)
            .wire("x", "y")
            .edge("y", "x", 1)
            .build()
            .unwrap();
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut s = Schedule::empty(&g);
        // x and y both at step 1: x -> y needs d_r >= 1 and y -> x needs
        // d_r >= 1, but the cycle only has one delay.
        s.set(x, 1);
        s.set(y, 1);
        assert!(realizing_retiming(&g, &s).is_none());
        assert!(check_static_schedule(&g, &s, &res).is_err());
    }

    /// A start step near `u32::MAX` used to overflow `s(u) + t(u)` in the
    /// precedence checks (a debug-build panic on hostile input); it must
    /// instead saturate and report a violation.
    #[test]
    fn near_max_start_steps_fail_cleanly_instead_of_wrapping() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let mut s = Schedule::empty(&g);
        s.set(m, u32::MAX);
        s.set(a, 1);
        // Wrapped arithmetic would compute finish(m) = 1 and accept the
        // zero-delay edge m -> a; saturation must reject it.
        let err = check_dag_schedule(&g, None, &s, &res).unwrap_err();
        assert!(matches!(
            err,
            SchedError::PrecedenceViolated {
                finish: u32::MAX,
                ..
            }
        ));
        // The retiming dual hits the same sum on every edge; it must
        // terminate without panicking (no realizing retiming exists is
        // fine, finding one is fine — unwinding is not).
        let _ = realizing_retiming(&g, &s);
    }

    #[test]
    fn realizing_retiming_minimizes_depth() {
        // A 3-stage chain closed by 3 delays, scheduled "rotated": the
        // naive rotation function would have depth 3 but the schedule is
        // realizable at depth 2.
        let g = DfgBuilder::new("deep")
            .nodes("v", 3, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2"])
            .edge("v2", "v0", 3)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let mut s = Schedule::empty(&g);
        // v1 first, then v2, then v0: realized by r(v0)=1 (depth 2).
        s.set(ids[1], 1);
        s.set(ids[2], 2);
        s.set(ids[0], 3);
        let r = realizing_retiming(&g, &s).unwrap();
        assert!(r.is_legal(&g));
        assert!(r.is_normalized());
        assert_eq!(r.depth(), 2);
    }
}
