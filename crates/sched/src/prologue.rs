//! Expansion of a static schedule into the full loop execution:
//! prologue, repeated kernel, epilogue (Figure 4).
//!
//! With a normalized retiming `R`, kernel instance `k` executes node `v`
//! on behalf of loop iteration `k + R(v)` — a node with `R(v) = ρ` was
//! rotated `ρ` iterations "up". Running the loop for `N` iterations
//! therefore takes kernel instances `k ∈ [−max R, N)` clipped to the
//! iterations that exist:
//!
//! * `k < 0` — **prologue** instances executing only high-`R` nodes;
//! * `0 ≤ k < N − max R` — **steady-state kernel** instances executing
//!   every node;
//! * `k ≥ N − max R` — **epilogue** instances executing only low-`R`
//!   nodes.
//!
//! The expansion is exact: each of the `N·|V|` node executions appears
//! exactly once, at absolute time `k · L + s(v)` for kernel length `L`.

use rotsched_dfg::{Dfg, NodeId, Retiming};

use crate::schedule::Schedule;

/// One node execution in the expanded loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopEvent {
    /// The node being executed.
    pub node: NodeId,
    /// The loop iteration this execution belongs to (0-based).
    pub iteration: u32,
    /// Kernel instance index (negative during the prologue).
    pub kernel: i64,
    /// Absolute start control step; the prologue occupies non-positive
    /// steps so that kernel instance 0 starts at step 1.
    pub start: i64,
}

/// Which phase of the expanded loop an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopPhase {
    /// Before the steady state (partial kernel instances).
    Prologue,
    /// The repeated static schedule.
    Kernel,
    /// Draining partial instances at the end.
    Epilogue,
}

/// A static schedule plus the retiming that realizes it, expanded on
/// demand into the full loop execution.
#[derive(Clone, Debug)]
pub struct LoopSchedule {
    kernel_length: u32,
    schedule: Schedule,
    retiming: Retiming,
    max_r: i64,
}

impl LoopSchedule {
    /// Bundles a kernel (static schedule of length `kernel_length`,
    /// normalized to start at step 1) with its realizing retiming.
    ///
    /// # Panics
    ///
    /// Panics if the retiming is not normalized (run
    /// [`Retiming::to_normalized`] first) or the schedule starts before
    /// step 1.
    #[must_use]
    pub fn new(kernel_length: u32, schedule: Schedule, retiming: Retiming) -> Self {
        assert!(
            retiming.is_normalized(),
            "loop expansion requires a normalized retiming"
        );
        assert!(
            schedule.first_step().is_none_or(|f| f >= 1),
            "kernel schedule must start at control step 1"
        );
        let max_r = retiming.max_value();
        LoopSchedule {
            kernel_length,
            schedule,
            retiming,
            max_r,
        }
    }

    /// The kernel length `L` (initiation interval).
    #[must_use]
    pub fn kernel_length(&self) -> u32 {
        self.kernel_length
    }

    /// The pipeline depth (Property 2): `1 + max R`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        u32::try_from(1 + self.max_r).expect("normalized retiming has non-negative depth")
    }

    /// The kernel schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The realizing retiming.
    #[must_use]
    pub fn retiming(&self) -> &Retiming {
        &self.retiming
    }

    /// Expands the loop over `iterations` iterations into the exact list
    /// of node executions, sorted by start time (ties by node id).
    ///
    /// Each node executes once per iteration; an event's `start` is
    /// `kernel · L + s(v)` with prologue instances at negative kernel
    /// indices.
    #[must_use]
    pub fn events(&self, dfg: &Dfg, iterations: u32) -> Vec<LoopEvent> {
        let mut events = Vec::with_capacity(dfg.node_count() * iterations as usize);
        let n = i64::from(iterations);
        for k in -self.max_r..n {
            for (v, s) in self.schedule.iter() {
                let iter = k + self.retiming.of(v);
                if (0..n).contains(&iter) {
                    events.push(LoopEvent {
                        node: v,
                        iteration: u32::try_from(iter).expect("0 <= iter < n"),
                        kernel: k,
                        start: k * i64::from(self.kernel_length) + i64::from(s),
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.start, e.node));
        events
    }

    /// Classifies a kernel instance index for `iterations` iterations.
    #[must_use]
    pub fn phase(&self, kernel: i64, iterations: u32) -> LoopPhase {
        if kernel < 0 {
            LoopPhase::Prologue
        } else if kernel + self.max_r >= i64::from(iterations) {
            LoopPhase::Epilogue
        } else {
            LoopPhase::Kernel
        }
    }

    /// The total number of control steps the expanded loop occupies
    /// (makespan), from the first prologue step through the last finish.
    #[must_use]
    pub fn makespan(&self, dfg: &Dfg, iterations: u32) -> u64 {
        let events = self.events(dfg, iterations);
        let first = events.iter().map(|e| e.start).min().unwrap_or(0);
        let last = events
            .iter()
            .map(|e| e.start + i64::from(dfg.node(e.node).time().max(1)) - 1)
            .max()
            .unwrap_or(0);
        u64::try_from(last - first + 1).unwrap_or(0)
    }

    /// Renders the expanded loop like Figure 4: one line per absolute
    /// step, listing the executions that start there with their
    /// iteration numbers and phase markers.
    #[must_use]
    pub fn format_expansion(&self, dfg: &Dfg, iterations: u32) -> String {
        use core::fmt::Write as _;
        let events = self.events(dfg, iterations);
        let mut out = String::new();
        let mut idx = 0;
        while idx < events.len() {
            let start = events[idx].start;
            let mut line = Vec::new();
            let mut phase = LoopPhase::Kernel;
            while idx < events.len() && events[idx].start == start {
                let e = &events[idx];
                phase = self.phase(e.kernel, iterations);
                line.push(format!("{}@it{}", dfg.node(e.node).name(), e.iteration));
                idx += 1;
            }
            let marker = match phase {
                LoopPhase::Prologue => "P",
                LoopPhase::Kernel => " ",
                LoopPhase::Epilogue => "E",
            };
            let _ = writeln!(out, "{marker} t={start:>4}  {}", line.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    /// Two-node loop pipelined to depth 2: m rotated one iteration up.
    fn pipelined_pair() -> (Dfg, LoopSchedule) {
        let g = DfgBuilder::new("pair")
            .node("m", OpKind::Mul, 1)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .edge("a", "m", 1)
            .build()
            .unwrap();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::from_set(&g, [m]);
        let mut s = Schedule::empty(&g);
        // In G_r the edge m -> a carries one delay and a -> m none, so a
        // legal kernel runs both in one step: a of iteration j and m of
        // iteration j+1 — wait, a -> m is zero-delay in G_r, so m follows
        // a. Use a 1-step kernel anyway: a at 1, m at 1 is illegal; keep
        // a at 1, m at 1 staggered over 2 steps for clarity.
        s.set(a, 1);
        s.set(m, 2);
        (g, LoopSchedule::new(2, s, r))
    }

    #[test]
    fn every_iteration_executes_every_node_once() {
        let (g, ls) = pipelined_pair();
        let events = ls.events(&g, 4);
        assert_eq!(events.len(), 8);
        for v in g.node_ids() {
            for it in 0..4 {
                assert_eq!(
                    events
                        .iter()
                        .filter(|e| e.node == v && e.iteration == it)
                        .count(),
                    1,
                    "node {v} iteration {it}"
                );
            }
        }
    }

    #[test]
    fn prologue_runs_high_r_nodes_early() {
        let (g, ls) = pipelined_pair();
        let m = g.node_by_name("m").unwrap();
        let events = ls.events(&g, 3);
        let first = &events[0];
        assert_eq!(first.node, m);
        assert_eq!(first.iteration, 0);
        assert_eq!(ls.phase(first.kernel, 3), LoopPhase::Prologue);
        assert!(first.start <= 0, "prologue occupies non-positive steps");
    }

    #[test]
    fn epilogue_runs_low_r_nodes_last() {
        let (g, ls) = pipelined_pair();
        let a = g.node_by_name("a").unwrap();
        let events = ls.events(&g, 3);
        let last = events.last().unwrap();
        assert_eq!(last.node, a);
        assert_eq!(last.iteration, 2);
        assert_eq!(ls.phase(last.kernel, 3), LoopPhase::Epilogue);
    }

    #[test]
    fn depth_matches_retiming() {
        let (_, ls) = pipelined_pair();
        assert_eq!(ls.depth(), 2);
    }

    #[test]
    fn makespan_grows_linearly_with_iterations() {
        let (g, ls) = pipelined_pair();
        let m10 = ls.makespan(&g, 10);
        let m20 = ls.makespan(&g, 20);
        assert_eq!(m20 - m10, 10 * u64::from(ls.kernel_length()));
    }

    #[test]
    fn zero_retiming_has_no_prologue() {
        let g = DfgBuilder::new("flat")
            .node("x", OpKind::Add, 1)
            .build()
            .unwrap();
        let x = g.node_by_name("x").unwrap();
        let mut s = Schedule::empty(&g);
        s.set(x, 1);
        let ls = LoopSchedule::new(1, s, Retiming::zero(&g));
        let events = ls.events(&g, 3);
        assert!(events.iter().all(|e| e.start >= 1));
        assert_eq!(ls.depth(), 1);
    }

    #[test]
    fn format_expansion_marks_phases() {
        let (g, ls) = pipelined_pair();
        let text = ls.format_expansion(&g, 3);
        assert!(text.contains("P t="));
        assert!(text.contains("E t="));
        assert!(text.contains("m@it0"));
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn unnormalized_retiming_is_rejected() {
        let g = DfgBuilder::new("g")
            .node("x", OpKind::Add, 1)
            .build()
            .unwrap();
        let x = g.node_by_name("x").unwrap();
        let mut r = Retiming::zero(&g);
        r.set(x, -1);
        let mut s = Schedule::empty(&g);
        s.set(x, 1);
        let _ = LoopSchedule::new(1, s, r);
    }
}
