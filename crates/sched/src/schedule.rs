//! Schedules: mappings from nodes to control steps.
//!
//! A schedule `s` assigns each node the 1-based control step where its
//! execution *starts* (multi-cycle operations extend over following
//! steps). The *length* of a schedule is the number of control steps from
//! the first occupied one through the last — which for a static schedule
//! is the minimum initiation interval of the loop pipeline.

use rotsched_dfg::{Dfg, NodeId, NodeMap};

/// A (possibly partial) assignment of nodes to start control steps.
///
/// # Examples
///
/// ```
/// use rotsched_dfg::{Dfg, OpKind};
/// use rotsched_sched::Schedule;
///
/// let mut g = Dfg::new("g");
/// let a = g.add_node("a", OpKind::Mul, 2);
/// let b = g.add_node("b", OpKind::Add, 1);
///
/// let mut s = Schedule::empty(&g);
/// s.set(a, 1);
/// s.set(b, 3);
/// assert_eq!(s.length(&g), 3); // steps 1..=3 are occupied
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    start: NodeMap<Option<u32>>,
}

impl Schedule {
    /// An empty schedule for the nodes of `dfg`.
    #[must_use]
    pub fn empty(dfg: &Dfg) -> Self {
        Schedule {
            start: dfg.node_map(None),
        }
    }

    /// The start control step of `v`, if scheduled.
    #[must_use]
    pub fn start(&self, v: NodeId) -> Option<u32> {
        self.start[v]
    }

    /// Assigns `v` to start at control step `cs` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `cs == 0`; control steps are 1-based.
    pub fn set(&mut self, v: NodeId, cs: u32) {
        assert!(cs >= 1, "control steps are 1-based");
        self.start[v] = Some(cs);
    }

    /// Removes `v` from the schedule (deallocation before rescheduling).
    pub fn clear(&mut self, v: NodeId) {
        self.start[v] = None;
    }

    /// Whether every node is scheduled.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.start.values().all(Option::is_some)
    }

    /// Iterates over scheduled `(node, start)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.start
            .iter()
            .filter_map(|(id, &cs)| cs.map(|c| (id, c)))
    }

    /// The first occupied control step (`None` if nothing is scheduled).
    #[must_use]
    pub fn first_step(&self) -> Option<u32> {
        self.iter().map(|(_, cs)| cs).min()
    }

    /// The last occupied control step, accounting for multi-cycle
    /// durations: `max_v s(v) + t(v) − 1`.
    #[must_use]
    pub fn last_step(&self, dfg: &Dfg) -> Option<u32> {
        self.iter()
            .map(|(v, cs)| cs + dfg.node(v).time().max(1) - 1)
            .max()
    }

    /// The schedule length in control steps: last occupied step minus
    /// first occupied step plus one (0 for an empty schedule).
    #[must_use]
    pub fn length(&self, dfg: &Dfg) -> u32 {
        match (self.first_step(), self.last_step(dfg)) {
            (Some(first), Some(last)) => last - first + 1,
            _ => 0,
        }
    }

    /// Shifts every scheduled node by `delta` control steps (negative
    /// shifts move the schedule earlier).
    ///
    /// # Panics
    ///
    /// Panics if a shift would move a node to control step 0 or below.
    pub fn shift(&mut self, delta: i64) {
        for slot in self.start.values_mut() {
            if let Some(cs) = slot {
                let shifted = i64::from(*cs) + delta;
                assert!(
                    shifted >= 1,
                    "shift would move a node before control step 1"
                );
                *slot = Some(u32::try_from(shifted).expect("control step fits in u32"));
            }
        }
    }

    /// Renumbers control steps so the first occupied one becomes 1.
    /// Already-normalized schedules are left untouched (no O(V) shift).
    pub fn normalize(&mut self) {
        if let Some(first) = self.first_step() {
            if first != 1 {
                self.shift(1 - i64::from(first));
            }
        }
    }

    /// The nodes scheduled in the first `steps` control steps (relative
    /// to the schedule's own first step) — the candidate set `S_i` of a
    /// down-rotation of size `i` (Subsection 3.1).
    #[must_use]
    pub fn prefix_nodes(&self, steps: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.prefix_nodes_into(steps, &mut out);
        out
    }

    /// [`Schedule::prefix_nodes`] into a caller-owned buffer (cleared
    /// first), so the rotation loop reuses one allocation across steps.
    pub fn prefix_nodes_into(&self, steps: u32, out: &mut Vec<NodeId>) {
        out.clear();
        let Some(first) = self.first_step() else {
            return;
        };
        out.extend(
            self.iter()
                .filter(|&(_, cs)| cs < first + steps)
                .map(|(v, _)| v),
        );
    }

    /// Renders the schedule as a control-step table like the paper's
    /// Figure 2, one column per resource class name in `columns` (nodes
    /// are grouped by a caller-supplied classifier).
    #[must_use]
    pub fn format_table(
        &self,
        dfg: &Dfg,
        columns: &[&str],
        classify: impl Fn(NodeId) -> usize,
    ) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let Some(first) = self.first_step() else {
            return "(empty schedule)\n".to_owned();
        };
        let last = self
            .last_step(dfg)
            .expect("nonempty schedule has a last step");
        let _ = write!(out, "{:>4} ", "CS");
        for c in columns {
            let _ = write!(out, "| {c:^14} ");
        }
        out.push('\n');
        for cs in first..=last {
            let _ = write!(out, "{cs:>4} ");
            for (col_idx, _) in columns.iter().enumerate() {
                let cell: Vec<String> = self
                    .iter()
                    .filter(|&(v, start)| {
                        classify(v) == col_idx
                            && start <= cs
                            && cs < start + dfg.node(v).time().max(1)
                    })
                    .map(|(v, start)| {
                        let name = dfg.node(v).name().to_owned();
                        if cs == start {
                            name
                        } else {
                            format!("{name}'")
                        }
                    })
                    .collect();
                let text = if cell.is_empty() {
                    "-".to_owned()
                } else {
                    cell.join(",")
                };
                let _ = write!(out, "| {text:^14} ");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    fn graph() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new("g");
        let a = g.add_node("a", OpKind::Mul, 2);
        let b = g.add_node("b", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Add, 1);
        (g, a, b, c)
    }

    #[test]
    fn set_and_length() {
        let (g, a, b, c) = graph();
        let mut s = Schedule::empty(&g);
        assert_eq!(s.length(&g), 0);
        s.set(a, 2);
        s.set(b, 4);
        s.set(c, 4);
        // a occupies 2-3, b and c occupy 4 -> steps 2..=4.
        assert_eq!(s.first_step(), Some(2));
        assert_eq!(s.last_step(&g), Some(4));
        assert_eq!(s.length(&g), 3);
        assert!(s.is_complete());
    }

    #[test]
    fn multicycle_tail_extends_length() {
        let (g, a, _, _) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 5); // occupies 5-6
        assert_eq!(s.last_step(&g), Some(6));
        assert_eq!(s.length(&g), 2);
    }

    #[test]
    fn clear_removes_a_node() {
        let (g, a, b, _) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.set(b, 2);
        s.clear(a);
        assert_eq!(s.start(a), None);
        assert!(!s.is_complete());
        assert_eq!(s.first_step(), Some(2));
    }

    #[test]
    fn shift_and_normalize() {
        let (g, a, b, _) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 3);
        s.set(b, 5);
        s.shift(2);
        assert_eq!(s.start(a), Some(5));
        s.normalize();
        assert_eq!(s.start(a), Some(1));
        assert_eq!(s.start(b), Some(3));
        // a occupies steps 1-2, b occupies step 3.
        assert_eq!(s.length(&g), 3);
    }

    #[test]
    #[should_panic(expected = "before control step 1")]
    fn shift_below_one_panics() {
        let (g, a, _, _) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.shift(-1);
    }

    #[test]
    fn prefix_nodes_returns_early_steps() {
        let (g, a, b, c) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 2);
        s.set(b, 3);
        s.set(c, 5);
        // First step is 2; a prefix of 2 steps covers steps 2 and 3.
        let mut prefix = s.prefix_nodes(2);
        prefix.sort();
        assert_eq!(prefix, vec![a, b]);
    }

    #[test]
    fn format_table_marks_tails() {
        let (g, a, b, _) = graph();
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.set(b, 2);
        let table = s.format_table(&g, &["Mult", "Adder"], |v| {
            usize::from(!matches!(g.node(v).op(), OpKind::Mul))
        });
        assert!(table.contains("a'"), "tail of the 2-cycle mult is marked");
        assert!(table.contains('b'));
    }
}
