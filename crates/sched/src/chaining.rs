//! Operator chaining: several dependent operations in one control step.
//!
//! Section 3 notes that the basic rotation algorithm "can handle chained
//! operations": when operation delays are measured in *time units* finer
//! than a control step (the paper's setup: 40 ns adders in 50 ns steps),
//! a fast operation can start within the same control step its
//! predecessor finishes in, as long as the combinational chain fits the
//! step. This module provides the chained scheduling substrate:
//!
//! * [`ChainedSchedule`] — start step **and** intra-step offset per node;
//! * [`ChainedScheduler`] — list scheduling with chaining, in full and
//!   partial (incremental) modes, mirroring [`ListScheduler`];
//! * validation of chained schedules.
//!
//! Units are still occupied per control step (an adder performs one
//! addition per cycle; a chain uses *different* units connected
//! combinationally). Operations longer than a step occupy
//! `ceil(t / step)` consecutive steps starting at offset 0 and cannot
//! be chained after.
//!
//! [`ListScheduler`]: crate::ListScheduler

use rotsched_dfg::analysis::topo::is_zero_delay_under;
use rotsched_dfg::{Dfg, NodeId, NodeMap, Retiming};

use crate::error::SchedError;
use crate::priority::PriorityPolicy;
use crate::reservation::ReservationTable;
use crate::resources::ResourceSet;

/// Sub-step timing: how many time units one control step holds, and how
/// long each node takes in time units (taken from `Node::time`, which in
/// chained mode is interpreted as *time units*, not steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChainTiming {
    /// Usable time units per control step (the paper: 40 of the 50 ns
    /// are usable; 10 ns are latch overhead — so `40` with node times
    /// of 40/80 ns expressed as 40 and 80).
    pub units_per_step: u32,
}

impl ChainTiming {
    /// Creates a timing with the given usable units per control step.
    ///
    /// # Panics
    ///
    /// Panics if `units_per_step == 0`.
    #[must_use]
    pub fn new(units_per_step: u32) -> Self {
        assert!(units_per_step > 0, "a control step must hold time");
        ChainTiming { units_per_step }
    }

    /// Control steps an operation of `time` units occupies.
    #[must_use]
    pub fn steps_for(&self, time: u32) -> u32 {
        time.max(1).div_ceil(self.units_per_step)
    }

    /// Whether an operation of `time` units fits inside one step.
    #[must_use]
    pub fn fits_in_step(&self, time: u32) -> bool {
        time.max(1) <= self.units_per_step
    }
}

/// A chained schedule: per node, the 1-based start step and the offset
/// (in time units) within that step at which it begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainedSchedule {
    start: NodeMap<Option<(u32, u32)>>,
}

impl ChainedSchedule {
    /// An empty chained schedule for `dfg`.
    #[must_use]
    pub fn empty(dfg: &Dfg) -> Self {
        ChainedSchedule {
            start: dfg.node_map(None),
        }
    }

    /// The `(step, offset)` of `v`, if scheduled.
    #[must_use]
    pub fn start(&self, v: NodeId) -> Option<(u32, u32)> {
        self.start[v]
    }

    /// Assigns `v`.
    pub fn set(&mut self, v: NodeId, step: u32, offset: u32) {
        assert!(step >= 1, "control steps are 1-based");
        self.start[v] = Some((step, offset));
    }

    /// Removes `v`.
    pub fn clear(&mut self, v: NodeId) {
        self.start[v] = None;
    }

    /// Whether every node is scheduled.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.start.values().all(Option::is_some)
    }

    /// The finish `(step, offset)` of `v` under `timing` — the position
    /// at which a chained successor could begin.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unscheduled.
    #[must_use]
    pub fn finish(&self, dfg: &Dfg, timing: &ChainTiming, v: NodeId) -> (u32, u32) {
        let (step, offset) = self.start[v].expect("node is scheduled");
        let t = dfg.node(v).time().max(1);
        if timing.fits_in_step(t) && offset + t <= timing.units_per_step {
            (step, offset + t)
        } else {
            // Multi-step op: occupies full steps from offset 0.
            (step + timing.steps_for(t), 0)
        }
    }

    /// Schedule length in control steps.
    #[must_use]
    pub fn length(&self, dfg: &Dfg, timing: &ChainTiming) -> u32 {
        let mut first = u32::MAX;
        let mut last = 0_u32;
        for (v, slot) in self.start.iter() {
            if let Some((step, offset)) = *slot {
                first = first.min(step);
                let t = dfg.node(v).time().max(1);
                let end_step = if timing.fits_in_step(t) && offset + t <= timing.units_per_step {
                    step
                } else {
                    step + timing.steps_for(t) - 1
                };
                last = last.max(end_step);
            }
        }
        if first == u32::MAX {
            0
        } else {
            last - first + 1
        }
    }

    /// Nodes starting within the first `steps` control steps (for
    /// chained rotation).
    #[must_use]
    pub fn prefix_nodes(&self, steps: u32) -> Vec<NodeId> {
        let first = self
            .start
            .iter()
            .filter_map(|(_, s)| s.map(|(step, _)| step))
            .min();
        let Some(first) = first else {
            return Vec::new();
        };
        self.start
            .iter()
            .filter_map(|(v, s)| s.map(|(step, _)| (v, step)))
            .filter(|&(_, step)| step < first + steps)
            .map(|(v, _)| v)
            .collect()
    }

    /// Renumbers steps so the first occupied one becomes 1.
    pub fn normalize(&mut self) {
        let first = self
            .start
            .iter()
            .filter_map(|(_, s)| s.map(|(step, _)| step))
            .min();
        let Some(first) = first else { return };
        let delta = first - 1;
        for (step, _) in self.start.values_mut().flatten() {
            *step -= delta;
        }
    }
}

/// List scheduling with operator chaining.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChainedScheduler {
    policy: PriorityPolicy,
}

impl ChainedScheduler {
    /// A chained scheduler with the given priority policy.
    #[must_use]
    pub fn new(policy: PriorityPolicy) -> Self {
        ChainedScheduler { policy }
    }

    /// Schedules the whole zero-delay DAG of `G_r` with chaining.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::ListScheduler::schedule`].
    pub fn schedule(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        timing: &ChainTiming,
    ) -> Result<ChainedSchedule, SchedError> {
        let mut s = ChainedSchedule::empty(dfg);
        let free: Vec<NodeId> = dfg.node_ids().collect();
        self.reschedule(dfg, retiming, resources, timing, &mut s, &free)?;
        s.normalize();
        Ok(s)
    }

    /// Incrementally places `free` into `schedule` without moving fixed
    /// nodes — the chained `PartialSchedule`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::ListScheduler::reschedule`].
    pub fn reschedule(
        &self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        timing: &ChainTiming,
        schedule: &mut ChainedSchedule,
        free: &[NodeId],
    ) -> Result<(), SchedError> {
        let weights = self
            .policy
            .weights(dfg, retiming)
            .map_err(SchedError::from)?;
        let mut is_free = dfg.node_map(false);
        for &v in free {
            is_free[v] = true;
            schedule.clear(v);
        }

        let mut class_of = dfg.node_map(None);
        for (v, node) in dfg.nodes() {
            class_of[v] = Some(
                resources
                    .class_for(node.op())
                    .ok_or(SchedError::UnboundOp { node: v })?,
            );
        }

        // Reserve fixed nodes.
        let mut table = ReservationTable::new(resources);
        for v in dfg.node_ids() {
            if let Some((step, _)) = schedule.start(v) {
                let class_id = class_of[v].expect("bound");
                let steps = timing.steps_for(dfg.node(v).time());
                let occ: Vec<u32> = (0..steps).map(|off| step + off).collect();
                if !table.can_place(class_id, occ.iter().copied()) {
                    let class = resources.class(class_id);
                    return Err(SchedError::ResourceOverflow {
                        class: class.name().to_owned(),
                        cs: step,
                        used: table.used(class_id, step) + 1,
                        limit: class.count(),
                    });
                }
                table.place(class_id, occ);
            }
        }

        // Blocking counts over the zero-delay DAG.
        let mut blocking = dfg.node_map(0_u32);
        for &v in free {
            for &e in dfg.in_edges(v) {
                if is_zero_delay_under(dfg, retiming, e) && is_free[dfg.edge(e).from()] {
                    blocking[v] += 1;
                }
            }
        }
        rotsched_dfg::analysis::zero_delay_topological_order(dfg, retiming)
            .map_err(SchedError::from)?;

        let mut ready: Vec<NodeId> = free.iter().copied().filter(|&v| blocking[v] == 0).collect();
        let mut remaining = free.len();
        let horizon = table.horizon()
            + u32::try_from(dfg.node_count()).unwrap_or(u32::MAX)
                * timing.steps_for(dfg.max_node_time()).max(1)
            + 1;

        while remaining > 0 {
            ready.sort_by_key(|&v| (core::cmp::Reverse(weights[v]), v));
            // Place the best ready node at its earliest chained slot.
            let Some(&v) = ready.first() else {
                return Err(SchedError::NoFeasibleSlot {
                    node: free
                        .iter()
                        .copied()
                        .find(|&v| schedule.start(v).is_none())
                        .expect("remaining > 0"),
                });
            };
            ready.remove(0);

            // Earliest (step, offset) from scheduled zero-delay preds.
            let mut est = (1_u32, 0_u32);
            for &e in dfg.in_edges(v) {
                if is_zero_delay_under(dfg, retiming, e) {
                    let u = dfg.edge(e).from();
                    if schedule.start(u).is_some() {
                        let fin = schedule.finish(dfg, timing, u);
                        if fin > est {
                            est = fin;
                        }
                    }
                }
            }

            let t = dfg.node(v).time().max(1);
            let class_id = class_of[v].expect("bound");
            let steps_needed = timing.steps_for(t);
            let chainable = timing.fits_in_step(t);

            let (mut step, mut offset) = est;
            // A chained start needs the op to fit in the remainder of
            // the step; otherwise round up to the next step boundary.
            if !(chainable && offset + t <= timing.units_per_step) {
                if offset > 0 {
                    step += 1;
                }
                offset = 0;
            }
            let mut placed = false;
            while step <= horizon {
                let occ: Vec<u32> = (0..steps_needed).map(|off| step + off).collect();
                if table.can_place(class_id, occ.iter().copied()) {
                    table.place(class_id, occ);
                    schedule.set(v, step, offset);
                    placed = true;
                    break;
                }
                step += 1;
                offset = 0;
            }
            if !placed {
                return Err(SchedError::NoFeasibleSlot { node: v });
            }
            remaining -= 1;
            for &e in dfg.out_edges(v) {
                if is_zero_delay_under(dfg, retiming, e) {
                    let w = dfg.edge(e).to();
                    if is_free[w] && schedule.start(w).is_none() {
                        blocking[w] -= 1;
                        if blocking[w] == 0 {
                            ready.push(w);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Validates a chained schedule: zero-delay precedence with sub-step
/// resolution, and per-step unit limits.
///
/// # Errors
///
/// Returns the first violation, in [`SchedError`] terms.
pub fn check_chained_schedule(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    schedule: &ChainedSchedule,
    resources: &ResourceSet,
    timing: &ChainTiming,
) -> Result<(), SchedError> {
    for v in dfg.node_ids() {
        if schedule.start(v).is_none() {
            return Err(SchedError::Unscheduled { node: v });
        }
    }
    for (id, edge) in dfg.edges() {
        if is_zero_delay_under(dfg, retiming, id) {
            let fin = schedule.finish(dfg, timing, edge.from());
            let start = schedule.start(edge.to()).expect("complete");
            if fin > start {
                return Err(SchedError::PrecedenceViolated {
                    from: edge.from(),
                    to: edge.to(),
                    finish: fin.0,
                    start: start.0,
                });
            }
        }
    }
    let mut table = ReservationTable::new(resources);
    for (v, node) in dfg.nodes() {
        let class_id = resources
            .class_for(node.op())
            .ok_or(SchedError::UnboundOp { node: v })?;
        let (step, _) = schedule.start(v).expect("complete");
        let occ: Vec<u32> = (0..timing.steps_for(node.time()))
            .map(|off| step + off)
            .collect();
        if !table.can_place(class_id, occ.iter().copied()) {
            let class = resources.class(class_id);
            return Err(SchedError::ResourceOverflow {
                class: class.name().to_owned(),
                cs: step,
                used: table.used(class_id, step) + 1,
                limit: class.count(),
            });
        }
        table.place(class_id, occ);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    /// The paper's physical timing: 50 ns steps with 10 ns latch -> 40
    /// usable units; adds take 40, mults 80.
    fn paper_chain() -> ChainTiming {
        ChainTiming::new(40)
    }

    #[test]
    fn steps_for_and_fits() {
        let t = paper_chain();
        assert_eq!(t.steps_for(40), 1);
        assert_eq!(t.steps_for(80), 2);
        assert!(t.fits_in_step(40));
        assert!(!t.fits_in_step(80));
        // A fast 15-unit shift: chains up to twice in a step... fits.
        assert!(t.fits_in_step(15));
    }

    #[test]
    fn fast_ops_chain_within_a_step() {
        // Two dependent 15-unit shifts fit in one 40-unit step.
        let g = DfgBuilder::new("chain")
            .node("a", OpKind::Shift, 15)
            .node("b", OpKind::Shift, 15)
            .wire("a", "b")
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &paper_chain())
            .unwrap();
        assert_eq!(s.length(&g, &paper_chain()), 1);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(s.start(a), Some((1, 0)));
        assert_eq!(s.start(b), Some((1, 15)));
        check_chained_schedule(&g, None, &s, &res, &paper_chain()).unwrap();
    }

    #[test]
    fn full_width_ops_do_not_chain() {
        // Two dependent 40-unit adds need two steps.
        let g = DfgBuilder::new("adds")
            .node("a", OpKind::Add, 40)
            .node("b", OpKind::Add, 40)
            .wire("a", "b")
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &paper_chain())
            .unwrap();
        assert_eq!(s.length(&g, &paper_chain()), 2);
    }

    #[test]
    fn multicycle_mults_occupy_two_steps() {
        let g = DfgBuilder::new("mc")
            .node("m", OpKind::Mul, 80)
            .node("a", OpKind::Add, 40)
            .wire("m", "a")
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let timing = paper_chain();
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &timing)
            .unwrap();
        // m occupies steps 1-2; a starts at step 3.
        assert_eq!(s.start(g.node_by_name("a").unwrap()), Some((3, 0)));
        assert_eq!(s.length(&g, &timing), 3);
        check_chained_schedule(&g, None, &s, &res, &timing).unwrap();
    }

    #[test]
    fn chain_longer_than_a_step_spills_to_the_next() {
        // Three dependent 15-unit ops: 15+15 fit in step 1 (ends at 30);
        // the third needs 15 more but only 10 remain -> starts step 2.
        let g = DfgBuilder::new("spill")
            .nodes("s", 3, OpKind::Shift, 15)
            .chain(&["s0", "s1", "s2"])
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let timing = paper_chain();
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &timing)
            .unwrap();
        assert_eq!(s.start(g.node_by_name("s2").unwrap()), Some((2, 0)));
        assert_eq!(s.length(&g, &timing), 2);
    }

    #[test]
    fn resources_still_limit_per_step() {
        // Two independent 40-unit adds on ONE adder: serialize.
        let g = DfgBuilder::new("serial")
            .nodes("a", 2, OpKind::Add, 40)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &paper_chain())
            .unwrap();
        assert_eq!(s.length(&g, &paper_chain()), 2);
    }

    #[test]
    fn chained_partial_reschedule_keeps_fixed() {
        let g = DfgBuilder::new("p")
            .nodes("a", 3, OpKind::Add, 40)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let timing = paper_chain();
        let sched = ChainedScheduler::default();
        let mut s = sched.schedule(&g, None, &res, &timing).unwrap();
        let fixed = s.start(ids[1]);
        sched
            .reschedule(&g, None, &res, &timing, &mut s, &[ids[0]])
            .unwrap();
        assert_eq!(s.start(ids[1]), fixed);
        check_chained_schedule(&g, None, &s, &res, &timing).unwrap();
    }

    #[test]
    fn chained_schedule_under_retiming() {
        let g = DfgBuilder::new("r")
            .node("a", OpKind::Shift, 15)
            .node("b", OpKind::Shift, 15)
            .wire("a", "b")
            .edge("b", "a", 1)
            .build()
            .unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::from_set(&g, [a]);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let s = ChainedScheduler::default()
            .schedule(&g, Some(&r), &res, &paper_chain())
            .unwrap();
        // In G_r the zero-delay edge is b -> a: b chains before a.
        let (sb, ob) = s.start(g.node_by_name("b").unwrap()).unwrap();
        let (sa, oa) = s.start(a).unwrap();
        assert!((sb, ob) < (sa, oa));
        check_chained_schedule(&g, Some(&r), &s, &res, &paper_chain()).unwrap();
    }

    #[test]
    fn prefix_nodes_for_chained_rotation() {
        let g = DfgBuilder::new("pref")
            .nodes("a", 4, OpKind::Add, 40)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let s = ChainedScheduler::default()
            .schedule(&g, None, &res, &paper_chain())
            .unwrap();
        assert_eq!(s.prefix_nodes(1).len(), 2);
    }
}
