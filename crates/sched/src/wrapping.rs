//! Wrapped schedules for multi-cycle operations (Section 4, Figures 6–8).
//!
//! With multi-cycle operations, a rotation can leave the *tail* of an
//! operation dangling past the end of the static schedule, lengthening
//! it. Because a static schedule is really a **cylinder** of instructions
//! executed repeatedly, such a tail can be *wrapped* around to the first
//! control steps — conceptually pushing a delay into the middle of the
//! node (Figure 7-(b)) — provided:
//!
//! 1. spare units exist in the wrapped-to control steps (resource
//!    condition), and
//! 2. the outgoing edges of the wrapped node that carry **one** delay are
//!    satisfied as *new* zero-delay-like precedences: the consumer of the
//!    next iteration must start no earlier than the wrapped tail ends.
//!
//! The schedule length of a DFG with multi-cycle operations is defined as
//! the length of its wrapped schedule; rotation keeps operating on the
//! unwrapped schedule and wrapping is (re)computed on demand.

use rotsched_dfg::{Dfg, NodeId, Retiming};

use crate::error::SchedError;
use crate::reservation::ReservationTable;
use crate::resources::ResourceSet;
use crate::schedule::Schedule;

/// A schedule interpreted cyclically with a kernel of `kernel_length`
/// control steps; tails of multi-cycle operations may wrap past the
/// boundary into the next kernel instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrappedSchedule {
    /// The kernel length `L` — the initiation interval of the pipeline.
    pub kernel_length: u32,
    /// The underlying (normalized) start steps; all starts lie in
    /// `1..=kernel_length`, finishes may exceed it.
    pub schedule: Schedule,
    /// Nodes whose execution crosses the kernel boundary.
    pub wrapped_nodes: Vec<NodeId>,
}

impl WrappedSchedule {
    /// Whether any node actually wraps.
    #[must_use]
    pub fn has_wraps(&self) -> bool {
        !self.wrapped_nodes.is_empty()
    }
}

/// Attempts to interpret `schedule` as a wrapped schedule with kernel
/// length `target`.
///
/// The input schedule must be a legal DAG schedule of `G_r` (precedences
/// with `d_r = 0` satisfied linearly); this function additionally checks
/// the wrap conditions above.
///
/// # Errors
///
/// * [`SchedError::NoFeasibleSlot`] — some node *starts* after `target`
///   (only tails may wrap) or a tail would cross two boundaries.
/// * [`SchedError::ResourceOverflow`] — the folded (modulo `target`)
///   usage exceeds a class limit.
/// * [`SchedError::PrecedenceViolated`] — a one-delay successor of a
///   wrapped node starts before the wrapped tail ends.
/// * [`SchedError::Unscheduled`] — the schedule is incomplete.
///
/// # Panics
///
/// Panics if `target == 0`.
pub fn wrap_to_length(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    schedule: &Schedule,
    resources: &ResourceSet,
    target: u32,
) -> Result<WrappedSchedule, SchedError> {
    assert!(target >= 1, "kernel length must be positive");
    let mut normalized = schedule.clone();
    for v in dfg.node_ids() {
        if normalized.start(v).is_none() {
            return Err(SchedError::Unscheduled { node: v });
        }
    }
    normalized.normalize();

    let mut wrapped_nodes = Vec::new();
    for (v, cs) in normalized.iter() {
        if cs > target {
            return Err(SchedError::NoFeasibleSlot { node: v });
        }
        let finish = cs + dfg.node(v).time().max(1) - 1; // inclusive last step
        if finish > 2 * target {
            // A tail crossing two kernel boundaries would need the
            // two-delay successors checked as well; rotation never
            // produces this, so reject it outright.
            return Err(SchedError::NoFeasibleSlot { node: v });
        }
        if finish > target {
            wrapped_nodes.push(v);
        }
    }

    // Resource condition: fold the linear reservations modulo `target`.
    let mut table = ReservationTable::new(resources);
    for (v, cs) in normalized.iter() {
        let class_id = resources
            .class_for(dfg.node(v).op())
            .ok_or(SchedError::UnboundOp { node: v })?;
        let class = resources.class(class_id);
        for off in class.occupancy(dfg.node(v).time()) {
            let folded = (cs + off - 1) % target + 1;
            if !table.can_place(class_id, [folded]) {
                return Err(SchedError::ResourceOverflow {
                    class: class.name().to_owned(),
                    cs: folded,
                    used: table.used(class_id, folded) + 1,
                    limit: class.count(),
                });
            }
            table.place(class_id, [folded]);
        }
    }

    // Precedence conditions.
    for (id, edge) in dfg.edges() {
        let dr = match retiming {
            Some(r) => r.retimed_delay(dfg, id),
            None => i64::from(edge.delays()),
        };
        let su = normalized.start(edge.from()).expect("complete");
        let sv = normalized.start(edge.to()).expect("complete");
        let finish = su + dfg.node(edge.from()).time().max(1); // exclusive
        match dr {
            0 if finish > sv => {
                return Err(SchedError::PrecedenceViolated {
                    from: edge.from(),
                    to: edge.to(),
                    finish,
                    start: sv,
                });
            }
            1 if finish - 1 > target
                // Wrapped producer: consumer of the next iteration must
                // wait for the tail: s(v) >= finish - target.
                && sv + target < finish =>
            {
                return Err(SchedError::PrecedenceViolated {
                    from: edge.from(),
                    to: edge.to(),
                    finish: finish - target,
                    start: sv,
                });
            }
            _ => {}
        }
    }

    Ok(WrappedSchedule {
        kernel_length: target,
        schedule: normalized,
        wrapped_nodes,
    })
}

/// The shortest kernel length at which `schedule` wraps legally, scanning
/// from the largest start step up to the unwrapped length.
///
/// The unwrapped length always succeeds, so this never fails on a legal
/// DAG schedule.
///
/// # Errors
///
/// Returns the error of the unwrapped interpretation if even that is
/// illegal (e.g. the schedule is incomplete or violates resources).
pub fn minimal_wrap(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<WrappedSchedule, SchedError> {
    let mut normalized = schedule.clone();
    normalized.normalize();
    let unwrapped_len = normalized.length(dfg);
    let min_start = normalized.iter().map(|(_, cs)| cs).max().unwrap_or(1);

    let mut last_err = None;
    for target in min_start..=unwrapped_len.max(min_start) {
        match wrap_to_length(dfg, retiming, &normalized, resources, target) {
            Ok(w) => return Ok(w),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(SchedError::NoFeasibleSlot {
        node: rotsched_dfg::NodeId::from_index(0),
    }))
}

/// The wrapped schedule length of a legal DAG schedule — the paper's
/// definition of schedule length in the presence of multi-cycle
/// operations.
///
/// # Errors
///
/// Propagates errors from [`minimal_wrap`].
pub fn wrapped_length(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<u32, SchedError> {
    Ok(minimal_wrap(dfg, retiming, schedule, resources)?.kernel_length)
}

/// Reusable buffers for the allocation-free wrapped-length probe the
/// rotation engine runs once per step.
///
/// [`wrapped_length`] clones and renormalizes the schedule, rebuilds a
/// [`ReservationTable`], and rebinds classes on every call — fine for
/// one-shot queries, but the dominant allocation source in the rotation
/// loop. `WrapScratch` hoists the class binding out and folds occupancy
/// into a flat reusable buffer, so steady-state probes allocate nothing
/// (the buffer grows to the largest target seen, then stays). Results
/// are identical to [`wrapped_length`] — `debug_assert`ed on every call
/// in debug builds.
#[derive(Clone, Debug)]
pub struct WrapScratch {
    /// Resource class of each node, by node index (bound once).
    class_of: Vec<crate::resources::ResourceClassId>,
    /// Normalized start steps, by node index (filled per call).
    starts: Vec<u32>,
    /// Folded occupancy, `classes × target` row-major (resized within
    /// capacity per probed target after warm-up).
    usage: Vec<u32>,
}

impl WrapScratch {
    /// Binds every node to its resource class up front.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::UnboundOp`] if some operation has no class.
    pub fn new(dfg: &Dfg, resources: &ResourceSet) -> Result<Self, SchedError> {
        let mut class_of = Vec::with_capacity(dfg.node_count());
        for (v, node) in dfg.nodes() {
            class_of.push(
                resources
                    .class_for(node.op())
                    .ok_or(SchedError::UnboundOp { node: v })?,
            );
        }
        Ok(WrapScratch {
            class_of,
            starts: Vec::new(),
            usage: Vec::new(),
        })
    }

    /// [`wrapped_length`] without the per-call clones: the shortest
    /// kernel length at which `schedule` wraps legally.
    ///
    /// # Errors
    ///
    /// Exactly [`wrapped_length`]'s errors (the cold failure path defers
    /// to [`minimal_wrap`] so the reported error is identical too).
    ///
    /// # Panics
    ///
    /// Panics if the scratch was built for a different graph.
    pub fn wrapped_length(
        &mut self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        schedule: &Schedule,
        resources: &ResourceSet,
    ) -> Result<u32, SchedError> {
        assert_eq!(
            self.class_of.len(),
            dfg.node_count(),
            "scratch/graph mismatch"
        );
        let result = self.wrapped_length_inner(dfg, retiming, schedule, resources);
        #[cfg(debug_assertions)]
        {
            let reference = wrapped_length(dfg, retiming, schedule, resources);
            match (&result, &reference) {
                (Ok(a), Ok(b)) => debug_assert_eq!(a, b, "scratch wrap diverged"),
                (Err(_), Err(_)) => {}
                _ => panic!("scratch wrap verdict diverged: {result:?} vs {reference:?}"),
            }
        }
        result
    }

    // Index loops walk several parallel arrays (`starts`, `times`,
    // `class_of`) in lockstep; an iterator over any one of them would
    // obscure that.
    #[allow(clippy::needless_range_loop)]
    fn wrapped_length_inner(
        &mut self,
        dfg: &Dfg,
        retiming: Option<&Retiming>,
        schedule: &Schedule,
        resources: &ResourceSet,
    ) -> Result<u32, SchedError> {
        let n = dfg.node_count();
        if n == 0 {
            return wrapped_length(dfg, retiming, schedule, resources);
        }
        let csr = dfg.csr();
        let times = csr.times();
        let raw_times = csr.raw_times();

        // Normalize virtually: work in `cs − base` space instead of
        // cloning and shifting the schedule.
        let mut first = u32::MAX;
        for v in dfg.node_ids() {
            match schedule.start(v) {
                Some(cs) => first = first.min(cs),
                None => return Err(SchedError::Unscheduled { node: v }),
            }
        }
        let base = first - 1;
        self.starts.clear();
        let mut min_start = 1;
        let mut unwrapped_len = 0;
        for v in dfg.node_ids() {
            let cs = schedule.start(v).expect("checked complete") - base;
            self.starts.push(cs);
            min_start = min_start.max(cs);
            unwrapped_len = unwrapped_len.max(cs + times[v.index()] - 1);
        }

        // Zero-retimed-delay precedences are target-independent: if one
        // is violated, every target fails — defer to the reference path
        // for the exact error.
        let delays = csr.edge_delays();
        let edge_from = csr.edge_from();
        let edge_to = csr.edge_to();
        let r = retiming.map(Retiming::as_slice);
        let dr_of = |i: usize| -> i64 {
            let d = i64::from(delays[i]);
            match r {
                Some(r) => d + r[edge_from[i] as usize] - r[edge_to[i] as usize],
                None => d,
            }
        };
        for i in 0..delays.len() {
            if dr_of(i) == 0 {
                let u = edge_from[i] as usize;
                let finish = self.starts[u] + times[u];
                if finish > self.starts[edge_to[i] as usize] {
                    return wrapped_length(dfg, retiming, schedule, resources);
                }
            }
        }

        let classes = resources.classes();
        'target: for target in min_start..=unwrapped_len.max(min_start) {
            // Tail condition: only one kernel boundary may be crossed.
            // (Starts never exceed `target` in this scan — it begins at
            // the maximum start step.)
            for v in 0..n {
                if self.starts[v] + times[v] - 1 > 2 * target {
                    continue 'target;
                }
            }
            // Resource condition: fold occupancy modulo `target`.
            self.usage.clear();
            self.usage.resize(classes.len() * target as usize, 0);
            for v in 0..n {
                let class_id = self.class_of[v];
                let class = resources.class(class_id);
                let row = class_id.index() * target as usize;
                for off in class.occupancy(raw_times[v]) {
                    let folded = (self.starts[v] + off - 1) % target;
                    let slot = row + folded as usize;
                    self.usage[slot] += 1;
                    if self.usage[slot] > class.count() {
                        continue 'target;
                    }
                }
            }
            // One-delay precedences across the wrap boundary.
            for i in 0..delays.len() {
                if dr_of(i) == 1 {
                    let u = edge_from[i] as usize;
                    let finish = self.starts[u] + times[u];
                    if finish - 1 > target && self.starts[edge_to[i] as usize] + target < finish {
                        continue 'target;
                    }
                }
            }
            return Ok(target);
        }
        // No target succeeded (cannot happen for a legal DAG schedule);
        // surface the reference error.
        wrapped_length(dfg, retiming, schedule, resources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    /// One 2-cycle multiplier whose tail dangles: mult starts at the last
    /// step of an otherwise 2-step schedule.
    fn dangling_tail() -> (Dfg, Schedule, ResourceSet) {
        let g = DfgBuilder::new("tail")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .node("b", OpKind::Add, 1)
            .edge("m", "a", 1)
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        // a (the 1-delay consumer of m) sits at step 2: when m's tail
        // wraps onto step 1 of the next kernel, a still starts after the
        // tail ends — exactly the Figure 8 situation.
        s.set(g.node_by_name("a").unwrap(), 2);
        s.set(g.node_by_name("b").unwrap(), 1);
        s.set(g.node_by_name("m").unwrap(), 2); // occupies steps 2-3
        let res = ResourceSet::adders_multipliers(1, 1, false);
        (g, s, res)
    }

    #[test]
    fn unwrapped_length_is_three() {
        let (g, s, _) = dangling_tail();
        assert_eq!(s.length(&g), 3);
    }

    #[test]
    fn tail_wraps_to_length_two() {
        let (g, s, res) = dangling_tail();
        let w = minimal_wrap(&g, None, &s, &res).unwrap();
        assert_eq!(w.kernel_length, 2);
        assert!(w.has_wraps());
        assert_eq!(w.wrapped_nodes, vec![g.node_by_name("m").unwrap()]);
    }

    #[test]
    fn one_delay_successor_blocks_early_wrap() {
        // m (steps 2-3) wraps its tail onto step 1 of the next kernel;
        // its 1-delay successor `a` sits at step 1, exactly when the tail
        // ends — `a` starting at step 1 needs the value at the *start* of
        // step 1, but the tail occupies step 1. Wrapping to L=2 must fail
        // on precedence and the minimal wrap must stay at 3 when `a` is
        // the multiplier's one-delay consumer scheduled too early.
        let g = DfgBuilder::new("blocked")
            .node("m", OpKind::Mul, 3)
            .node("a", OpKind::Add, 1)
            .edge("m", "a", 1)
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("a").unwrap(), 1);
        s.set(g.node_by_name("m").unwrap(), 2); // occupies 2-4
        let res = ResourceSet::adders_multipliers(1, 1, false);
        // L=2: the 3-step tail folds onto itself — resource overflow.
        let err = wrap_to_length(&g, None, &s, &res, 2).unwrap_err();
        assert!(matches!(err, SchedError::ResourceOverflow { .. }));
        // L=3: resources fold fine but the tail ends at step 5-3=2 > 1,
        // after the one-delay consumer `a` has already started.
        let err = wrap_to_length(&g, None, &s, &res, 3).unwrap_err();
        assert!(matches!(err, SchedError::PrecedenceViolated { .. }));
        // L=4 (the unwrapped length): fine.
        let w = minimal_wrap(&g, None, &s, &res).unwrap();
        assert_eq!(w.kernel_length, 4);
    }

    #[test]
    fn resource_conflict_blocks_wrap() {
        // Two 2-cycle mults on one non-pipelined multiplier, at steps 1
        // and 3: linear usage 1,2,3,4. Folding to L=3 puts step 4 onto
        // step 1, where the first mult is already running.
        let g = DfgBuilder::new("resclash")
            .nodes("m", 2, OpKind::Mul, 2)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let mut s = Schedule::empty(&g);
        s.set(ids[0], 1);
        s.set(ids[1], 3);
        let res = ResourceSet::adders_multipliers(0, 1, false);
        let err = wrap_to_length(&g, None, &s, &res, 3).unwrap_err();
        assert!(matches!(err, SchedError::ResourceOverflow { .. }));
        let w = minimal_wrap(&g, None, &s, &res).unwrap();
        assert_eq!(w.kernel_length, 4);
    }

    #[test]
    fn start_after_target_is_rejected() {
        let (g, s, res) = dangling_tail();
        let err = wrap_to_length(&g, None, &s, &res, 1).unwrap_err();
        assert!(matches!(err, SchedError::NoFeasibleSlot { .. }));
    }

    #[test]
    fn wrap_without_multicycle_is_identity() {
        let g = DfgBuilder::new("flat")
            .nodes("a", 2, OpKind::Add, 1)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let mut s = Schedule::empty(&g);
        s.set(ids[0], 1);
        s.set(ids[1], 2);
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let w = minimal_wrap(&g, None, &s, &res).unwrap();
        assert_eq!(w.kernel_length, 2);
        assert!(!w.has_wraps());
    }

    #[test]
    fn incomplete_schedule_is_rejected() {
        let (g, mut s, res) = dangling_tail();
        s.clear(g.node_by_name("m").unwrap());
        assert!(matches!(
            wrap_to_length(&g, None, &s, &res, 2),
            Err(SchedError::Unscheduled { .. })
        ));
    }

    #[test]
    fn scratch_probe_matches_reference() {
        let (g, s, res) = dangling_tail();
        let mut scratch = WrapScratch::new(&g, &res).unwrap();
        assert_eq!(
            scratch.wrapped_length(&g, None, &s, &res).unwrap(),
            wrapped_length(&g, None, &s, &res).unwrap()
        );
        // Repeated probes reuse the buffers and stay correct.
        for _ in 0..3 {
            assert_eq!(scratch.wrapped_length(&g, None, &s, &res).unwrap(), 2);
        }
    }

    #[test]
    fn scratch_probe_handles_unnormalized_schedules() {
        let (g, mut s, res) = dangling_tail();
        s.shift(4); // starts at step 5 — the probe normalizes virtually
        let mut scratch = WrapScratch::new(&g, &res).unwrap();
        assert_eq!(
            scratch.wrapped_length(&g, None, &s, &res).unwrap(),
            wrapped_length(&g, None, &s, &res).unwrap()
        );
    }

    #[test]
    fn scratch_probe_rejects_incomplete_schedules() {
        let (g, mut s, res) = dangling_tail();
        s.clear(g.node_by_name("m").unwrap());
        let mut scratch = WrapScratch::new(&g, &res).unwrap();
        assert!(matches!(
            scratch.wrapped_length(&g, None, &s, &res),
            Err(SchedError::Unscheduled { .. })
        ));
    }
}
