//! ASAP / ALAP start times over the zero-delay DAG (no resources).
//!
//! These resource-free bounds drive priority functions (mobility) and
//! sanity checks: any resource-constrained schedule starts each node no
//! earlier than its ASAP step.

use rotsched_dfg::analysis::topo::{is_zero_delay_under, zero_delay_topological_order};
use rotsched_dfg::{Dfg, DfgError, NodeId, NodeMap, Retiming};

/// Resource-free timing bounds for each node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingBounds {
    asap: NodeMap<u32>,
    alap: NodeMap<u32>,
    horizon: u32,
}

impl TimingBounds {
    /// Earliest possible start step of `v` (1-based).
    #[must_use]
    pub fn asap(&self, v: NodeId) -> u32 {
        self.asap[v]
    }

    /// Latest start step of `v` that still meets the horizon.
    #[must_use]
    pub fn alap(&self, v: NodeId) -> u32 {
        self.alap[v]
    }

    /// Scheduling freedom of `v`: `alap − asap`.
    #[must_use]
    pub fn mobility(&self, v: NodeId) -> u32 {
        self.alap[v] - self.asap[v]
    }

    /// The horizon (schedule length) the ALAP times are relative to.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }
}

/// Computes ASAP and ALAP start steps for the zero-delay DAG of `G_r`.
///
/// The ALAP horizon defaults to the critical-path length (so critical
/// nodes get mobility 0); pass `horizon` to relax it.
///
/// # Errors
///
/// Returns [`DfgError::ZeroDelayCycle`] if the zero-delay subgraph is not
/// a DAG.
pub fn timing_bounds(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    horizon: Option<u32>,
) -> Result<TimingBounds, DfgError> {
    let order = zero_delay_topological_order(dfg, retiming)?;

    let mut asap = dfg.node_map(1_u32);
    for &v in &order {
        let mut earliest = 1;
        for &e in dfg.in_edges(v) {
            if is_zero_delay_under(dfg, retiming, e) {
                let u = dfg.edge(e).from();
                earliest = earliest.max(asap[u] + dfg.node(u).time().max(1));
            }
        }
        asap[v] = earliest;
    }

    let cp = order
        .iter()
        .map(|&v| asap[v] + dfg.node(v).time().max(1) - 1)
        .max()
        .unwrap_or(0);
    let horizon = horizon.unwrap_or(cp).max(cp);

    let mut alap = dfg.node_map(0_u32);
    for &v in order.iter().rev() {
        // Latest start so that v finishes by the horizon:
        // s + t - 1 <= horizon  =>  s <= horizon - t + 1.
        let mut latest = horizon - dfg.node(v).time().max(1) + 1;
        for &e in dfg.out_edges(v) {
            if is_zero_delay_under(dfg, retiming, e) {
                let w = dfg.edge(e).to();
                latest = latest.min(alap[w] - dfg.node(v).time().max(1));
            }
        }
        alap[v] = latest;
    }

    Ok(TimingBounds {
        asap,
        alap,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    fn diamond() -> (Dfg, Vec<NodeId>) {
        let mut g = Dfg::new("diamond");
        let a = g.add_node("a", OpKind::Mul, 2);
        let b = g.add_node("b", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Mul, 2);
        let d = g.add_node("d", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        (g, vec![a, b, c, d])
    }

    #[test]
    fn asap_follows_longest_predecessor_chain() {
        let (g, v) = diamond();
        let tb = timing_bounds(&g, None, None).unwrap();
        assert_eq!(tb.asap(v[0]), 1);
        assert_eq!(tb.asap(v[1]), 3);
        assert_eq!(tb.asap(v[2]), 3);
        assert_eq!(tb.asap(v[3]), 5);
        assert_eq!(tb.horizon(), 5);
    }

    #[test]
    fn critical_nodes_have_zero_mobility() {
        let (g, v) = diamond();
        let tb = timing_bounds(&g, None, None).unwrap();
        // a, c, d form the critical path a(2) c(2) d(1).
        assert_eq!(tb.mobility(v[0]), 0);
        assert_eq!(tb.mobility(v[2]), 0);
        assert_eq!(tb.mobility(v[3]), 0);
        // b has one step of slack: asap 3, alap 4.
        assert_eq!(tb.mobility(v[1]), 1);
    }

    #[test]
    fn larger_horizon_adds_mobility_everywhere() {
        let (g, v) = diamond();
        let tb = timing_bounds(&g, None, Some(7)).unwrap();
        assert_eq!(tb.horizon(), 7);
        assert_eq!(tb.mobility(v[0]), 2);
    }

    #[test]
    fn horizon_below_critical_path_is_clamped() {
        let (g, _) = diamond();
        let tb = timing_bounds(&g, None, Some(1)).unwrap();
        assert_eq!(tb.horizon(), 5);
    }

    #[test]
    fn alap_respects_multicycle_finish() {
        let (g, v) = diamond();
        let tb = timing_bounds(&g, None, None).unwrap();
        // c (2 cycles) must finish by d's start (5): alap = 3.
        assert_eq!(tb.alap(v[2]), 3);
        // d itself starts at 5 to finish by the horizon.
        assert_eq!(tb.alap(v[3]), 5);
    }
}
