//! Cycle-accurate functional execution of a pipelined loop schedule.
//!
//! This is the end-to-end verifier for the whole stack: it takes a
//! [`LoopSchedule`] (kernel + retiming), expands it over `N` iterations
//! (prologue / kernel / epilogue), and *executes* it on a simulated
//! datapath with the given functional units, checking that
//!
//! 1. every operand is **available** when an operation starts — the
//!    producing execution (of the right iteration, per edge delays) has
//!    finished;
//! 2. no control step uses more units of a class than exist;
//! 3. the **values** computed equal those of a plain sequential
//!    execution of the loop.
//!
//! Values are symbolic tokens: `value(v, j)` is a hash mixing the node's
//! identity, its operation, and the operand tokens `value(u, j − d)` for
//! each incoming edge (with seeded tokens for iterations before the
//! loop). Two executions agree on every token exactly when they perform
//! the same computation — so a passing run certifies that rotation
//! rearranged the loop without changing its meaning.

use std::collections::HashMap;

use rotsched_dfg::{Dfg, NodeId};

use crate::error::SchedError;
use crate::prologue::LoopSchedule;
use crate::resources::ResourceSet;

/// A symbolic value computed by one node execution.
pub type Token = u64;

/// Outcome of a successful simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulationReport {
    /// Iterations executed.
    pub iterations: u32,
    /// Total control steps from first prologue step to last finish.
    pub makespan: u64,
    /// Control steps a non-pipelined sequential execution would need:
    /// one iteration after another, each taking a resource-constrained
    /// DAG list schedule of the loop body — the fair no-pipelining
    /// reference for a speedup figure.
    pub sequential_steps: u64,
    /// Number of node executions performed.
    pub executions: usize,
}

impl SimulationReport {
    /// Pipelining speedup over the sequential reference.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.sequential_steps as f64 / self.makespan as f64
    }
}

/// Simulation failure: either a structural violation caught while
/// replaying the pipeline, or a token mismatch against the sequential
/// reference.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimulationError {
    /// The pipeline used an operand before its producer finished.
    OperandNotReady {
        /// The consuming node.
        node: NodeId,
        /// The consuming iteration.
        iteration: u32,
        /// The producing node.
        operand: NodeId,
        /// The producing iteration.
        operand_iteration: i64,
    },
    /// A structural schedule error (resource overflow, missing node).
    Schedule(SchedError),
    /// The pipelined execution produced a different value than the
    /// sequential reference.
    TokenMismatch {
        /// The node whose value differs.
        node: NodeId,
        /// The iteration at which it differs.
        iteration: u32,
    },
}

impl core::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimulationError::OperandNotReady {
                node,
                iteration,
                operand,
                operand_iteration,
            } => write!(
                f,
                "operand not ready: {node} (iteration {iteration}) reads {operand} of iteration {operand_iteration} before it finished"
            ),
            SimulationError::Schedule(e) => write!(f, "schedule violation: {e}"),
            SimulationError::TokenMismatch { node, iteration } => write!(
                f,
                "value mismatch at {node}, iteration {iteration}: pipeline diverged from sequential execution"
            ),
        }
    }
}

impl std::error::Error for SimulationError {}

impl From<SchedError> for SimulationError {
    fn from(e: SchedError) -> Self {
        SimulationError::Schedule(e)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    // splitmix64-style mixing; good enough to make collisions
    // vanishingly unlikely for test-sized runs.
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seeded token for iterations before the loop starts (the loop's
/// initial values / register contents).
fn initial_token(v: NodeId, iteration: i64) -> Token {
    mix(
        0xDEAD_BEEF_0BAD_F00D,
        mix(v.index() as u64, iteration as u64),
    )
}

/// Sequential reference semantics: `value(v, j)` for all nodes and
/// iterations `0..n`, computed iteration by iteration in topological
/// order of the zero-delay DAG.
///
/// # Errors
///
/// Returns [`SchedError::Graph`] if the graph has no static schedule.
pub fn sequential_tokens(dfg: &Dfg, iterations: u32) -> Result<Vec<Vec<Token>>, SchedError> {
    let order = rotsched_dfg::analysis::zero_delay_topological_order(dfg, None)
        .map_err(SchedError::from)?;
    let mut tokens = vec![vec![0_u64; dfg.node_count()]; iterations as usize];
    for j in 0..i64::from(iterations) {
        for &v in &order {
            tokens[j as usize][v.index()] = compute_token(dfg, v, j, |u, ju| {
                if ju < 0 {
                    initial_token(u, ju)
                } else {
                    tokens[ju as usize][u.index()]
                }
            });
        }
    }
    Ok(tokens)
}

/// `value(v, j)` from operand lookups: mixes the node identity with each
/// incoming edge's operand value `value(u, j − d)` in edge order.
fn compute_token(
    dfg: &Dfg,
    v: NodeId,
    iteration: i64,
    mut operand: impl FnMut(NodeId, i64) -> Token,
) -> Token {
    let mut acc = mix(v.index() as u64 + 1, dfg.node(v).op() as u64 + 1);
    for &e in dfg.in_edges(v) {
        let edge = dfg.edge(e);
        let ju = iteration - i64::from(edge.delays());
        acc = mix(acc, operand(edge.from(), ju));
    }
    acc
}

/// Replays `loop_schedule` over `iterations` iterations and verifies it
/// end-to-end against the sequential reference.
///
/// # Errors
///
/// Returns the first [`SimulationError`] encountered; a passing run
/// certifies operand availability, resource limits, and value equality.
pub fn simulate(
    dfg: &Dfg,
    loop_schedule: &LoopSchedule,
    resources: &ResourceSet,
    iterations: u32,
) -> Result<SimulationReport, SimulationError> {
    let reference = sequential_tokens(dfg, iterations)?;
    let events = loop_schedule.events(dfg, iterations);

    // finish[(v, j)] = absolute step at whose *end* the value is ready.
    let mut finish_time: HashMap<(NodeId, u32), i64> = HashMap::new();
    let mut start_time: HashMap<(NodeId, u32), i64> = HashMap::new();
    for e in &events {
        start_time.insert((e.node, e.iteration), e.start);
        finish_time.insert(
            (e.node, e.iteration),
            e.start + i64::from(dfg.node(e.node).time().max(1)) - 1,
        );
    }

    // Resource usage per absolute step.
    let mut usage: HashMap<(usize, i64), u32> = HashMap::new();
    for e in &events {
        let class_id = resources
            .class_for(dfg.node(e.node).op())
            .ok_or(SchedError::UnboundOp { node: e.node })?;
        let class = resources.class(class_id);
        for off in class.occupancy(dfg.node(e.node).time()) {
            let step = e.start + i64::from(off);
            let slot = usage.entry((class_id.index(), step)).or_insert(0);
            *slot += 1;
            if *slot > class.count() {
                return Err(SchedError::ResourceOverflow {
                    class: class.name().to_owned(),
                    cs: u32::try_from(step.max(1)).unwrap_or(u32::MAX),
                    used: *slot,
                    limit: class.count(),
                }
                .into());
            }
        }
    }

    // Replay in time order, computing tokens and checking availability.
    let mut tokens: HashMap<(NodeId, u32), Token> = HashMap::new();
    for e in &events {
        let mut not_ready = None;
        let token = compute_token(dfg, e.node, i64::from(e.iteration), |u, ju| {
            if ju < 0 {
                return initial_token(u, ju);
            }
            let ju32 = u32::try_from(ju).expect("non-negative iteration");
            match (finish_time.get(&(u, ju32)), tokens.get(&(u, ju32))) {
                (Some(&fin), Some(&tok)) if fin < e.start => tok,
                _ => {
                    not_ready.get_or_insert((u, ju));
                    0
                }
            }
        });
        if let Some((operand, operand_iteration)) = not_ready {
            return Err(SimulationError::OperandNotReady {
                node: e.node,
                iteration: e.iteration,
                operand,
                operand_iteration,
            });
        }
        tokens.insert((e.node, e.iteration), token);
    }

    // Compare against the reference.
    for (j, row) in reference.iter().enumerate() {
        for v in dfg.node_ids() {
            let got = tokens.get(&(v, j as u32)).copied();
            if got != Some(row[v.index()]) {
                return Err(SimulationError::TokenMismatch {
                    node: v,
                    iteration: j as u32,
                });
            }
        }
    }

    let body = crate::list::ListScheduler::default().schedule(dfg, None, resources)?;
    let sequential_body = u64::from(body.length(dfg));
    Ok(SimulationReport {
        iterations,
        makespan: loop_schedule.makespan(dfg, iterations),
        sequential_steps: sequential_body * u64::from(iterations),
        executions: events.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use rotsched_dfg::{DfgBuilder, OpKind, Retiming};

    fn iir() -> Dfg {
        DfgBuilder::new("iir")
            .node("m", OpKind::Mul, 1)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .edge("a", "m", 1)
            .build()
            .unwrap()
    }

    fn resources() -> ResourceSet {
        ResourceSet::adders_multipliers(1, 1, false)
    }

    #[test]
    fn unpipelined_schedule_simulates_cleanly() {
        let g = iir();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("m").unwrap(), 1);
        s.set(g.node_by_name("a").unwrap(), 2);
        let ls = LoopSchedule::new(2, s, Retiming::zero(&g));
        let report = simulate(&g, &ls, &resources(), 8).unwrap();
        assert_eq!(report.executions, 16);
        assert_eq!(report.iterations, 8);
    }

    #[test]
    fn rotated_schedule_matches_sequential_semantics() {
        // Rotate m one iteration up: kernel = a@1, m@2 with r(m) = 1.
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::from_set(&g, [m]);
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.set(m, 2);
        let ls = LoopSchedule::new(2, s, r);
        let report = simulate(&g, &ls, &resources(), 10).unwrap();
        assert_eq!(report.executions, 20);
    }

    #[test]
    fn premature_consumer_is_caught() {
        // Kernel with a before m in the SAME step while a zero-delay edge
        // m -> a exists and no retiming: operand not ready.
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let mut s = Schedule::empty(&g);
        s.set(m, 1);
        s.set(a, 1); // reads m's output in the step m starts
        let ls = LoopSchedule::new(1, s, Retiming::zero(&g));
        let err = simulate(&g, &ls, &resources(), 3).unwrap_err();
        assert!(matches!(err, SimulationError::OperandNotReady { node, .. } if node == a));
    }

    #[test]
    fn wrong_retiming_is_caught_as_mismatch_or_unready() {
        // Claim r(a) = 1 (rotating the *adder*) but schedule as if
        // nothing changed: the pipeline computes different iterations
        // than the reference expects.
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::from_set(&g, [a]);
        let mut s = Schedule::empty(&g);
        s.set(m, 1);
        s.set(a, 2);
        let ls = LoopSchedule::new(2, s, r);
        assert!(simulate(&g, &ls, &resources(), 4).is_err());
    }

    #[test]
    fn resource_overflow_across_kernel_instances_is_caught() {
        // Two independent 2-cycle mults in consecutive steps on ONE
        // non-pipelined multiplier with kernel length 2: instance k's
        // second mult overlaps instance k+1's first.
        let g = DfgBuilder::new("clash")
            .nodes("m", 2, OpKind::Mul, 2)
            .build()
            .unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        let mut s = Schedule::empty(&g);
        s.set(ids[0], 1);
        s.set(ids[1], 2);
        let ls = LoopSchedule::new(2, s, Retiming::zero(&g));
        let res = ResourceSet::adders_multipliers(0, 1, false);
        let err = simulate(&g, &ls, &res, 4).unwrap_err();
        assert!(matches!(
            err,
            SimulationError::Schedule(SchedError::ResourceOverflow { .. })
        ));
    }

    #[test]
    fn speedup_reflects_pipelining() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        // Depth-2 pipeline with 1-step kernel: a@1 of iteration j together
        // with m@1 of iteration j+1 (legal: in G_r both edges carry a
        // delay... m->a has d_r = 1, a->m has d_r = 0 -> a then m; they
        // are in the same step only if a finishes before m starts, which
        // fails. Use kernel length 1 with m and a on separate units and
        // the a->m dependency satisfied ACROSS kernels: a@1, m@1 needs
        // a's result of the same iteration -> not legal. So use L=1 with
        // r(m)=1 and check the simulator rejects it; then accept L=2.
        let r = Retiming::from_set(&g, [m]);
        let mut s = Schedule::empty(&g);
        s.set(a, 1);
        s.set(m, 1);
        let bad = LoopSchedule::new(1, s.clone(), r.clone());
        assert!(simulate(&g, &bad, &resources(), 4).is_err());

        s.set(m, 2);
        let good = LoopSchedule::new(2, s, r);
        let report = simulate(&g, &good, &resources(), 16).unwrap();
        assert!(report.speedup() > 0.9);
    }

    #[test]
    fn sequential_tokens_are_deterministic() {
        let g = iir();
        let t1 = sequential_tokens(&g, 5).unwrap();
        let t2 = sequential_tokens(&g, 5).unwrap();
        assert_eq!(t1, t2);
        // And iterations differ from each other (values evolve).
        assert_ne!(t1[0], t1[4]);
    }
}
