//! Priority (weight) functions for list scheduling.
//!
//! The paper's experiments use "a simple list scheduling … with the number
//! of descendants as the weight function"; that is
//! [`PriorityPolicy::DescendantCount`] and the default. Alternative
//! policies are provided for the ablation benchmarks.

use rotsched_dfg::analysis::topo::{is_zero_delay_under, zero_delay_topological_order};
use rotsched_dfg::{Dfg, DfgError, NodeMap, Retiming};

use crate::asap_alap::timing_bounds;

/// How list scheduling ranks ready nodes (higher weight schedules first).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PriorityPolicy {
    /// Number of (transitive) descendants in the zero-delay DAG — the
    /// paper's weight function.
    #[default]
    DescendantCount,
    /// Height: the longest zero-delay path from the node to any sink
    /// (critical-path list scheduling).
    PathHeight,
    /// Inverse mobility: nodes with less ALAP−ASAP slack first.
    Mobility,
    /// Node index order (a deliberately weak policy, for ablations).
    InputOrder,
}

impl PriorityPolicy {
    /// Computes the weight of every node for the zero-delay DAG of `G_r`.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::ZeroDelayCycle`] if the zero-delay subgraph is
    /// not a DAG.
    pub fn weights(self, dfg: &Dfg, retiming: Option<&Retiming>) -> Result<NodeMap<u64>, DfgError> {
        match self {
            PriorityPolicy::DescendantCount => descendant_counts(dfg, retiming),
            PriorityPolicy::PathHeight => path_heights(dfg, retiming),
            PriorityPolicy::Mobility => {
                let tb = timing_bounds(dfg, retiming, None)?;
                let max_mob = dfg
                    .node_ids()
                    .map(|v| u64::from(tb.mobility(v)))
                    .max()
                    .unwrap_or(0);
                let mut w = dfg.node_map(0_u64);
                for v in dfg.node_ids() {
                    w[v] = max_mob - u64::from(tb.mobility(v));
                }
                Ok(w)
            }
            PriorityPolicy::InputOrder => {
                let n = dfg.node_count() as u64;
                let mut w = dfg.node_map(0_u64);
                for (i, v) in dfg.node_ids().enumerate() {
                    w[v] = n - i as u64;
                }
                Ok(w)
            }
        }
    }
}

/// Transitive descendant counts in the zero-delay DAG, via reverse
/// topological accumulation of descendant bitsets.
fn descendant_counts(dfg: &Dfg, retiming: Option<&Retiming>) -> Result<NodeMap<u64>, DfgError> {
    descendant_sets(dfg, retiming).map(|(_, weights)| weights)
}

/// [`descendant_counts`] plus the underlying per-node descendant bitsets
/// (`words = node_count.div_ceil(64)` words per node, row-major). The
/// incremental context keeps the rows so a rotation can repair only the
/// nodes whose zero-delay subtree actually changed.
pub(crate) fn descendant_sets(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
) -> Result<(Vec<u64>, NodeMap<u64>), DfgError> {
    let order = zero_delay_topological_order(dfg, retiming)?;
    let n = dfg.node_count();
    let words = n.div_ceil(64);
    let mut sets = vec![0_u64; n * words];
    let mut weights = dfg.node_map(0_u64);

    for &v in order.iter().rev() {
        // Union descendant sets of zero-delay successors, plus the
        // successors themselves.
        let vi = v.index();
        for &e in dfg.out_edges(v) {
            if is_zero_delay_under(dfg, retiming, e) {
                let w = dfg.edge(e).to().index();
                // set bit w
                sets[vi * words + w / 64] |= 1 << (w % 64);
                for k in 0..words {
                    let bits = sets[w * words + k];
                    sets[vi * words + k] |= bits;
                }
            }
        }
        weights[v] = sets[vi * words..(vi + 1) * words]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
    }
    Ok((sets, weights))
}

/// Longest zero-delay path (in computation time) from each node to a sink,
/// including the node's own time.
fn path_heights(dfg: &Dfg, retiming: Option<&Retiming>) -> Result<NodeMap<u64>, DfgError> {
    let order = zero_delay_topological_order(dfg, retiming)?;
    let mut heights = dfg.node_map(0_u64);
    for &v in order.iter().rev() {
        let mut below = 0_u64;
        for &e in dfg.out_edges(v) {
            if is_zero_delay_under(dfg, retiming, e) {
                below = below.max(heights[dfg.edge(e).to()]);
            }
        }
        heights[v] = below + u64::from(dfg.node(v).time().max(1));
    }
    Ok(heights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{NodeId, OpKind};

    fn tree() -> (Dfg, Vec<NodeId>) {
        // v0 -> v1 -> v3, v0 -> v2 (all zero delay); v3 -> v0 with delay.
        let mut g = Dfg::new("tree");
        let v: Vec<_> = (0..4)
            .map(|i| g.add_node(format!("v{i}"), OpKind::Add, 1))
            .collect();
        g.add_edge(v[0], v[1], 0).unwrap();
        g.add_edge(v[0], v[2], 0).unwrap();
        g.add_edge(v[1], v[3], 0).unwrap();
        g.add_edge(v[3], v[0], 1).unwrap();
        (g, v)
    }

    #[test]
    fn descendant_counts_are_transitive() {
        let (g, v) = tree();
        let w = PriorityPolicy::DescendantCount.weights(&g, None).unwrap();
        assert_eq!(w[v[0]], 3);
        assert_eq!(w[v[1]], 1);
        assert_eq!(w[v[2]], 0);
        assert_eq!(w[v[3]], 0);
    }

    #[test]
    fn descendants_respect_retiming() {
        let (g, v) = tree();
        // Rotating v0 down removes its zero-delay out-edges from the DAG
        // and turns the delayed edge v3 -> v0 into a zero-delay one.
        let r = Retiming::from_set(&g, [v[0]]);
        let w = PriorityPolicy::DescendantCount
            .weights(&g, Some(&r))
            .unwrap();
        assert_eq!(w[v[0]], 0);
        assert_eq!(w[v[3]], 1); // v3 now precedes v0
        assert_eq!(w[v[1]], 2); // v1 -> v3 -> v0
    }

    #[test]
    fn path_heights_count_time() {
        let mut g = Dfg::new("chain");
        let a = g.add_node("a", OpKind::Mul, 2);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        let w = PriorityPolicy::PathHeight.weights(&g, None).unwrap();
        assert_eq!(w[a], 3);
        assert_eq!(w[b], 1);
    }

    #[test]
    fn mobility_prioritizes_critical_nodes() {
        let (g, v) = tree();
        let w = PriorityPolicy::Mobility.weights(&g, None).unwrap();
        // v2 is off the critical chain; it must rank strictly below v0.
        assert!(w[v[0]] > w[v[2]]);
    }

    #[test]
    fn input_order_is_monotone() {
        let (g, v) = tree();
        let w = PriorityPolicy::InputOrder.weights(&g, None).unwrap();
        assert!(w[v[0]] > w[v[1]]);
        assert!(w[v[1]] > w[v[2]]);
    }

    #[test]
    fn descendant_counts_with_shared_grandchild_do_not_double_count() {
        let mut g = Dfg::new("dag");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Add, 1);
        let d = g.add_node("d", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        let w = PriorityPolicy::DescendantCount.weights(&g, None).unwrap();
        assert_eq!(w[a], 3, "d is shared, counted once");
    }
}
