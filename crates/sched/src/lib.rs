//! # rotsched-sched — resource-constrained scheduling substrate
//!
//! Everything rotation scheduling needs underneath it, reusable on its
//! own:
//!
//! * [`ResourceSet`] / [`ResourceClass`] — functional-unit models:
//!   single-cycle, multi-cycle, and pipelined units (the paper's `A`,
//!   `M`, `Mp` classes).
//! * [`ReservationTable`] — per-class, per-control-step unit tracking,
//!   linear and cyclic (for wrapped schedules).
//! * [`Schedule`] — node → control-step maps with lengths, shifting,
//!   prefix extraction, and Figure-2-style table rendering.
//! * [`ListScheduler`] — the paper's `FullSchedule` and
//!   `PartialSchedule` (incremental rescheduling that never moves fixed
//!   nodes), with pluggable [`PriorityPolicy`] weights.
//! * [`validate`] — DAG-schedule checking and the Lemma 1 / Theorem 2
//!   static-schedule certification via shortest paths.
//! * [`wrapping`] — wrapped schedules for multi-cycle tails (Section 4).
//! * [`LoopSchedule`] — prologue / kernel / epilogue expansion
//!   (Figure 4).
//! * [`executor`] — cycle-accurate functional replay of the pipeline
//!   against sequential loop semantics.
//!
//! ## Quick start
//!
//! ```
//! use rotsched_dfg::{DfgBuilder, OpKind};
//! use rotsched_sched::{ListScheduler, ResourceSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = DfgBuilder::new("two-mults")
//!     .nodes("m", 2, OpKind::Mul, 2)
//!     .build()?;
//! let pipelined = ResourceSet::adders_multipliers(1, 1, true);
//! let s = ListScheduler::default().schedule(&g, None, &pipelined)?;
//! // A pipelined multiplier issues back-to-back: steps 1 and 2.
//! assert_eq!(s.length(&g), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod asap_alap;
pub mod binding;
pub mod chaining;
pub mod diagnostics;
mod error;
pub mod executor;
mod incremental;
mod list;
mod priority;
pub mod prologue;
pub mod registers;
mod reservation;
mod resources;
mod schedule;
pub mod validate;
pub mod wrapping;

pub use asap_alap::{timing_bounds, TimingBounds};
pub use binding::{bind_datapath, DatapathBinding};
pub use chaining::{ChainTiming, ChainedSchedule, ChainedScheduler};
pub use diagnostics::{
    analyze_loop_schedule, check_static_schedule_diag, verify_spec, verify_starts,
};
pub use error::SchedError;
pub use executor::{simulate, SimulationError, SimulationReport};
pub use incremental::{CacheStats, SchedContext};
pub use list::{ListScheduler, ZeroSet};
pub use priority::PriorityPolicy;
pub use prologue::{LoopEvent, LoopPhase, LoopSchedule};
pub use registers::{register_pressure, RegisterReport};
pub use reservation::ReservationTable;
pub use resources::{ResourceClass, ResourceClassId, ResourceSet};
pub use schedule::Schedule;
pub use wrapping::{minimal_wrap, wrap_to_length, wrapped_length, WrapScratch, WrappedSchedule};
