//! Bridge from the scheduler's types to the verifier's structured
//! diagnostics, so the CLI and the certificate checker report
//! violations uniformly.
//!
//! The direction of the dependency matters: this crate translates its
//! own errors *into* `rotsched-verify`'s `Diagnostic` vocabulary; the
//! verifier never imports scheduler code (that independence is what
//! makes its certificates worth anything).

use rotsched_dfg::{Dfg, DfgError};
use rotsched_verify::{
    AnalysisReport, Code, Diagnostic, Locus, ResourceSpec, ScheduleView, StartTimes, UnitClass,
};

use crate::error::SchedError;
use crate::prologue::LoopSchedule;
use crate::resources::ResourceSet;
use crate::schedule::Schedule;
use crate::validate;

impl From<&SchedError> for Diagnostic {
    /// Maps every scheduler error onto its stable diagnostic code.
    fn from(e: &SchedError) -> Diagnostic {
        match e {
            SchedError::Graph(g) => graph_error_diag(g),
            SchedError::UnboundOp { node } => Diagnostic::new(
                Code::UnboundOp,
                Locus::Node(*node),
                "no resource class executes this node's operation",
            )
            .with_hint("add the operation kind to a unit class"),
            SchedError::Unscheduled { node } => Diagnostic::new(
                Code::Unscheduled,
                Locus::Node(*node),
                "node has no start step; the schedule must be complete",
            ),
            SchedError::PrecedenceViolated {
                from,
                to,
                finish,
                start,
            } => Diagnostic::new(
                Code::PrecedenceViolation,
                Locus::Edge {
                    from: *from,
                    to: *to,
                },
                format!(
                    "producer finishes at step {} but the consumer starts at {start}",
                    finish.saturating_sub(1)
                ),
            ),
            SchedError::ResourceOverflow {
                class,
                cs,
                used,
                limit,
            } => Diagnostic::new(
                Code::ResourceOverflow,
                Locus::Step(*cs),
                format!("class `{class}` needs {used} unit(s) in this step but has {limit}"),
            ),
            SchedError::NoFeasibleSlot { node } => Diagnostic::new(
                Code::StartPastKernel,
                Locus::Node(*node),
                "no feasible control step exists for this node in the kernel window",
            ),
        }
    }
}

fn graph_error_diag(e: &DfgError) -> Diagnostic {
    match e {
        DfgError::ZeroDelayCycle { cycle } => Diagnostic::new(
            Code::ZeroDelayCycle,
            cycle.first().map_or(Locus::Graph, |&v| Locus::Node(v)),
            format!("{e}"),
        )
        .with_hint("every cycle must carry at least one delay (register)"),
        DfgError::ZeroTimeNode { node } => Diagnostic::new(
            Code::ZeroTimeNode,
            Locus::Node(*node),
            "computation time is 0; every node must occupy at least one control step",
        )
        .with_hint("set the node's time to at least 1"),
        DfgError::IllegalRetiming { from, to, .. } => Diagnostic::new(
            Code::IllegalRetiming,
            Locus::Edge {
                from: *from,
                to: *to,
            },
            format!("{e}"),
        ),
        DfgError::ZeroDelaySelfLoop { node } => {
            Diagnostic::new(Code::MalformedInput, Locus::Node(*node), format!("{e}"))
        }
        other => Diagnostic::new(Code::MalformedInput, Locus::Graph, format!("{other}")),
    }
}

/// Re-expresses a [`ResourceSet`] in the verifier's own resource
/// vocabulary, class by class. The verifier deliberately has no
/// knowledge of this crate, so the translation lives on this side.
#[must_use]
pub fn verify_spec(resources: &ResourceSet) -> ResourceSpec {
    ResourceSpec::new(
        resources
            .classes()
            .iter()
            .map(|c| UnitClass::new(c.name(), c.count(), c.is_pipelined(), c.ops().to_vec()))
            .collect(),
    )
}

/// Re-expresses a [`Schedule`] as the verifier's [`StartTimes`].
#[must_use]
pub fn verify_starts(dfg: &Dfg, schedule: &Schedule) -> StartTimes {
    StartTimes::from_fn(dfg, |v| schedule.start(v))
}

/// Runs the verifier's static-analysis framework over a solved loop
/// schedule: the resources and the kernel are translated into the
/// verifier's own vocabulary (the verifier never sees this crate's
/// types) and profiled by every registered analysis pass.
#[must_use]
pub fn analyze_loop_schedule(
    dfg: &Dfg,
    resources: &ResourceSet,
    ls: &LoopSchedule,
) -> AnalysisReport {
    let spec = verify_spec(resources);
    let starts = verify_starts(dfg, ls.schedule());
    let view = ScheduleView {
        starts: &starts,
        retiming: ls.retiming(),
        kernel_length: ls.kernel_length(),
    };
    rotsched_verify::analyze(dfg, &spec, Some(&view))
}

/// [`validate::check_static_schedule`] with structured reporting: on
/// rejection, every violation is a [`Diagnostic`] with a stable code
/// instead of a single free-form error.
///
/// # Errors
///
/// The diagnostics for all violations found (at least one).
pub fn check_static_schedule_diag(
    dfg: &Dfg,
    schedule: &Schedule,
    resources: &ResourceSet,
) -> Result<rotsched_dfg::Retiming, Vec<Diagnostic>> {
    match validate::check_static_schedule(dfg, schedule, resources) {
        Ok(r) => Ok(r),
        Err(first) => {
            // The scheduler-side checker stops at the first violation;
            // the independent certifier enumerates the rest (using the
            // unwrapped schedule length so only genuinely linear
            // violations surface).
            let spec = verify_spec(resources);
            let starts = verify_starts(dfg, schedule);
            let length = schedule
                .iter()
                .map(|(v, cs)| cs.saturating_add(dfg.node(v).time().max(1)) - 1)
                .max()
                .unwrap_or(1)
                .max(1);
            let mut diags = match rotsched_verify::certify(dfg, &spec, None, &starts, length) {
                Ok(_) => Vec::new(),
                Err(diags) => diags,
            };
            let own = Diagnostic::from(&first);
            if !diags.contains(&own) {
                diags.push(own);
            }
            rotsched_verify::sort_canonical(&mut diags);
            Err(diags)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, NodeId, OpKind};

    fn iir() -> Dfg {
        DfgBuilder::new("iir")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .wire("m", "a")
            .edge("a", "m", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn every_sched_error_maps_to_a_stable_code() {
        let cases: Vec<(SchedError, Code)> = vec![
            (
                SchedError::UnboundOp {
                    node: NodeId::from_index(0),
                },
                Code::UnboundOp,
            ),
            (
                SchedError::Unscheduled {
                    node: NodeId::from_index(1),
                },
                Code::Unscheduled,
            ),
            (
                SchedError::PrecedenceViolated {
                    from: NodeId::from_index(0),
                    to: NodeId::from_index(1),
                    finish: 3,
                    start: 2,
                },
                Code::PrecedenceViolation,
            ),
            (
                SchedError::ResourceOverflow {
                    class: "adder".into(),
                    cs: 2,
                    used: 3,
                    limit: 2,
                },
                Code::ResourceOverflow,
            ),
            (
                SchedError::NoFeasibleSlot {
                    node: NodeId::from_index(0),
                },
                Code::StartPastKernel,
            ),
            (
                SchedError::Graph(DfgError::ZeroTimeNode {
                    node: NodeId::from_index(0),
                }),
                Code::ZeroTimeNode,
            ),
            (
                SchedError::Graph(DfgError::ZeroDelayCycle {
                    cycle: vec![NodeId::from_index(0)],
                }),
                Code::ZeroDelayCycle,
            ),
            (
                SchedError::Graph(DfgError::ZeroDelaySelfLoop {
                    node: NodeId::from_index(0),
                }),
                Code::MalformedInput,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(Diagnostic::from(&err).code, code, "{err}");
        }
    }

    #[test]
    fn spec_translation_preserves_class_semantics() {
        let rs = ResourceSet::adders_multipliers(3, 2, true);
        let spec = verify_spec(&rs);
        assert_eq!(spec.classes().len(), 2);
        assert_eq!(spec.classes()[0].units, 3);
        assert!(!spec.classes()[0].pipelined);
        assert_eq!(spec.classes()[1].units, 2);
        assert!(spec.classes()[1].pipelined);
        // First-match binding agrees with the scheduler's.
        for op in OpKind::ALL {
            assert_eq!(
                spec.class_of(op),
                rs.class_for(op).map(|id| id.index()),
                "{op:?}"
            );
        }
    }

    #[test]
    fn structured_check_reports_all_violations() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let res = ResourceSet::adders_multipliers(0, 1, false); // no adders
        let mut s = Schedule::empty(&g);
        s.set(m, 1);
        s.set(a, 1);
        let diags = check_static_schedule_diag(&g, &s, &res).unwrap_err();
        assert!(!diags.is_empty());
        assert!(diags.iter().any(|d| matches!(
            d.code,
            Code::EmptyClass | Code::ResourceOverflow | Code::UnboundOp
        )));
    }

    #[test]
    fn structured_check_passes_legal_schedules_through() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let mut s = Schedule::empty(&g);
        s.set(m, 1);
        s.set(a, 3);
        let r = check_static_schedule_diag(&g, &s, &res).unwrap();
        assert_eq!(r.depth(), 1);
    }
}
