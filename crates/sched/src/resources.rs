//! Resource (functional-unit) models.
//!
//! The paper's experiments allocate *adders* and *multipliers*; a
//! multiplier is either **non-pipelined** (it is busy for every control
//! step of a multi-cycle multiplication) or **pipelined** (`Mp` in the
//! tables: a new operation can start every control step, so a unit is only
//! contended for in the control step where an operation *starts*).
//!
//! [`ResourceSet`] generalizes this to any number of unit classes, each
//! claiming a set of [`OpKind`]s.

use core::fmt;

use rotsched_dfg::OpKind;

/// Identifier of a resource class within a [`ResourceSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceClassId(pub(crate) usize);

impl ResourceClassId {
    /// The dense index of this class in its [`ResourceSet`].
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Builds a class id from a dense index. The index must identify a
    /// class of the [`ResourceSet`] it is used with.
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        ResourceClassId(index)
    }
}

/// One class of functional units (e.g. "3 pipelined multipliers").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceClass {
    name: String,
    count: u32,
    ops: Vec<OpKind>,
    pipelined: bool,
}

impl ResourceClass {
    /// Creates a class named `name` with `count` units executing the given
    /// operation kinds. `pipelined` units only occupy a unit in the
    /// control step where an operation starts.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        count: u32,
        ops: impl Into<Vec<OpKind>>,
        pipelined: bool,
    ) -> Self {
        ResourceClass {
            name: name.into(),
            count,
            ops: ops.into(),
            pipelined,
        }
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of units in the class.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether units of this class are pipelined.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Operation kinds executed by this class.
    #[must_use]
    pub fn ops(&self) -> &[OpKind] {
        &self.ops
    }

    /// Whether this class executes `op`.
    #[must_use]
    pub fn executes(&self, op: OpKind) -> bool {
        self.ops.contains(&op)
    }

    /// The control-step offsets (relative to the start step) during which
    /// an operation of duration `time` occupies one unit of this class.
    ///
    /// Non-pipelined: `0..time`. Pipelined: just the start step.
    pub fn occupancy(&self, time: u32) -> impl Iterator<Item = u32> {
        let end = if self.pipelined { 1 } else { time.max(1) };
        0..end
    }
}

/// A complete resource allocation: a list of unit classes.
///
/// Every operation kind used by a graph must be claimed by exactly one
/// class; [`ResourceSet::class_for`] resolves the binding.
///
/// # Examples
///
/// ```
/// use rotsched_sched::ResourceSet;
/// use rotsched_dfg::OpKind;
///
/// // "2A 1Mp" in the paper's tables: 2 adders, 1 pipelined multiplier.
/// let rs = ResourceSet::adders_multipliers(2, 1, true);
/// assert_eq!(rs.classes().len(), 2);
/// assert!(rs.class_for(OpKind::Add).is_some());
/// assert!(rs.class_for(OpKind::Mul).is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceSet {
    classes: Vec<ResourceClass>,
}

impl ResourceSet {
    /// Creates a resource set from explicit classes.
    #[must_use]
    pub fn new(classes: Vec<ResourceClass>) -> Self {
        ResourceSet { classes }
    }

    /// The paper's standard configuration: `adders` adder-class units
    /// (executing add/sub/cmp/shift) and `multipliers` multiplier-class
    /// units (mul/div), pipelined or not.
    ///
    /// In table notation, `adders_multipliers(3, 2, false)` is "3A 2M" and
    /// `adders_multipliers(3, 2, true)` is "3A 2Mp".
    #[must_use]
    pub fn adders_multipliers(adders: u32, multipliers: u32, pipelined_mult: bool) -> Self {
        ResourceSet::new(vec![
            ResourceClass::new(
                "adder",
                adders,
                vec![
                    OpKind::Add,
                    OpKind::Sub,
                    OpKind::Cmp,
                    OpKind::Shift,
                    OpKind::Other,
                ],
                false,
            ),
            ResourceClass::new(
                "multiplier",
                multipliers,
                vec![OpKind::Mul, OpKind::Div],
                pipelined_mult,
            ),
        ])
    }

    /// An effectively unconstrained resource set (useful for computing
    /// resource-free schedules with the same machinery).
    #[must_use]
    pub fn unlimited() -> Self {
        ResourceSet::new(vec![ResourceClass::new(
            "any",
            u32::MAX,
            OpKind::ALL.to_vec(),
            false,
        )])
    }

    /// The classes, indexable by [`ResourceClassId::index`].
    #[must_use]
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// Borrows one class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a class of this set.
    #[must_use]
    pub fn class(&self, id: ResourceClassId) -> &ResourceClass {
        &self.classes[id.0]
    }

    /// The class that executes `op`, if any. When several classes claim
    /// the same kind the first one wins.
    #[must_use]
    pub fn class_for(&self, op: OpKind) -> Option<ResourceClassId> {
        self.classes
            .iter()
            .position(|c| c.executes(op))
            .map(ResourceClassId)
    }

    /// Short table notation, e.g. `"3A 2Mp"`.
    #[must_use]
    pub fn label(&self) -> String {
        self.classes
            .iter()
            .map(|c| {
                let tag: String = c
                    .name
                    .chars()
                    .next()
                    .map(|ch| ch.to_ascii_uppercase().to_string())
                    .unwrap_or_default();
                format!("{}{}{}", c.count, tag, if c.pipelined { "p" } else { "" })
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_binds_ops() {
        let rs = ResourceSet::adders_multipliers(3, 2, false);
        let add = rs.class_for(OpKind::Add).unwrap();
        let sub = rs.class_for(OpKind::Sub).unwrap();
        let mul = rs.class_for(OpKind::Mul).unwrap();
        assert_eq!(add, sub);
        assert_ne!(add, mul);
        assert_eq!(rs.class(add).count(), 3);
        assert_eq!(rs.class(mul).count(), 2);
    }

    #[test]
    fn occupancy_nonpipelined_spans_duration() {
        let c = ResourceClass::new("m", 1, vec![OpKind::Mul], false);
        let occ: Vec<u32> = c.occupancy(3).collect();
        assert_eq!(occ, vec![0, 1, 2]);
    }

    #[test]
    fn occupancy_pipelined_is_start_only() {
        let c = ResourceClass::new("m", 1, vec![OpKind::Mul], true);
        let occ: Vec<u32> = c.occupancy(3).collect();
        assert_eq!(occ, vec![0]);
    }

    #[test]
    fn occupancy_of_zero_time_still_takes_a_step() {
        let c = ResourceClass::new("m", 1, vec![OpKind::Mul], false);
        assert_eq!(c.occupancy(0).count(), 1);
    }

    #[test]
    fn label_matches_table_notation() {
        assert_eq!(
            ResourceSet::adders_multipliers(3, 2, true).label(),
            "3A 2Mp"
        );
        assert_eq!(
            ResourceSet::adders_multipliers(2, 1, false).label(),
            "2A 1M"
        );
    }

    #[test]
    fn unlimited_claims_everything() {
        let rs = ResourceSet::unlimited();
        for op in OpKind::ALL {
            assert!(rs.class_for(op).is_some());
        }
    }
}
