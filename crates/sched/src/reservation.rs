//! Reservation tables: per-class, per-control-step unit usage.
//!
//! The table supports the two placement disciplines of Section 4: *linear*
//! occupancy for a growing (unwrapped) schedule, and *cyclic* occupancy
//! (modulo a kernel length) for wrapped schedules, where the tail of a
//! multi-cycle operation re-enters the first control steps.

use crate::resources::{ResourceClassId, ResourceSet};

/// Tracks how many units of each class are busy in each control step.
///
/// Control steps are 1-based, matching the paper's tables.
///
/// The table supports an internal *origin offset* so that renumbering
/// every control step by a constant (what [`Schedule::normalize`] does
/// to a schedule after a rotation) is an O(1) bookkeeping update
/// ([`ReservationTable::shift_origin`]) instead of a physical move of
/// every reservation. External control steps stay 1-based throughout.
///
/// [`Schedule::normalize`]: crate::Schedule::normalize
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReservationTable {
    /// `usage[class][cs - 1 + origin]` = busy units; grows on demand.
    usage: Vec<Vec<u32>>,
    limits: Vec<u32>,
    /// Maps external control step `cs` to row index `cs - 1 + origin`.
    origin: i64,
}

/// Origin values beyond this trigger a physical compaction so dead
/// leading entries cannot accumulate across a long rotation sequence.
/// Kept small so row capacity tops out at `horizon + COMPACT_ORIGIN`
/// within the first compaction cycle — beyond that warm-up, placements
/// stay within capacity and a steady-state rotation step never touches
/// the heap (enforced by the `alloc_discipline` suite). Compaction
/// itself is a short allocation-free `drain`.
const COMPACT_ORIGIN: i64 = 64;

impl ReservationTable {
    /// An empty table for the given resource set.
    #[must_use]
    pub fn new(resources: &ResourceSet) -> Self {
        ReservationTable {
            usage: vec![Vec::new(); resources.classes().len()],
            limits: resources.classes().iter().map(|c| c.count()).collect(),
            origin: 0,
        }
    }

    /// Row index of external control step `cs`; negative when the step
    /// lies before the physical start of the rows.
    fn index_of(&self, cs: u32) -> i64 {
        i64::from(cs) - 1 + self.origin
    }

    /// Busy units of `class` in control step `cs` (1-based).
    #[must_use]
    pub fn used(&self, class: ResourceClassId, cs: u32) -> u32 {
        assert!(cs >= 1, "control steps are 1-based");
        let idx = self.index_of(cs);
        if idx < 0 {
            return 0;
        }
        self.usage[class.index()]
            .get(usize::try_from(idx).expect("non-negative index"))
            .copied()
            .unwrap_or(0)
    }

    /// Renumbers every external control step by `delta` (the reservation
    /// at step `s` is afterwards addressed as `s + delta`) in O(1), by
    /// moving the internal origin instead of the data. This is the
    /// incremental counterpart of shifting a schedule during
    /// normalization.
    pub fn shift_origin(&mut self, delta: i64) {
        self.origin -= delta;
        if self.origin >= COMPACT_ORIGIN {
            self.compact();
        }
    }

    /// Physically drops the dead leading entries accumulated by
    /// positive-origin shifts. Entries below the origin address external
    /// steps `<= 0`, which can never hold a reservation.
    fn compact(&mut self) {
        let drop = usize::try_from(self.origin).expect("compact only on positive origin");
        for row in &mut self.usage {
            let k = drop.min(row.len());
            debug_assert!(
                row[..k].iter().all(|&u| u == 0),
                "entries before the origin must be free"
            );
            row.drain(..k);
        }
        self.origin = 0;
    }

    /// Whether this table holds exactly the same reservations as
    /// `other` at every external control step, regardless of internal
    /// origin or row padding. This is the comparison the incremental
    /// scheduling cross-checks use.
    #[must_use]
    pub fn same_usage(&self, other: &ReservationTable) -> bool {
        if self.limits != other.limits {
            return false;
        }
        let last = self.horizon().max(other.horizon());
        (0..self.usage.len()).all(|class_idx| {
            let class = ResourceClassId::from_index(class_idx);
            (1..=last).all(|cs| self.used(class, cs) == other.used(class, cs))
        })
    }

    /// Whether one unit of `class` is free in **all** the given control
    /// steps.
    #[must_use]
    pub fn can_place(&self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) -> bool {
        steps
            .into_iter()
            .all(|cs| self.used(class, cs) < self.limits[class.index()])
    }

    /// Occupies one unit of `class` in each given control step.
    ///
    /// # Panics
    ///
    /// Panics if any step would exceed the class limit — call
    /// [`ReservationTable::can_place`] first.
    pub fn place(&mut self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) {
        for cs in steps {
            assert!(cs >= 1, "control steps are 1-based");
            if self.index_of(cs) < 0 {
                // A negative origin (the table was shifted later than its
                // physical start) needs a one-off rebase before this step
                // can be addressed.
                self.rebase(-self.index_of(cs));
            }
            let idx = usize::try_from(self.index_of(cs)).expect("rebased index");
            let row = &mut self.usage[class.index()];
            if row.len() <= idx {
                row.resize(idx + 1, 0);
            }
            row[idx] += 1;
            assert!(
                row[idx] <= self.limits[class.index()],
                "resource class over-subscribed at control step {cs}"
            );
        }
    }

    /// Prepends `extra` free entries to every row so that steps before
    /// the current physical start become addressable.
    fn rebase(&mut self, extra: i64) {
        let extra = usize::try_from(extra).expect("rebase by a positive amount");
        for row in &mut self.usage {
            let old = row.len();
            row.resize(old + extra, 0);
            row.rotate_right(extra);
        }
        self.origin += i64::try_from(extra).expect("rebase amount fits");
    }

    /// Releases one unit of `class` in each given control step.
    ///
    /// # Panics
    ///
    /// Panics if a step had no unit of the class occupied.
    pub fn remove(&mut self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) {
        for cs in steps {
            let idx = usize::try_from(self.index_of(cs)).unwrap_or(usize::MAX);
            let row = &mut self.usage[class.index()];
            assert!(
                idx < row.len() && row[idx] > 0,
                "removing an unplaced reservation at control step {cs}"
            );
            row[idx] -= 1;
        }
    }

    /// Folds the absolute control steps `steps` into a cyclic kernel of
    /// `period` steps and checks the per-step limits there — the resource
    /// condition for a *wrapped* schedule (Section 4). Returns `true` when
    /// the folded usage fits.
    #[must_use]
    pub fn fits_cyclically(&self, period: u32) -> bool {
        assert!(period >= 1, "kernel period must be positive");
        for (class_idx, row) in self.usage.iter().enumerate() {
            let mut folded = vec![0_u32; period as usize];
            for (idx, &used) in row.iter().enumerate() {
                // Fold by the *external* step (0-based): idx - origin.
                let external = i64::try_from(idx).expect("row index fits") - self.origin;
                let residue = external.rem_euclid(i64::from(period));
                folded[usize::try_from(residue).expect("residue fits")] += used;
            }
            if folded.iter().any(|&u| u > self.limits[class_idx]) {
                return false;
            }
        }
        true
    }

    /// The largest occupied control step, or 0 when empty.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.usage
            .iter()
            .map(|row| {
                row.iter().rposition(|&u| u > 0).map_or(0, |idx| {
                    let external = i64::try_from(idx).expect("row index fits") - self.origin + 1;
                    u32::try_from(external.max(0)).unwrap_or(0)
                })
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceSet;
    use rotsched_dfg::OpKind;

    fn table() -> (ReservationTable, ResourceClassId, ResourceClassId) {
        let rs = ResourceSet::adders_multipliers(2, 1, false);
        let add = rs.class_for(OpKind::Add).unwrap();
        let mul = rs.class_for(OpKind::Mul).unwrap();
        (ReservationTable::new(&rs), add, mul)
    }

    #[test]
    fn place_and_query() {
        let (mut t, add, _) = table();
        assert!(t.can_place(add, [1, 2]));
        t.place(add, [1, 2]);
        assert_eq!(t.used(add, 1), 1);
        assert_eq!(t.used(add, 3), 0);
    }

    #[test]
    fn limit_is_enforced() {
        let (mut t, _, mul) = table();
        t.place(mul, [1]);
        assert!(!t.can_place(mul, [1]));
        assert!(t.can_place(mul, [2]));
    }

    #[test]
    fn remove_frees_the_step() {
        let (mut t, _, mul) = table();
        t.place(mul, [4, 5]);
        t.remove(mul, [4, 5]);
        assert!(t.can_place(mul, [4]));
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    #[should_panic(expected = "removing an unplaced reservation")]
    fn removing_unplaced_panics() {
        let (mut t, add, _) = table();
        t.remove(add, [1]);
    }

    #[test]
    fn horizon_tracks_last_used_step() {
        let (mut t, add, _) = table();
        t.place(add, [7]);
        assert_eq!(t.horizon(), 7);
        t.remove(add, [7]);
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    fn cyclic_fit_folds_usage() {
        let (mut t, _, mul) = table();
        // Multiplier busy at steps 1 and 4; folded over period 3 they land
        // on residues 1 and 1 -> two units needed, only one exists.
        t.place(mul, [1]);
        t.place(mul, [4]);
        assert!(!t.fits_cyclically(3));
        // Folded over period 2: residues 1 and 2 -> fits.
        assert!(t.fits_cyclically(2));
    }

    #[test]
    fn shift_origin_renumbers_in_place() {
        let (mut t, add, mul) = table();
        t.place(add, [3, 4]);
        t.place(mul, [3]);
        // Renumber so step 3 becomes step 1 (normalization by -2).
        t.shift_origin(-2);
        assert_eq!(t.used(add, 1), 1);
        assert_eq!(t.used(add, 2), 1);
        assert_eq!(t.used(mul, 1), 1);
        assert_eq!(t.used(add, 3), 0);
        assert_eq!(t.horizon(), 2);
        t.remove(add, [1, 2]);
        t.remove(mul, [1]);
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    fn negative_origin_rebases_on_place() {
        let (mut t, add, _) = table();
        t.place(add, [1]);
        // Shift later: the old step 1 is now step 4; steps 1..3 are free
        // but lie before the physical rows until a place rebases them.
        t.shift_origin(3);
        assert_eq!(t.used(add, 4), 1);
        assert_eq!(t.used(add, 1), 0);
        assert!(t.can_place(add, [1]));
        t.place(add, [1]);
        assert_eq!(t.used(add, 1), 1);
        assert_eq!(t.used(add, 4), 1);
        assert_eq!(t.horizon(), 4);
    }

    #[test]
    fn shifted_tables_compare_by_usage() {
        let (mut a, add, _) = table();
        let (mut b, _, _) = table();
        a.place(add, [5]);
        a.shift_origin(-4); // now occupies external step 1
        b.place(add, [1]);
        assert!(a.same_usage(&b));
        assert_ne!(a, b, "derived equality sees the physical layout");
        b.place(add, [2]);
        assert!(!a.same_usage(&b));
    }

    #[test]
    fn repeated_shifts_compact_without_losing_usage() {
        let (mut t, add, _) = table();
        // Drive the origin far past the compaction threshold the way a
        // long rotation sequence does: place, free the head, renumber.
        for _ in 0..2000 {
            t.place(add, [1, 2]);
            t.remove(add, [1, 2]);
            t.place(add, [3]);
            t.shift_origin(-2);
            assert_eq!(t.used(add, 1), 1);
            t.remove(add, [1]);
        }
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    fn cyclic_fit_is_origin_independent() {
        let (mut t, _, mul) = table();
        t.place(mul, [4]);
        t.place(mul, [7]);
        let plain_fit_3 = t.fits_cyclically(3);
        let plain_fit_2 = t.fits_cyclically(2);
        t.shift_origin(-3); // steps become 1 and 4
        assert_eq!(t.fits_cyclically(3), plain_fit_3);
        assert_eq!(t.fits_cyclically(2), plain_fit_2);
    }

    #[test]
    fn two_adders_allow_two_placements() {
        let (mut t, add, _) = table();
        t.place(add, [1]);
        assert!(t.can_place(add, [1]));
        t.place(add, [1]);
        assert!(!t.can_place(add, [1]));
    }
}
