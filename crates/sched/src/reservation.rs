//! Reservation tables: per-class, per-control-step unit usage.
//!
//! The table supports the two placement disciplines of Section 4: *linear*
//! occupancy for a growing (unwrapped) schedule, and *cyclic* occupancy
//! (modulo a kernel length) for wrapped schedules, where the tail of a
//! multi-cycle operation re-enters the first control steps.

use crate::resources::{ResourceClassId, ResourceSet};

/// Tracks how many units of each class are busy in each control step.
///
/// Control steps are 1-based, matching the paper's tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReservationTable {
    /// `usage[class][cs - 1]` = busy units; grows on demand.
    usage: Vec<Vec<u32>>,
    limits: Vec<u32>,
}

impl ReservationTable {
    /// An empty table for the given resource set.
    #[must_use]
    pub fn new(resources: &ResourceSet) -> Self {
        ReservationTable {
            usage: vec![Vec::new(); resources.classes().len()],
            limits: resources.classes().iter().map(|c| c.count()).collect(),
        }
    }

    /// Busy units of `class` in control step `cs` (1-based).
    #[must_use]
    pub fn used(&self, class: ResourceClassId, cs: u32) -> u32 {
        assert!(cs >= 1, "control steps are 1-based");
        self.usage[class.index()]
            .get(cs as usize - 1)
            .copied()
            .unwrap_or(0)
    }

    /// Whether one unit of `class` is free in **all** the given control
    /// steps.
    #[must_use]
    pub fn can_place(&self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) -> bool {
        steps
            .into_iter()
            .all(|cs| self.used(class, cs) < self.limits[class.index()])
    }

    /// Occupies one unit of `class` in each given control step.
    ///
    /// # Panics
    ///
    /// Panics if any step would exceed the class limit — call
    /// [`ReservationTable::can_place`] first.
    pub fn place(&mut self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) {
        for cs in steps {
            assert!(cs >= 1, "control steps are 1-based");
            let row = &mut self.usage[class.index()];
            let idx = cs as usize - 1;
            if row.len() <= idx {
                row.resize(idx + 1, 0);
            }
            row[idx] += 1;
            assert!(
                row[idx] <= self.limits[class.index()],
                "resource class over-subscribed at control step {cs}"
            );
        }
    }

    /// Releases one unit of `class` in each given control step.
    ///
    /// # Panics
    ///
    /// Panics if a step had no unit of the class occupied.
    pub fn remove(&mut self, class: ResourceClassId, steps: impl IntoIterator<Item = u32>) {
        for cs in steps {
            let row = &mut self.usage[class.index()];
            let idx = cs as usize - 1;
            assert!(
                idx < row.len() && row[idx] > 0,
                "removing an unplaced reservation at control step {cs}"
            );
            row[idx] -= 1;
        }
    }

    /// Folds the absolute control steps `steps` into a cyclic kernel of
    /// `period` steps and checks the per-step limits there — the resource
    /// condition for a *wrapped* schedule (Section 4). Returns `true` when
    /// the folded usage fits.
    #[must_use]
    pub fn fits_cyclically(&self, period: u32) -> bool {
        assert!(period >= 1, "kernel period must be positive");
        for (class_idx, row) in self.usage.iter().enumerate() {
            let mut folded = vec![0_u32; period as usize];
            for (idx, &used) in row.iter().enumerate() {
                folded[idx % period as usize] += used;
            }
            if folded.iter().any(|&u| u > self.limits[class_idx]) {
                return false;
            }
        }
        true
    }

    /// The largest occupied control step, or 0 when empty.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.usage
            .iter()
            .map(|row| {
                row.iter()
                    .rposition(|&u| u > 0)
                    .map_or(0, |idx| idx as u32 + 1)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceSet;
    use rotsched_dfg::OpKind;

    fn table() -> (ReservationTable, ResourceClassId, ResourceClassId) {
        let rs = ResourceSet::adders_multipliers(2, 1, false);
        let add = rs.class_for(OpKind::Add).unwrap();
        let mul = rs.class_for(OpKind::Mul).unwrap();
        (ReservationTable::new(&rs), add, mul)
    }

    #[test]
    fn place_and_query() {
        let (mut t, add, _) = table();
        assert!(t.can_place(add, [1, 2]));
        t.place(add, [1, 2]);
        assert_eq!(t.used(add, 1), 1);
        assert_eq!(t.used(add, 3), 0);
    }

    #[test]
    fn limit_is_enforced() {
        let (mut t, _, mul) = table();
        t.place(mul, [1]);
        assert!(!t.can_place(mul, [1]));
        assert!(t.can_place(mul, [2]));
    }

    #[test]
    fn remove_frees_the_step() {
        let (mut t, _, mul) = table();
        t.place(mul, [4, 5]);
        t.remove(mul, [4, 5]);
        assert!(t.can_place(mul, [4]));
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    #[should_panic(expected = "removing an unplaced reservation")]
    fn removing_unplaced_panics() {
        let (mut t, add, _) = table();
        t.remove(add, [1]);
    }

    #[test]
    fn horizon_tracks_last_used_step() {
        let (mut t, add, _) = table();
        t.place(add, [7]);
        assert_eq!(t.horizon(), 7);
        t.remove(add, [7]);
        assert_eq!(t.horizon(), 0);
    }

    #[test]
    fn cyclic_fit_folds_usage() {
        let (mut t, _, mul) = table();
        // Multiplier busy at steps 1 and 4; folded over period 3 they land
        // on residues 1 and 1 -> two units needed, only one exists.
        t.place(mul, [1]);
        t.place(mul, [4]);
        assert!(!t.fits_cyclically(3));
        // Folded over period 2: residues 1 and 2 -> fits.
        assert!(t.fits_cyclically(2));
    }

    #[test]
    fn two_adders_allow_two_placements() {
        let (mut t, add, _) = table();
        t.place(add, [1]);
        assert!(t.can_place(add, [1]));
        t.place(add, [1]);
        assert!(!t.can_place(add, [1]));
    }
}
