//! Register-pressure analysis of a loop pipeline (MAXLIVE).
//!
//! The paper's conclusion points at the synthesis stages that follow
//! scheduling — "connection binding, allocation or data-path
//! generation" — and its follow-up work weighs rotation choices by
//! register and interconnect cost. This module computes the steady-state
//! register requirement of a [`LoopSchedule`]: for every kernel slot,
//! how many produced-but-not-yet-consumed values are live, counting the
//! overlapped copies from concurrent iterations.
//!
//! A value produced by `u` for iteration `j` becomes available at the
//! end of step `(j − r(u))·L + s(u) + t(u) − 1` and must be held until
//! its last consumer starts: `max over edges u→v with d delays of
//! (j + d − r(v))·L + s(v)`. Lifetimes longer than the kernel overlap
//! themselves, so one value may need several registers at once.

use rotsched_dfg::Dfg;

use crate::prologue::LoopSchedule;

/// Steady-state register requirements of a pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterReport {
    /// Live values per kernel slot (index 0 = control step 1).
    pub per_slot: Vec<u32>,
    /// The maximum over slots — registers needed.
    pub max_live: u32,
    /// Sum of all value lifetimes in steps (a proxy for total register
    /// traffic).
    pub total_lifetime: u64,
}

/// Computes the steady-state register pressure of `loop_schedule`.
///
/// Nodes without consumers contribute nothing (their results leave the
/// datapath). Values consumed in the same step they are produced still
/// occupy a register for that step boundary only if a later consumer
/// exists.
///
/// # Panics
///
/// Panics if the kernel schedule is incomplete.
#[must_use]
pub fn register_pressure(dfg: &Dfg, loop_schedule: &LoopSchedule) -> RegisterReport {
    let ii = i64::from(loop_schedule.kernel_length());
    let schedule = loop_schedule.schedule();
    let r = loop_schedule.retiming();

    let mut per_slot = vec![0_u32; ii as usize];
    let mut total_lifetime = 0_u64;

    for u in dfg.node_ids() {
        let su = i64::from(schedule.start(u).expect("complete kernel schedule"));
        let tu = i64::from(dfg.node(u).time().max(1));
        // Available at the END of this absolute step (iteration 0 copy).
        let avail = -r.of(u) * ii + su + tu - 1;
        // Held through the start step of the last consumer.
        let mut death = avail;
        for &e in dfg.out_edges(u) {
            let edge = dfg.edge(e);
            let v = edge.to();
            let sv = i64::from(schedule.start(v).expect("complete kernel schedule"));
            let consume = (i64::from(edge.delays()) - r.of(v)) * ii + sv;
            death = death.max(consume);
        }
        if death <= avail {
            continue;
        }
        total_lifetime += u64::try_from(death - avail).expect("positive lifetime");
        // Live during absolute steps (avail, death]; fold modulo the
        // kernel.
        for x in (avail + 1)..=death {
            let slot = usize::try_from((x - 1).rem_euclid(ii)).expect("slot fits");
            per_slot[slot] += 1;
        }
    }

    let max_live = per_slot.iter().copied().max().unwrap_or(0);
    RegisterReport {
        per_slot,
        max_live,
        total_lifetime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use rotsched_dfg::{DfgBuilder, OpKind, Retiming};

    /// Producer at step 1 (1 step), consumer at step 3, kernel of 3.
    #[test]
    fn simple_lifetime_counts_slots() {
        let g = DfgBuilder::new("g")
            .node("p", OpKind::Add, 1)
            .node("c", OpKind::Add, 1)
            .wire("p", "c")
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("p").unwrap(), 1);
        s.set(g.node_by_name("c").unwrap(), 3);
        let ls = LoopSchedule::new(3, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        // Available end of step 1, consumed at start of step 3: live
        // through steps 2 and 3.
        assert_eq!(report.per_slot, vec![0, 1, 1]);
        assert_eq!(report.max_live, 1);
        assert_eq!(report.total_lifetime, 2);
    }

    #[test]
    fn loop_carried_value_spans_the_kernel_boundary() {
        // c produces at step 2; p of the NEXT iteration consumes it at
        // step 1 (delay 1): the value lives from end of step 2 through
        // step 1 of the next kernel -> slots 3..L and 1.
        let g = DfgBuilder::new("g")
            .node("p", OpKind::Add, 1)
            .node("c", OpKind::Add, 1)
            .wire("p", "c")
            .edge("c", "p", 1)
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("p").unwrap(), 1);
        s.set(g.node_by_name("c").unwrap(), 2);
        let ls = LoopSchedule::new(3, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        // p's value: avail end 1, consumed by c at 2 -> slot 2.
        // c's value: avail end 2, consumed by p at step 1 of next kernel
        // (absolute 4) -> slots 3 and 1.
        assert_eq!(report.per_slot, vec![1, 1, 1]);
        assert_eq!(report.max_live, 1);
    }

    #[test]
    fn long_lifetimes_overlap_themselves() {
        // A 2-delay consumer with a 1-step kernel: each value lives ~2
        // kernels, so ~2 copies are live at once.
        let g = DfgBuilder::new("g")
            .node("p", OpKind::Add, 1)
            .node("c", OpKind::Add, 1)
            .edge("p", "c", 2)
            .edge("c", "p", 1)
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("p").unwrap(), 1);
        s.set(g.node_by_name("c").unwrap(), 1);
        let ls = LoopSchedule::new(1, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        // p's value of iteration j: avail end of step j+... lifetime 2
        // kernels; c's value: 1 kernel. At any step: 2 copies of p's
        // value + 1 of c's = 3.
        assert_eq!(report.max_live, 3);
    }

    #[test]
    fn sink_values_need_no_register() {
        let g = DfgBuilder::new("g")
            .node("p", OpKind::Add, 1)
            .build()
            .unwrap();
        let mut s = Schedule::empty(&g);
        s.set(g.node_by_name("p").unwrap(), 1);
        let ls = LoopSchedule::new(1, s, Retiming::zero(&g));
        let report = register_pressure(&g, &ls);
        assert_eq!(report.max_live, 0);
        assert_eq!(report.total_lifetime, 0);
    }

    #[test]
    fn total_lifetime_on_a_single_cycle_is_retiming_invariant() {
        // On a cycle where every value has exactly one consumer, the
        // total lifetime telescopes to Σd·L − Σt + |C| regardless of the
        // retiming or the slot placement — registers are conserved, only
        // redistributed. (This is why the communication-sensitive
        // follow-up work optimizes the *distribution*, not the total.)
        let g = DfgBuilder::new("g")
            .node("p", OpKind::Add, 1)
            .node("c", OpKind::Add, 1)
            .wire("p", "c")
            .edge("c", "p", 2)
            .build()
            .unwrap();
        let p = g.node_by_name("p").unwrap();
        let c = g.node_by_name("c").unwrap();
        let expected = 2 * 2 - 2 + 2; // Σd·L − Σt + |C| = 4

        let mut s = Schedule::empty(&g);
        s.set(p, 1);
        s.set(c, 2);
        let flat = register_pressure(&g, &LoopSchedule::new(2, s, Retiming::zero(&g)));
        assert_eq!(flat.total_lifetime, expected);

        // Rotate p one iteration up (legal: c -> p has 2 delays) with a
        // different slot assignment: same total, possibly different
        // per-slot distribution.
        let mut s2 = Schedule::empty(&g);
        s2.set(p, 2);
        s2.set(c, 1);
        let r = Retiming::from_set(&g, [p]);
        let rotated = register_pressure(&g, &LoopSchedule::new(2, s2, r));
        assert_eq!(rotated.total_lifetime, expected);
    }
}
