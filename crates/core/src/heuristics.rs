//! The two rotation-scheduling heuristics of Section 5.
//!
//! * **Heuristic 1** runs independent rotation phases of sizes `1..=β`,
//!   each restarting from the initial list schedule of the original DFG.
//!   Its behavior is predictable and lets one study the effect of
//!   rotation size on convergence.
//! * **Heuristic 2** chains phases in *decreasing* size order, feeding
//!   each phase's final rotation function into a fresh `FullSchedule` of
//!   the retimed graph — "these rotation functions give us more faces of
//!   the input DFG". It found strictly better schedules than Heuristic 1
//!   in one of the paper's experiments (elliptic filter, 2A 1Mp) and is
//!   the heuristic behind the reported tables.

use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet};

use crate::budget::{BudgetMeter, StopReason};
use crate::engine::SearchDriver;
use crate::error::RotationError;
use crate::objective::Score;
use crate::phase::{BestSet, PhaseStats};
use crate::portfolio::PruneSignal;
use crate::rotate::RotationState;

/// Tuning knobs shared by both heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// `α`: down-rotations per phase.
    pub rotations_per_phase: usize,
    /// `β`: the range of phase sizes (`1..=β` for Heuristic 1, `β..=1`
    /// descending for Heuristic 2). `None` uses the initial schedule
    /// length, the paper's default.
    pub max_size: Option<u32>,
    /// How many distinct best schedules to retain in `Q`.
    pub keep_best: usize,
    /// How many times Heuristic 2 repeats its full descending size
    /// sweep, each round continuing from the previous round's
    /// accumulated rotation function. The paper's description is one
    /// round; extra rounds explore more "faces of the input DFG" for
    /// hard instances (Heuristic 1 ignores this knob).
    pub rounds: usize,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            rotations_per_phase: 32,
            max_size: None,
            keep_best: 16,
            rounds: 4,
        }
    }
}

/// The result of a heuristic run.
#[derive(Clone, Debug)]
pub struct HeuristicOutcome {
    /// Best (wrapped) schedule length found.
    pub best_length: u32,
    /// Best packed score found; its length component is `best_length`,
    /// and under the default objective it is exactly
    /// `Score::from_length(best_length)`.
    pub best_score: Score,
    /// The distinct best schedules (`Q`), each with its rotation
    /// function.
    pub best: Vec<RotationState>,
    /// Per-phase statistics in execution order, for convergence studies.
    pub phases: Vec<PhaseStats>,
    /// Total rotations performed across all phases.
    pub total_rotations: usize,
    /// Why the run stopped early, if a [`Budget`](crate::Budget) limit
    /// fired mid-run; `None` for a run that finished its full sweep.
    pub stopped: Option<StopReason>,
}

impl HeuristicOutcome {
    /// Assembles an outcome from a final best set and the per-phase
    /// statistics in execution order (the [`SearchDriver`]'s raw
    /// products).
    ///
    /// [`SearchDriver`]: crate::engine::SearchDriver
    #[must_use]
    pub fn from_parts(best: BestSet, phases: Vec<PhaseStats>) -> Self {
        HeuristicOutcome {
            best_length: best.length(),
            best_score: best.score,
            best: best.schedules,
            total_rotations: phases.iter().map(|p| p.rotations).sum(),
            stopped: phases.iter().find_map(|p| p.stopped),
            phases,
        }
    }
}

/// Heuristic 1: independent phases of sizes `1..=β`, each restarting
/// from the initial schedule and the zero rotation function.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn heuristic1(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    config: &HeuristicConfig,
) -> Result<HeuristicOutcome, RotationError> {
    heuristic1_budgeted(dfg, scheduler, resources, config, None)
}

/// [`heuristic1`] under an optional armed [`Budget`](crate::Budget): a
/// fired budget ends the current phase at its cancellation point and
/// skips the remaining sizes, returning the incumbent best. With
/// `budget = None` this is exactly [`heuristic1`].
///
/// This is a thin wrapper over [`SearchDriver::heuristic1`] on the
/// incremental step mode.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn heuristic1_budgeted(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    config: &HeuristicConfig,
    budget: Option<&BudgetMeter>,
) -> Result<HeuristicOutcome, RotationError> {
    SearchDriver::incremental(dfg, scheduler, resources)
        .with_budget(budget)
        .heuristic1(config)
}

/// Heuristic 2: iterative compaction with phases of decreasing size
/// `β, β−1, …, 1`; each phase continues from the previous phase's final
/// rotation function via a fresh `FullSchedule` of the retimed graph.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn heuristic2(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    config: &HeuristicConfig,
) -> Result<HeuristicOutcome, RotationError> {
    heuristic2_pruned(dfg, scheduler, resources, config, None, None)
}

/// [`heuristic2`] with an optional portfolio pruning signal and an
/// optional armed [`Budget`](crate::Budget): the sweep publishes its
/// best length as it goes and stops early when the signal says further
/// work is pointless (see [`PruneSignal`])
/// or when the budget meter fires. A budget stop ends the sweep after
/// the phase that recorded it — its chained reschedule is skipped, so
/// the incumbent is exactly what the truncated search produced. With
/// `prune = None` and `budget = None` this is exactly [`heuristic2`].
///
/// This is a thin wrapper over [`SearchDriver::heuristic2`] on the
/// incremental step mode.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn heuristic2_pruned(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    config: &HeuristicConfig,
    prune: Option<&PruneSignal<'_>>,
    budget: Option<&BudgetMeter>,
) -> Result<HeuristicOutcome, RotationError> {
    SearchDriver::incremental(dfg, scheduler, resources)
        .with_prune(prune)
        .with_budget(budget)
        .heuristic2(config)
}

/// The from-scratch twin of [`heuristic2`]: the same sweep driven by
/// the scratch step mode, i.e. without the incremental
/// [`RotationContext`](crate::RotationContext). Kept as the reference
/// arm for equivalence tests and end-to-end before/after measurements —
/// its results are bit-identical to [`heuristic2`]'s, including under a
/// rotation budget (`budget` mirrors [`heuristic2_pruned`]'s).
///
/// This is a thin wrapper over [`SearchDriver::heuristic2`] on the
/// scratch step mode.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn heuristic2_reference(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    config: &HeuristicConfig,
    budget: Option<&BudgetMeter>,
) -> Result<HeuristicOutcome, RotationError> {
    SearchDriver::reference(dfg, scheduler, resources)
        .with_budget(budget)
        .heuristic2(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotate::initial_state;
    use rotsched_dfg::analysis::iteration_bound;
    use rotsched_dfg::{DfgBuilder, OpKind};
    use rotsched_sched::validate::realizing_retiming;

    fn ring(n: usize, delays: u32) -> Dfg {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        DfgBuilder::new("ring")
            .nodes("v", n, OpKind::Add, 1)
            .chain(&refs)
            .edge(&format!("v{}", n - 1), "v0", delays)
            .build()
            .unwrap()
    }

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        }
    }

    #[test]
    fn heuristic1_reaches_the_combined_lower_bound_on_a_ring() {
        // 6 unit ops, 3 delays: IB = 2, but 2 adders bound the length at
        // ceil(6/2) = 3 — the binding constraint here.
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let out = heuristic1(&g, &ListScheduler::default(), &res, &config()).unwrap();
        let ib = iteration_bound(&g).unwrap().unwrap();
        assert_eq!(ib, 2);
        assert_eq!(out.best_length, 3);
        assert!(!out.best.is_empty());
    }

    #[test]
    fn heuristic1_reaches_the_iteration_bound_with_ample_resources() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let out = heuristic1(&g, &ListScheduler::default(), &res, &config()).unwrap();
        assert_eq!(out.best_length, 2, "IB = 6/3 = 2 with 3 adders");
    }

    #[test]
    fn heuristic2_reaches_the_combined_lower_bound_on_a_ring() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let out = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
        assert_eq!(out.best_length, 3);
    }

    #[test]
    fn resource_bound_limits_the_result() {
        // 6 adds, 1 adder: no schedule can beat 6 steps regardless of
        // delays.
        let g = ring(6, 6);
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let out = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
        assert_eq!(out.best_length, 6);
    }

    #[test]
    fn every_best_schedule_is_statically_legal() {
        let g = ring(5, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let out = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
        for st in &out.best {
            let r = realizing_retiming(&g, &st.schedule)
                .expect("best schedules are static schedules of G");
            assert!(r.is_legal(&g));
        }
    }

    #[test]
    fn phases_and_rotation_counts_are_reported() {
        let g = ring(4, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let out = heuristic1(&g, &ListScheduler::default(), &res, &config()).unwrap();
        assert_eq!(out.phases.len(), 4, "one phase per size 1..=initial length");
        assert_eq!(
            out.total_rotations,
            out.phases.iter().map(|p| p.rotations).sum::<usize>()
        );
    }

    #[test]
    fn incremental_heuristic2_matches_the_reference_path() {
        for delays in 1..=3 {
            let g = ring(6, delays);
            let res = ResourceSet::adders_multipliers(2, 0, false);
            let fast = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
            let slow =
                heuristic2_reference(&g, &ListScheduler::default(), &res, &config(), None).unwrap();
            assert_eq!(fast.best_length, slow.best_length);
            assert_eq!(fast.best, slow.best);
            assert_eq!(fast.phases, slow.phases);
        }
    }

    #[test]
    fn budgeted_heuristic2_truncates_deterministically() {
        use crate::budget::{Budget, StopReason};
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let full = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
        let mut last_best = u32::MAX;
        for k in 0..=full.total_rotations {
            let meter = Budget::default().with_max_rotations(k as u64).arm();
            let out = heuristic2_pruned(
                &g,
                &ListScheduler::default(),
                &res,
                &config(),
                None,
                Some(&meter),
            )
            .unwrap();
            assert!(out.total_rotations <= k);
            assert!(
                out.best_length <= last_best,
                "incumbent never regresses as the budget grows"
            );
            last_best = out.best_length;
            if k < full.total_rotations {
                assert_eq!(out.stopped, Some(StopReason::RotationBudget));
            }
        }
        assert_eq!(last_best, full.best_length);
    }

    #[test]
    fn budgeted_heuristic1_stops_and_keeps_incumbent() {
        use crate::budget::Budget;
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let meter = Budget::default().with_max_rotations(0).arm();
        let out = heuristic1_budgeted(&g, &ListScheduler::default(), &res, &config(), Some(&meter))
            .unwrap();
        assert_eq!(out.total_rotations, 0);
        assert!(out.stopped.is_some());
        assert!(!out.best.is_empty(), "initial schedule is the incumbent");
    }

    #[test]
    fn heuristics_never_worsen_the_initial_schedule() {
        for delays in 1..=4 {
            let g = ring(5, delays);
            let res = ResourceSet::adders_multipliers(2, 0, false);
            let init_len = initial_state(&g, &ListScheduler::default(), &res)
                .unwrap()
                .length(&g);
            let out = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
            assert!(out.best_length <= init_len);
        }
    }
}
