//! The high-level rotation-scheduling API.
//!
//! [`RotationScheduler`] bundles a graph reference, a resource set, a
//! DAG scheduler and a [`HeuristicConfig`], and exposes the whole
//! pipeline — initial schedule, individual rotations, both heuristics,
//! depth minimization, loop expansion, and end-to-end simulation — as
//! methods. It is the type downstream users interact with; the
//! lower-level functions remain available for research code that wants
//! to compose its own heuristics.

use rotsched_dfg::Dfg;
use rotsched_sched::{
    simulate, ListScheduler, LoopSchedule, PriorityPolicy, ResourceSet, SimulationReport,
};

use crate::depth::{into_loop_schedule, minimized_depth};
use crate::error::RotationError;
use crate::heuristics::{heuristic1, heuristic2, HeuristicConfig, HeuristicOutcome};
use crate::portfolio::{Portfolio, PortfolioOutcome};
use crate::rotate::{down_rotate, initial_state, up_rotate, DownRotateOutcome, RotationState};

/// A solved instance: the best pipeline found plus its key metrics.
#[derive(Clone, Debug)]
pub struct SolvedPipeline {
    /// The wrapped schedule length (initiation interval).
    pub length: u32,
    /// The minimized pipeline depth (the parenthesized numbers in the
    /// paper's tables).
    pub depth: u32,
    /// The winning state (schedule + rotation function).
    pub state: RotationState,
    /// The full heuristic outcome (all best schedules, per-phase stats).
    pub outcome: HeuristicOutcome,
}

/// Rotation scheduling, end to end.
///
/// # Examples
///
/// ```
/// use rotsched_core::RotationScheduler;
/// use rotsched_dfg::{DfgBuilder, OpKind};
/// use rotsched_sched::ResourceSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 4-op recurrence with 2 registers: iteration bound 2.
/// let g = DfgBuilder::new("ring")
///     .nodes("v", 4, OpKind::Add, 1)
///     .chain(&["v0", "v1", "v2", "v3"])
///     .edge("v3", "v0", 2)
///     .build()?;
/// let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
/// let solved = rs.solve()?;
/// assert_eq!(solved.length, 2); // pipelined down from the 4-step DAG
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RotationScheduler<'a> {
    dfg: &'a Dfg,
    resources: ResourceSet,
    scheduler: ListScheduler,
    config: HeuristicConfig,
    jobs: usize,
}

impl<'a> RotationScheduler<'a> {
    /// Creates a scheduler for `dfg` under `resources` with the paper's
    /// defaults (descendant-count list scheduling, Heuristic 2 with
    /// phase sizes down from the initial schedule length).
    #[must_use]
    pub fn new(dfg: &'a Dfg, resources: ResourceSet) -> Self {
        RotationScheduler {
            dfg,
            resources,
            scheduler: ListScheduler::default(),
            config: HeuristicConfig::default(),
            jobs: 1,
        }
    }

    /// Replaces the list-scheduling priority policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PriorityPolicy) -> Self {
        self.scheduler = ListScheduler::new(policy);
        self
    }

    /// Sets the worker-thread count used by [`RotationScheduler::portfolio`]
    /// and [`RotationScheduler::solve_portfolio`]. The result is
    /// deterministic in this knob; `1` (the default) runs on the
    /// caller's thread.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Replaces the heuristic configuration.
    #[must_use]
    pub fn with_config(mut self, config: HeuristicConfig) -> Self {
        self.config = config;
        self
    }

    /// The resource set in use.
    #[must_use]
    pub fn resources(&self) -> &ResourceSet {
        &self.resources
    }

    /// The initial (unpipelined) list schedule of the DAG — the paper's
    /// `FullSchedule(G)` starting point.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn initial(&self) -> Result<RotationState, RotationError> {
        initial_state(self.dfg, &self.scheduler, &self.resources)
    }

    /// Performs one down-rotation of `size` steps on `state`.
    ///
    /// # Errors
    ///
    /// See [`down_rotate`].
    pub fn down_rotate(
        &self,
        state: &mut RotationState,
        size: u32,
    ) -> Result<DownRotateOutcome, RotationError> {
        down_rotate(self.dfg, &self.scheduler, &self.resources, state, size)
    }

    /// Performs one up-rotation of `size` steps on `state`.
    ///
    /// # Errors
    ///
    /// See [`up_rotate`].
    pub fn up_rotate(
        &self,
        state: &mut RotationState,
        size: u32,
    ) -> Result<DownRotateOutcome, RotationError> {
        up_rotate(self.dfg, &self.scheduler, &self.resources, state, size)
    }

    /// Runs Heuristic 1 (independent phases).
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic1(&self) -> Result<HeuristicOutcome, RotationError> {
        heuristic1(self.dfg, &self.scheduler, &self.resources, &self.config)
    }

    /// Runs Heuristic 2 (chained phases of decreasing size) — the
    /// heuristic behind the paper's reported results.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic2(&self) -> Result<HeuristicOutcome, RotationError> {
        heuristic2(self.dfg, &self.scheduler, &self.resources, &self.config)
    }

    /// Runs Heuristic 2 and packages the best schedule with its
    /// minimized pipeline depth.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures;
    /// [`RotationError::Unrealizable`] cannot occur for states produced
    /// by rotation.
    pub fn solve(&self) -> Result<SolvedPipeline, RotationError> {
        let outcome = self.heuristic2()?;
        let state = outcome
            .best
            .first()
            .cloned()
            .expect("heuristics always retain at least the initial schedule");
        let depth = minimized_depth(self.dfg, &state)?;
        Ok(SolvedPipeline {
            length: outcome.best_length,
            depth,
            state,
            outcome,
        })
    }

    /// Runs the standard search portfolio (Heuristic 1's phases plus a
    /// Heuristic-2 sweep per priority policy) on the configured number
    /// of worker threads, with lower-bound-based pruning. The outcome
    /// is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn portfolio(&self) -> Result<PortfolioOutcome, RotationError> {
        Portfolio::standard(self.dfg, &self.resources, &self.config)?
            .with_jobs(self.jobs)
            .run(self.dfg, &self.resources)
    }

    /// Like [`RotationScheduler::solve`], but searches with the full
    /// parallel portfolio instead of a single Heuristic-2 sweep. Never
    /// worse than `solve()` on the same configuration, and
    /// deterministic in the thread count.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn solve_portfolio(&self) -> Result<SolvedPipeline, RotationError> {
        let outcome = self.portfolio()?;
        let state = outcome
            .best
            .first()
            .cloned()
            .expect("the portfolio always retains at least the initial schedule");
        let depth = minimized_depth(self.dfg, &state)?;
        Ok(SolvedPipeline {
            length: outcome.best_length,
            depth,
            state,
            outcome: HeuristicOutcome {
                best_length: outcome.best_length,
                best: outcome.best,
                total_rotations: outcome.total_rotations,
                phases: outcome.phases,
            },
        })
    }

    /// Expands a state into an executable [`LoopSchedule`] (wrapped
    /// kernel + shallow retiming).
    ///
    /// # Errors
    ///
    /// See [`into_loop_schedule`].
    pub fn loop_schedule(&self, state: &RotationState) -> Result<LoopSchedule, RotationError> {
        into_loop_schedule(self.dfg, &self.resources, state)
    }

    /// Simulates a state end-to-end for `iterations` iterations,
    /// verifying operand availability, resource limits, and functional
    /// equivalence with sequential execution.
    ///
    /// # Errors
    ///
    /// Returns the first simulation violation; a passing run certifies
    /// the pipeline.
    pub fn verify(
        &self,
        state: &RotationState,
        iterations: u32,
    ) -> Result<SimulationReport, RotationError> {
        let ls = self.loop_schedule(state)?;
        Ok(simulate(self.dfg, &ls, &self.resources, iterations)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring() -> Dfg {
        DfgBuilder::new("ring")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn solve_finds_the_iteration_bound() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solved = rs.solve().unwrap();
        assert_eq!(solved.length, 2);
        assert!(solved.depth <= 2);
    }

    #[test]
    fn verify_passes_on_the_solved_pipeline() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solved = rs.solve().unwrap();
        let report = rs.verify(&solved.state, 10).unwrap();
        assert_eq!(report.iterations, 10);
        assert!(report.speedup() >= 1.0);
    }

    #[test]
    fn builder_style_configuration() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(1, 0, false))
            .with_policy(PriorityPolicy::PathHeight)
            .with_config(HeuristicConfig {
                rotations_per_phase: 4,
                max_size: Some(2),
                keep_best: 2,
                rounds: 1,
            });
        let out = rs.heuristic1().unwrap();
        assert_eq!(out.phases.len(), 2);
        assert!(out.best.len() <= 2);
    }

    #[test]
    fn solve_portfolio_matches_solve_on_easy_instances() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solo = rs.solve().unwrap();
        for jobs in [1, 4] {
            let par = rs.clone().with_jobs(jobs).solve_portfolio().unwrap();
            assert_eq!(par.length, solo.length);
            assert!(par.depth <= 2);
        }
    }

    #[test]
    fn manual_rotation_through_the_facade() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let mut st = rs.initial().unwrap();
        let before = st.length(&g);
        rs.down_rotate(&mut st, 1).unwrap();
        assert!(st.length(&g) <= before);
    }
}
