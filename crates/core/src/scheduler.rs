//! The high-level rotation-scheduling API.
//!
//! [`RotationScheduler`] bundles a graph reference, a resource set, a
//! DAG scheduler and a [`HeuristicConfig`], and exposes the whole
//! pipeline — initial schedule, individual rotations, both heuristics,
//! depth minimization, loop expansion, and end-to-end simulation — as
//! methods. It is the type downstream users interact with; the
//! lower-level functions remain available for research code that wants
//! to compose its own heuristics.

use rotsched_baselines::lower_bound;
use rotsched_dfg::Dfg;
use rotsched_sched::{
    simulate, ListScheduler, LoopSchedule, PriorityPolicy, ResourceSet, SimulationReport,
};

use crate::budget::{Budget, StopReason};
use crate::depth::{into_loop_schedule, minimized_depth};
use crate::engine::{IncrementalStep, SearchDriver};
use crate::error::RotationError;
use crate::heuristics::{HeuristicConfig, HeuristicOutcome};
use crate::objective::{Objective, Score};
use crate::portfolio::{Portfolio, PortfolioOutcome};
use crate::rotate::{down_rotate, initial_state, up_rotate, DownRotateOutcome, RotationState};
use crate::trace::{SearchTrace, TraceRecorder};

/// How good a solved pipeline is — the structured verdict carried by
/// every [`SolveOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SolveQuality {
    /// The schedule length equals the proven combined lower bound.
    Optimal,
    /// The search ran to completion without proving optimality (the
    /// bound may simply be unattainable).
    Complete,
    /// A [`Budget`] limit fired; the result is the incumbent best of a
    /// truncated search. Still a legal schedule.
    BudgetExhausted,
    /// At least one portfolio worker panicked; the result is the best of
    /// the surviving workers. Still a legal schedule.
    Degraded,
}

impl core::fmt::Display for SolveQuality {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            SolveQuality::Optimal => "optimal",
            SolveQuality::Complete => "complete",
            SolveQuality::BudgetExhausted => "budget-exhausted",
            SolveQuality::Degraded => "degraded",
        })
    }
}

/// Search-effort accounting carried by every [`SolveOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total down-rotations performed.
    pub total_rotations: usize,
    /// Why the search stopped early, when a budget limit fired.
    pub stopped: Option<StopReason>,
    /// Portfolio workers that panicked (always 0 for single-sweep
    /// solves).
    pub panicked_tasks: usize,
    /// The combined recurrence + resource lower bound of the instance.
    pub lower_bound: u32,
}

/// A solved instance: the best pipeline found plus its key metrics and
/// the structured quality verdict.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The wrapped schedule length (initiation interval).
    pub length: u32,
    /// The best packed score under the solve's [`Objective`]. Under the
    /// default length-only objective this is exactly
    /// `Score::from_length(length)`.
    pub score: Score,
    /// The minimized pipeline depth (the parenthesized numbers in the
    /// paper's tables).
    pub depth: u32,
    /// The winning state (schedule + rotation function).
    pub state: RotationState,
    /// The full heuristic outcome (all best schedules, per-phase stats).
    pub outcome: HeuristicOutcome,
    /// The quality verdict: optimal / complete / budget-exhausted /
    /// degraded.
    pub quality: SolveQuality,
    /// Search-effort accounting.
    pub stats: SolveStats,
}

impl SolveOutcome {
    /// The winning rotation function (how far each node was rotated).
    #[must_use]
    pub fn retiming(&self) -> &rotsched_dfg::Retiming {
        &self.state.retiming
    }

    /// The winning flat schedule (per-node start steps before
    /// wrapping).
    #[must_use]
    pub fn schedule(&self) -> &rotsched_sched::Schedule {
        &self.state.schedule
    }
}

/// The pre-resilience name of [`SolveOutcome`], kept as an alias so
/// existing callers (which read the same fields) keep compiling.
pub type SolvedPipeline = SolveOutcome;

/// One item of a [`RotationScheduler::solve_batch`] run: an owned
/// problem instance plus its solver configuration.
///
/// Defaults mirror [`RotationScheduler::new`]: descendant-count list
/// scheduling, the standard Heuristic-2 sweep, an unlimited budget.
///
/// # Examples
///
/// ```
/// use rotsched_core::{ProblemSpec, RotationScheduler};
/// use rotsched_dfg::{DfgBuilder, OpKind};
/// use rotsched_sched::ResourceSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DfgBuilder::new("ring")
///     .nodes("v", 4, OpKind::Add, 1)
///     .chain(&["v0", "v1", "v2", "v3"])
///     .edge("v3", "v0", 2)
///     .build()?;
/// let batch = vec![
///     ProblemSpec::new(g.clone(), ResourceSet::adders_multipliers(2, 0, false)),
///     ProblemSpec::new(g, ResourceSet::adders_multipliers(1, 0, false)),
/// ];
/// let solved = RotationScheduler::solve_batch(&batch)?;
/// assert_eq!(solved[0].length, 2);
/// assert_eq!(solved[1].length, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProblemSpec {
    /// The loop's data-flow graph.
    pub dfg: Dfg,
    /// The functional units available to it.
    pub resources: ResourceSet,
    /// The list-scheduling priority policy.
    pub policy: PriorityPolicy,
    /// The heuristic configuration.
    pub config: HeuristicConfig,
    /// The solve objective (length-only by default).
    pub objective: Objective,
    /// The solve budget (unlimited by default).
    pub budget: Budget,
}

impl ProblemSpec {
    /// A spec with the default policy, configuration, and budget.
    #[must_use]
    pub fn new(dfg: Dfg, resources: ResourceSet) -> Self {
        ProblemSpec {
            dfg,
            resources,
            policy: PriorityPolicy::default(),
            config: HeuristicConfig::default(),
            objective: Objective::default(),
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the solve objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Replaces the priority policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PriorityPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the heuristic configuration.
    #[must_use]
    pub fn with_config(mut self, config: HeuristicConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the solve budget. Budget-limited items are exempt from
    /// batch deduplication (see [`RotationScheduler::solve_batch`]).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Whether `other` is guaranteed to solve to the same outcome, so a
    /// batch may reuse this spec's result for it. Exact equality of
    /// graph, resources, policy, and configuration — the cheap
    /// [`Dfg::structure_fingerprint`] prefilter happens before this
    /// confirm, so a fingerprint collision costs a comparison, never a
    /// wrong reuse. Budget-limited specs never deduplicate: a deadline
    /// makes the outcome time-dependent.
    #[must_use]
    fn dedup_matches(&self, other: &ProblemSpec) -> bool {
        self.budget.is_unlimited()
            && other.budget.is_unlimited()
            && self.policy == other.policy
            && self.config == other.config
            && self.objective == other.objective
            && self.resources == other.resources
            && self.dfg == other.dfg
    }
}

/// Rotation scheduling, end to end.
///
/// # Examples
///
/// ```
/// use rotsched_core::RotationScheduler;
/// use rotsched_dfg::{DfgBuilder, OpKind};
/// use rotsched_sched::ResourceSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 4-op recurrence with 2 registers: iteration bound 2.
/// let g = DfgBuilder::new("ring")
///     .nodes("v", 4, OpKind::Add, 1)
///     .chain(&["v0", "v1", "v2", "v3"])
///     .edge("v3", "v0", 2)
///     .build()?;
/// let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
/// let solved = rs.solve()?;
/// assert_eq!(solved.length, 2); // pipelined down from the 4-step DAG
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RotationScheduler<'a> {
    dfg: &'a Dfg,
    resources: ResourceSet,
    scheduler: ListScheduler,
    config: HeuristicConfig,
    objective: Objective,
    jobs: usize,
    budget: Budget,
}

impl<'a> RotationScheduler<'a> {
    /// Creates a scheduler for `dfg` under `resources` with the paper's
    /// defaults (descendant-count list scheduling, Heuristic 2 with
    /// phase sizes down from the initial schedule length).
    #[must_use]
    pub fn new(dfg: &'a Dfg, resources: ResourceSet) -> Self {
        RotationScheduler {
            dfg,
            resources,
            scheduler: ListScheduler::default(),
            config: HeuristicConfig::default(),
            objective: Objective::default(),
            jobs: 1,
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the solve objective. The default length-only objective
    /// reproduces the paper's scalar search bit for bit; the
    /// lexicographic objectives break length ties by static register
    /// count (and code size).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the solve budget (deadline, rotation budget, and/or cancel
    /// token; see [`Budget`]) applied by the heuristic and solve entry
    /// points. Unlimited by default — and an unlimited budget leaves
    /// every result bit-identical to a budget-free run.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the list-scheduling priority policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PriorityPolicy) -> Self {
        self.scheduler = ListScheduler::new(policy);
        self
    }

    /// Sets the worker-thread count used by [`RotationScheduler::portfolio`]
    /// and [`RotationScheduler::solve_portfolio`]. The result is
    /// deterministic in this knob; `1` (the default) runs on the
    /// caller's thread.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Replaces the heuristic configuration.
    #[must_use]
    pub fn with_config(mut self, config: HeuristicConfig) -> Self {
        self.config = config;
        self
    }

    /// The resource set in use.
    #[must_use]
    pub fn resources(&self) -> &ResourceSet {
        &self.resources
    }

    /// The initial (unpipelined) list schedule of the DAG — the paper's
    /// `FullSchedule(G)` starting point.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn initial(&self) -> Result<RotationState, RotationError> {
        initial_state(self.dfg, &self.scheduler, &self.resources)
    }

    /// Performs one down-rotation of `size` steps on `state`.
    ///
    /// # Errors
    ///
    /// See [`down_rotate`].
    pub fn down_rotate(
        &self,
        state: &mut RotationState,
        size: u32,
    ) -> Result<DownRotateOutcome, RotationError> {
        down_rotate(self.dfg, &self.scheduler, &self.resources, state, size)
    }

    /// Performs one up-rotation of `size` steps on `state`.
    ///
    /// # Errors
    ///
    /// See [`up_rotate`].
    pub fn up_rotate(
        &self,
        state: &mut RotationState,
        size: u32,
    ) -> Result<DownRotateOutcome, RotationError> {
        up_rotate(self.dfg, &self.scheduler, &self.resources, state, size)
    }

    /// Runs Heuristic 1 (independent phases).
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic1(&self) -> Result<HeuristicOutcome, RotationError> {
        let meter = (!self.budget.is_unlimited()).then(|| self.budget.arm());
        SearchDriver::incremental(self.dfg, &self.scheduler, &self.resources)
            .with_objective(self.objective)
            .with_budget(meter.as_ref())
            .heuristic1(&self.config)
    }

    /// Runs Heuristic 2 (chained phases of decreasing size) — the
    /// heuristic behind the paper's reported results.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic2(&self) -> Result<HeuristicOutcome, RotationError> {
        let meter = (!self.budget.is_unlimited()).then(|| self.budget.arm());
        SearchDriver::incremental(self.dfg, &self.scheduler, &self.resources)
            .with_objective(self.objective)
            .with_budget(meter.as_ref())
            .heuristic2(&self.config)
    }

    /// Runs Heuristic 2 and packages the best schedule with its
    /// minimized pipeline depth and quality verdict.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures;
    /// [`RotationError::Unrealizable`] cannot occur for states produced
    /// by rotation.
    pub fn solve(&self) -> Result<SolveOutcome, RotationError> {
        let outcome = self.heuristic2()?;
        self.package_heuristic(outcome)
    }

    /// Like [`RotationScheduler::solve`], but records the search's
    /// driver events into a [`TraceRecorder`] keeping at most
    /// `capacity` raw events, and returns the finished [`SearchTrace`]
    /// alongside the outcome. Tracing never steers the search: the
    /// outcome is bit-identical to [`RotationScheduler::solve`]'s
    /// (enforced by the `trace_determinism` suite).
    ///
    /// # Errors
    ///
    /// Exactly [`RotationScheduler::solve`]'s errors.
    pub fn solve_traced(
        &self,
        capacity: usize,
    ) -> Result<(SolveOutcome, SearchTrace), RotationError> {
        let meter = (!self.budget.is_unlimited()).then(|| self.budget.arm());
        let mut driver = SearchDriver::incremental(self.dfg, &self.scheduler, &self.resources)
            .with_objective(self.objective)
            .with_budget(meter.as_ref())
            .with_observer(TraceRecorder::new(capacity));
        let outcome = driver.heuristic2(&self.config)?;
        let trace = SearchTrace::single(driver.observer.finish());
        Ok((self.package_heuristic(outcome)?, trace))
    }

    fn package_heuristic(&self, outcome: HeuristicOutcome) -> Result<SolveOutcome, RotationError> {
        let bound = u32::try_from(lower_bound(self.dfg, &self.resources)?).unwrap_or(u32::MAX - 1);
        let state = outcome
            .best
            .first()
            .cloned()
            .expect("heuristics always retain at least the initial schedule");
        let depth = minimized_depth(self.dfg, &state)?;
        let quality = if outcome.stopped.is_some() {
            SolveQuality::BudgetExhausted
        } else if outcome.best_length <= bound {
            SolveQuality::Optimal
        } else {
            SolveQuality::Complete
        };
        let stats = SolveStats {
            total_rotations: outcome.total_rotations,
            stopped: outcome.stopped,
            panicked_tasks: 0,
            lower_bound: bound,
        };
        self.debug_certify(&outcome.best, quality);
        Ok(SolveOutcome {
            length: outcome.best_length,
            score: outcome.best_score,
            depth,
            state,
            outcome,
            quality,
            stats,
        })
    }

    /// Solves a whole batch of problem instances, amortizing per-item
    /// setup that [`RotationScheduler::solve`] pays every call:
    ///
    /// * **one list scheduler per distinct policy** — the priority-weight
    ///   memo is keyed by graph fingerprint, so items share warm entries
    ///   safely;
    /// * **one [`IncrementalStep`] for the whole batch** — its
    ///   [arena](crate::arena) pools keep scratch capacity warm from
    ///   item to item (only the first item grows the buffers);
    /// * **request deduplication** — items whose graph fingerprint and
    ///   exact spec match an earlier unlimited-budget item reuse its
    ///   outcome instead of re-solving.
    ///
    /// Every outcome is byte-identical to what a per-item
    /// `RotationScheduler::new(&spec.dfg, spec.resources)` configured
    /// the same way would return from [`RotationScheduler::solve`]
    /// (enforced by the `seeded_batch` suite); caches and pools never
    /// steer decisions.
    ///
    /// # Errors
    ///
    /// The first item that fails aborts the batch with its error (a
    /// batch of valid specs cannot fail partway).
    pub fn solve_batch(specs: &[ProblemSpec]) -> Result<Vec<SolveOutcome>, RotationError> {
        let mut schedulers: Vec<(PriorityPolicy, ListScheduler)> = Vec::new();
        // `(graph fingerprint, spec index)` of every solved representative.
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let mut step = IncrementalStep::default();
        let mut outcomes: Vec<SolveOutcome> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let fingerprint = spec.dfg.structure_fingerprint();
            if let Some(&(_, j)) = seen
                .iter()
                .find(|&&(f, j)| f == fingerprint && spec.dedup_matches(&specs[j]))
            {
                let reused = outcomes[j].clone();
                outcomes.push(reused);
                continue;
            }
            let scheduler = match schedulers.iter().position(|(p, _)| *p == spec.policy) {
                Some(k) => k,
                None => {
                    schedulers.push((spec.policy, ListScheduler::new(spec.policy)));
                    schedulers.len() - 1
                }
            };
            let scheduler = &schedulers[scheduler].1;
            let meter = (!spec.budget.is_unlimited()).then(|| spec.budget.arm());
            let mut driver =
                SearchDriver::incremental_with_step(&spec.dfg, scheduler, &spec.resources, step)
                    .with_objective(spec.objective)
                    .with_budget(meter.as_ref());
            let outcome = driver.heuristic2(&spec.config)?;
            step = driver.into_step();
            let facade = RotationScheduler {
                dfg: &spec.dfg,
                resources: spec.resources.clone(),
                scheduler: scheduler.clone(),
                config: spec.config,
                objective: spec.objective,
                jobs: 1,
                budget: spec.budget.clone(),
            };
            outcomes.push(facade.package_heuristic(outcome)?);
            seen.push((fingerprint, i));
        }
        Ok(outcomes)
    }

    /// Runs the standard search portfolio (Heuristic 1's phases plus a
    /// Heuristic-2 sweep per priority policy) on the configured number
    /// of worker threads, with lower-bound-based pruning. The outcome
    /// is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn portfolio(&self) -> Result<PortfolioOutcome, RotationError> {
        Portfolio::standard(self.dfg, &self.resources, &self.config)?
            .with_objective(self.objective)
            .with_jobs(self.jobs)
            .with_budget(self.budget.clone())
            .run(self.dfg, &self.resources)
    }

    /// Like [`RotationScheduler::solve`], but searches with the full
    /// parallel portfolio instead of a single Heuristic-2 sweep. Never
    /// worse than `solve()` on the same configuration, and
    /// deterministic in the thread count.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn solve_portfolio(&self) -> Result<SolveOutcome, RotationError> {
        let outcome = self.portfolio()?;
        self.package_portfolio(outcome)
    }

    /// Like [`RotationScheduler::solve_portfolio`], but traced: every
    /// worker records its driver events, and the returned
    /// [`SearchTrace`] keeps the deterministic task prefix (see
    /// [`Portfolio::run_traced`] for the worker interleave ordering
    /// rule). Both the outcome and the trace are identical for every
    /// `--jobs` value.
    ///
    /// # Errors
    ///
    /// Exactly [`RotationScheduler::solve_portfolio`]'s errors.
    pub fn solve_portfolio_traced(
        &self,
        capacity: usize,
    ) -> Result<(SolveOutcome, SearchTrace), RotationError> {
        let (outcome, trace) = Portfolio::standard(self.dfg, &self.resources, &self.config)?
            .with_objective(self.objective)
            .with_jobs(self.jobs)
            .with_budget(self.budget.clone())
            .run_traced(self.dfg, &self.resources, capacity)?;
        Ok((self.package_portfolio(outcome)?, trace))
    }

    /// Like [`RotationScheduler::solve_portfolio`], but runs a
    /// caller-supplied [`Portfolio`] (custom task list, jobs, budget)
    /// instead of the standard one. This is the hook behind the
    /// panic-injection tests: a portfolio containing a crashing task
    /// packages into a [`SolveQuality::Degraded`] outcome here.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures, and
    /// [`RotationError::WorkerPanicked`] when every task panicked.
    pub fn solve_with_portfolio(
        &self,
        portfolio: &Portfolio,
    ) -> Result<SolveOutcome, RotationError> {
        let outcome = portfolio.run(self.dfg, &self.resources)?;
        self.package_portfolio(outcome)
    }

    fn package_portfolio(&self, outcome: PortfolioOutcome) -> Result<SolveOutcome, RotationError> {
        let state = outcome
            .best
            .first()
            .cloned()
            .expect("the portfolio always retains at least the initial schedule");
        let depth = minimized_depth(self.dfg, &state)?;
        let quality = if outcome.panicked_tasks > 0 {
            SolveQuality::Degraded
        } else if outcome.stopped.is_some() {
            SolveQuality::BudgetExhausted
        } else if outcome.bound_achieved {
            SolveQuality::Optimal
        } else {
            SolveQuality::Complete
        };
        let stats = SolveStats {
            total_rotations: outcome.total_rotations,
            stopped: outcome.stopped,
            panicked_tasks: outcome.panicked_tasks,
            lower_bound: outcome.lower_bound,
        };
        self.debug_certify(&outcome.best, quality);
        Ok(SolveOutcome {
            length: outcome.best_length,
            score: outcome.best_score,
            depth,
            state,
            outcome: HeuristicOutcome {
                best_length: outcome.best_length,
                best_score: outcome.best_score,
                best: outcome.best,
                total_rotations: outcome.total_rotations,
                phases: outcome.phases,
                stopped: outcome.stopped,
            },
            quality,
            stats,
        })
    }

    /// Debug-build safety net: every incumbent a solve is about to hand
    /// back is re-checked by the independent certifier
    /// (`rotsched-verify` shares no scheduling code with this crate).
    /// A failure here is always a scheduler bug, never a bad input, so
    /// it asserts rather than returning an error. Compiled to a no-op
    /// in release builds.
    fn debug_certify(&self, incumbents: &[RotationState], quality: SolveQuality) {
        if !cfg!(debug_assertions) {
            return;
        }
        let spec = rotsched_sched::verify_spec(&self.resources);
        for state in incumbents {
            let ls = self
                .loop_schedule(state)
                .expect("accepted incumbents must expand into loop schedules");
            let starts = rotsched_sched::verify_starts(self.dfg, ls.schedule());
            let claim = rotsched_verify::Claim {
                kernel_length: ls.kernel_length(),
                depth: Some(ls.retiming().depth()),
                optimal: matches!(quality, SolveQuality::Optimal),
                registers: Some(crate::objective::static_registers(self.dfg, ls.retiming())),
                code_size: Some(crate::objective::code_size(self.dfg, ls.retiming())),
            };
            if let Err(bad) = rotsched_verify::certify_claim(
                self.dfg,
                &spec,
                Some(ls.retiming()),
                &starts,
                &claim,
            ) {
                let report: Vec<String> = bad.iter().map(|d| d.render_text(self.dfg)).collect();
                panic!(
                    "scheduler produced an uncertifiable incumbent for `{}`:\n{}",
                    self.dfg.name(),
                    report.join("\n")
                );
            }
        }
    }

    /// Expands a state into an executable [`LoopSchedule`] (wrapped
    /// kernel + shallow retiming).
    ///
    /// # Errors
    ///
    /// See [`into_loop_schedule`].
    pub fn loop_schedule(&self, state: &RotationState) -> Result<LoopSchedule, RotationError> {
        into_loop_schedule(self.dfg, &self.resources, state)
    }

    /// Simulates a state end-to-end for `iterations` iterations,
    /// verifying operand availability, resource limits, and functional
    /// equivalence with sequential execution.
    ///
    /// # Errors
    ///
    /// Returns the first simulation violation; a passing run certifies
    /// the pipeline.
    pub fn verify(
        &self,
        state: &RotationState,
        iterations: u32,
    ) -> Result<SimulationReport, RotationError> {
        let ls = self.loop_schedule(state)?;
        Ok(simulate(self.dfg, &ls, &self.resources, iterations)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring() -> Dfg {
        DfgBuilder::new("ring")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn solve_finds_the_iteration_bound() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solved = rs.solve().unwrap();
        assert_eq!(solved.length, 2);
        assert!(solved.depth <= 2);
    }

    #[test]
    fn verify_passes_on_the_solved_pipeline() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solved = rs.solve().unwrap();
        let report = rs.verify(&solved.state, 10).unwrap();
        assert_eq!(report.iterations, 10);
        assert!(report.speedup() >= 1.0);
    }

    #[test]
    fn builder_style_configuration() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(1, 0, false))
            .with_policy(PriorityPolicy::PathHeight)
            .with_config(HeuristicConfig {
                rotations_per_phase: 4,
                max_size: Some(2),
                keep_best: 2,
                rounds: 1,
            });
        let out = rs.heuristic1().unwrap();
        assert_eq!(out.phases.len(), 2);
        assert!(out.best.len() <= 2);
    }

    #[test]
    fn solve_portfolio_matches_solve_on_easy_instances() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solo = rs.solve().unwrap();
        for jobs in [1, 4] {
            let par = rs.clone().with_jobs(jobs).solve_portfolio().unwrap();
            assert_eq!(par.length, solo.length);
            assert!(par.depth <= 2);
        }
    }

    #[test]
    fn solve_reports_optimal_quality_at_the_bound() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let solved = rs.solve().unwrap();
        assert_eq!(solved.quality, SolveQuality::Optimal);
        assert_eq!(solved.stats.lower_bound, 2);
        assert_eq!(solved.stats.stopped, None);
        assert_eq!(solved.stats.panicked_tasks, 0);
    }

    #[test]
    fn exhausted_budget_is_reported_and_still_yields_a_pipeline() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false))
            .with_budget(Budget::default().with_max_rotations(0));
        let solved = rs.solve().unwrap();
        assert_eq!(solved.quality, SolveQuality::BudgetExhausted);
        assert_eq!(solved.stats.total_rotations, 0);
        assert_eq!(solved.length, 4, "incumbent is the initial schedule");
        // The incumbent is executable end to end.
        let report = rs.verify(&solved.state, 5).unwrap();
        assert_eq!(report.iterations, 5);
    }

    #[test]
    fn injected_worker_panic_degrades_the_portfolio_solve() {
        use crate::portfolio::SearchTask;
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let mut p = Portfolio::standard(&g, rs.resources(), &HeuristicConfig::default()).unwrap();
        p.tasks.insert(0, SearchTask::PanicForTest);
        for jobs in [1, 3] {
            let solved = rs.solve_with_portfolio(&p.clone().with_jobs(jobs)).unwrap();
            assert_eq!(solved.quality, SolveQuality::Degraded, "jobs={jobs}");
            assert_eq!(solved.stats.panicked_tasks, 1);
            assert_eq!(solved.length, 2, "survivors still find the optimum");
        }
    }

    #[test]
    fn unlimited_budget_solve_matches_the_default_solve() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let plain = rs.solve().unwrap();
        let budgeted = rs.clone().with_budget(Budget::unlimited()).solve().unwrap();
        assert_eq!(plain.length, budgeted.length);
        assert_eq!(plain.state, budgeted.state);
        assert_eq!(plain.quality, budgeted.quality);
        assert_eq!(plain.outcome.phases, budgeted.outcome.phases);
    }

    #[test]
    fn manual_rotation_through_the_facade() {
        let g = ring();
        let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
        let mut st = rs.initial().unwrap();
        let before = st.length(&g);
        rs.down_rotate(&mut st, 1).unwrap();
        assert!(st.length(&g) <= before);
    }
}
