//! The pluggable objective core: packed lexicographic [`Score`]s and
//! the [`Objective`] that produces them.
//!
//! The paper's search minimizes one scalar — the wrapped kernel length.
//! This module generalizes that scalar to a *lexicographic* objective
//! without giving up any of the machinery built on scalar comparison:
//! a [`Score`] packs up to three criteria into a single totally-ordered
//! `u64`, so [`BestSet`](crate::BestSet) admission stays one integer
//! compare, the portfolio's [`SharedBound`](crate::SharedBound) stays a
//! single lock-free `fetch_min`, and the canonical-merge determinism
//! argument carries over byte for byte.
//!
//! ## Packing layout
//!
//! ```text
//! bit 63                    32 31        16 15         0
//!     +-----------------------+------------+------------+
//!     |   kernel length (u32) | registers  | code size  |
//!     +-----------------------+------------+------------+
//!                               saturated     saturated
//!                               at 0xFFFF     at 0xFFFF
//! ```
//!
//! The length occupies the full high 32 bits, so for the default
//! length-only objective (all secondary fields zero) comparing packed
//! scores is *exactly* comparing lengths — the pre-refactor `u32`
//! semantics, bit for bit. Secondary components saturate at `0xFFFF`:
//! saturation keeps ordering monotone (a larger true value never packs
//! below a smaller one) and can never wrap into a neighboring field.
//!
//! ## The criteria
//!
//! * **Length** — the wrapped kernel length (Section 4 of the paper),
//!   always the primary criterion.
//! * **Static registers** — `Σ_e max(d_r(e), 0)` over all edges, the
//!   exact rule of the verifier's register-pressure pass
//!   (`verify::analysis::pressure`, finding `A003`): every retimed
//!   delay is a value crossing an iteration boundary.
//! * **Code size** — the prologue + epilogue op count of the pipeline
//!   expansion: node `v` appears `R(v)` times in the prologue and
//!   `max R − R(v)` times in the epilogue, so the total is
//!   `|V| · (depth − 1)` with `depth = 1 + max R − min R`.

use rotsched_dfg::{Dfg, Retiming};

/// A packed, totally-ordered solution score: smaller is better.
///
/// See the [module docs](self) for the bit layout. The ordering is the
/// plain integer ordering of the packed `u64`, which realizes the
/// lexicographic order (length, registers, code size).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Score(u64);

impl Score {
    /// The "no solution yet" sentinel: worse than every real score.
    ///
    /// This is the packed all-ones word — the successor of the old
    /// `u32::MAX` length sentinel. Real solves never reach it: the
    /// length field of a genuine kernel is far below `u32::MAX`, so
    /// even with both secondary fields saturated a real score compares
    /// strictly below `NONE`.
    pub const NONE: Score = Score(u64::MAX);

    /// Each secondary component saturates at 16 bits.
    const FIELD_MAX: u64 = 0xFFFF;

    /// A length-only score: the length in the high 32 bits, zero
    /// secondaries. Comparing two such scores is exactly comparing the
    /// lengths as `u32`s — the pre-refactor scalar semantics.
    #[must_use = "constructing a score has no effect unless it is offered or compared"]
    pub const fn from_length(length: u32) -> Score {
        Score((length as u64) << 32)
    }

    /// Packs a full lexicographic score. `registers` and `code_size`
    /// saturate at `0xFFFF`; saturation is monotone (never inverts an
    /// ordering) and can never wrap into the length field.
    #[must_use = "constructing a score has no effect unless it is offered or compared"]
    pub const fn new(length: u32, registers: u64, code_size: u64) -> Score {
        let regs = if registers > Self::FIELD_MAX {
            Self::FIELD_MAX
        } else {
            registers
        };
        let code = if code_size > Self::FIELD_MAX {
            Self::FIELD_MAX
        } else {
            code_size
        };
        Score(((length as u64) << 32) | (regs << 16) | code)
    }

    /// The primary criterion: the wrapped kernel length.
    #[must_use]
    pub const fn length(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The packed static-register component (saturated at `0xFFFF`).
    #[must_use]
    pub const fn registers(self) -> u32 {
        ((self.0 >> 16) & Self::FIELD_MAX) as u32
    }

    /// The packed code-size component (saturated at `0xFFFF`).
    #[must_use]
    pub const fn code_size(self) -> u32 {
        (self.0 & Self::FIELD_MAX) as u32
    }

    /// True for the [`Score::NONE`] sentinel.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.0 == u64::MAX
    }

    /// The raw packed word — the value the portfolio's shared atomic
    /// carries through `fetch_min`.
    #[must_use]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a score from its packed word (inverse of
    /// [`Score::to_bits`]).
    #[must_use]
    pub const fn from_bits(bits: u64) -> Score {
        Score(bits)
    }
}

impl std::fmt::Display for Score {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        write!(
            f,
            "{}/{}/{}",
            self.length(),
            self.registers(),
            self.code_size()
        )
    }
}

/// Which criteria the search minimizes, in lexicographic order.
///
/// The default is the paper's single scalar — kernel length — and with
/// it every score the engine produces is [`Score::from_length`], so the
/// whole pipeline behaves bit-identically to the pre-refactor scalar
/// path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize the wrapped kernel length only (the paper's objective).
    #[default]
    Length,
    /// Minimize length, then static registers (`Σ_e max(d_r, 0)`).
    LengthRegs,
    /// Minimize length, then static registers, then prologue+epilogue
    /// code size.
    LengthRegsCode,
}

impl Objective {
    /// Every objective, in the fixed sweep order used by `--pareto`.
    pub const ALL: [Objective; 3] = [
        Objective::Length,
        Objective::LengthRegs,
        Objective::LengthRegsCode,
    ];

    /// The stable mnemonic used by the CLI (`--objective=`) and the
    /// wire protocol (`objective` directive).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Objective::Length => "length",
            Objective::LengthRegs => "length,regs",
            Objective::LengthRegsCode => "length,regs,code",
        }
    }

    /// Parses a mnemonic produced by [`Objective::mnemonic`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Objective> {
        Objective::ALL.into_iter().find(|o| o.mnemonic() == text)
    }

    /// Scores a rotation state whose wrapped kernel length is already
    /// known. For [`Objective::Length`] this touches nothing but the
    /// length — the hot path stays as cheap as the scalar it replaces;
    /// the multi-criteria arms walk the edges once (`O(E)`).
    #[must_use]
    pub fn score(self, dfg: &Dfg, retiming: &Retiming, wrapped_length: u32) -> Score {
        match self {
            Objective::Length => Score::from_length(wrapped_length),
            Objective::LengthRegs => Score::new(wrapped_length, static_registers(dfg, retiming), 0),
            Objective::LengthRegsCode => Score::new(
                wrapped_length,
                static_registers(dfg, retiming),
                code_size(dfg, retiming),
            ),
        }
    }
}

/// `Σ_e max(d_r(e), 0)` — the static register count, matching the
/// verifier's pressure pass (`A003`) exactly.
#[must_use]
pub fn static_registers(dfg: &Dfg, retiming: &Retiming) -> u64 {
    dfg.edge_ids()
        .map(|e| retiming.retimed_delay(dfg, e).max(0) as u64)
        .sum()
}

/// The prologue + epilogue op count of the pipeline expansion:
/// `|V| · (depth − 1)`.
#[must_use]
pub fn code_size(dfg: &Dfg, retiming: &Retiming) -> u64 {
    if dfg.node_count() == 0 || retiming.is_empty() {
        return 0;
    }
    (dfg.node_count() as u64) * u64::from(retiming.depth() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{Dfg, OpKind};

    fn iir() -> Dfg {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        g
    }

    #[test]
    fn length_only_score_orders_exactly_like_u32() {
        for (a, b) in [(0_u32, 1), (3, 4), (7, 7), (1000, 999)] {
            assert_eq!(Score::from_length(a).cmp(&Score::from_length(b)), a.cmp(&b));
        }
    }

    #[test]
    fn lexicographic_order_breaks_ties_by_later_fields() {
        // Shorter length dominates regardless of secondaries.
        assert!(Score::new(3, 1000, 1000) < Score::new(4, 0, 0));
        // Equal length: fewer registers wins.
        assert!(Score::new(4, 2, 100) < Score::new(4, 3, 0));
        // Equal length and registers: smaller code wins.
        assert!(Score::new(4, 2, 5) < Score::new(4, 2, 6));
    }

    #[test]
    fn none_is_worse_than_every_real_score() {
        assert!(Score::new(u32::MAX - 1, u64::MAX, u64::MAX) < Score::NONE);
        assert!(Score::from_length(u32::MAX - 1) < Score::NONE);
        assert!(Score::NONE.is_none());
        assert!(!Score::new(0, 0, 0).is_none());
    }

    // ---- the saturating-arithmetic audit (mirrors `bound.rs`) ----

    #[test]
    fn near_overflow_components_saturate_instead_of_wrapping() {
        // A register count past 16 bits must clamp to the field max,
        // never spill into the length bits above it.
        let s = Score::new(7, u64::MAX, u64::MAX);
        assert_eq!(s.length(), 7);
        assert_eq!(s.registers(), 0xFFFF);
        assert_eq!(s.code_size(), 0xFFFF);
    }

    #[test]
    fn near_overflow_components_still_order_correctly() {
        // Ordering across the saturation boundary stays monotone: a
        // saturated score is never *below* an unsaturated one with
        // smaller true components.
        assert!(Score::new(5, 0xFFFE, 0) < Score::new(5, 0xFFFF, 0));
        assert!(Score::new(5, 0xFFFF, 0) <= Score::new(5, u64::MAX, 0));
        assert!(Score::new(5, 0, 0xFFFE) < Score::new(5, 0, u64::MAX));
        // Two past-saturation values collapse to equal — monotone,
        // never inverted.
        assert_eq!(Score::new(5, 1 << 20, 0), Score::new(5, 1 << 30, 0));
    }

    #[test]
    fn near_overflow_lengths_never_wrap() {
        // The full u32 length range packs losslessly.
        let near = Score::from_length(u32::MAX - 1);
        let max = Score::from_length(u32::MAX);
        assert_eq!(near.length(), u32::MAX - 1);
        assert_eq!(max.length(), u32::MAX);
        assert!(near < max);
        // Even the all-saturated near-MAX score stays below the
        // MAX-length floor and below NONE.
        assert!(Score::new(u32::MAX - 1, u64::MAX, u64::MAX) < max);
        assert!(max < Score::NONE);
    }

    #[test]
    fn bits_round_trip() {
        for s in [
            Score::NONE,
            Score::from_length(0),
            Score::from_length(u32::MAX),
            Score::new(42, 17, 99),
            Score::new(9, u64::MAX, 3),
        ] {
            assert_eq!(Score::from_bits(s.to_bits()), s);
        }
    }

    #[test]
    fn mnemonics_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::parse(o.mnemonic()), Some(o));
        }
        assert_eq!(Objective::parse("regs"), None);
        assert_eq!(Objective::parse(""), None);
        assert_eq!(Objective::default(), Objective::Length);
    }

    #[test]
    fn length_objective_scores_are_pure_lengths() {
        let g = iir();
        let r = rotsched_dfg::Retiming::zero(&g);
        assert_eq!(Objective::Length.score(&g, &r, 6), Score::from_length(6));
    }

    #[test]
    fn register_component_matches_the_pressure_rule() {
        let g = iir();
        let r = rotsched_dfg::Retiming::zero(&g);
        // One edge with delay 1 -> one static register.
        assert_eq!(static_registers(&g, &r), 1);
        let s = Objective::LengthRegs.score(&g, &r, 6);
        assert_eq!((s.length(), s.registers(), s.code_size()), (6, 1, 0));
    }

    #[test]
    fn code_size_counts_prologue_and_epilogue_ops() {
        let g = iir();
        let mut r = rotsched_dfg::Retiming::zero(&g);
        // Depth-1 pipeline: no prologue or epilogue at all.
        assert_eq!(code_size(&g, &r), 0);
        // Rotate m once: depth 2, each of the 2 nodes appears once
        // outside the kernel.
        r.set(g.node_by_name("m").unwrap(), 1);
        assert_eq!(code_size(&g, &r), 2);
        let s = Objective::LengthRegsCode.score(&g, &r, 6);
        assert_eq!(s.code_size(), 2);
    }
}
