//! Pipeline-depth minimization (Subsection 3.2) and the bridge from a
//! rotation state to an executable [`LoopSchedule`].
//!
//! A long rotation sequence can accumulate a rotation function `R` with
//! a large spread even though the schedule it realizes admits a much
//! shallower pipeline (Figure 5: depth 4 reduced to 2). Theorem 2 turns
//! "find a retiming realizing `s`" into a system of difference
//! constraints — the LP dual of single-source shortest paths — and
//! Lemma 3 reads the retiming off the distances. The implementation
//! lives in [`rotsched_sched::validate::realizing_retiming`]; this
//! module packages it for rotation states and produces prologue/kernel/
//! epilogue expansions.

use rotsched_dfg::{Dfg, Retiming};
use rotsched_sched::{minimal_wrap, LoopSchedule, ResourceSet, Schedule};

use crate::error::RotationError;
use crate::rotate::RotationState;

/// Finds the shallow-depth retiming realizing `schedule` (Theorem 2 +
/// Lemma 3), replacing whatever rotation function produced it.
///
/// # Errors
///
/// Returns [`RotationError::Unrealizable`] when no retiming realizes the
/// schedule — impossible for schedules produced by rotation.
pub fn minimize_depth(dfg: &Dfg, schedule: &Schedule) -> Result<Retiming, RotationError> {
    rotsched_sched::validate::realizing_retiming(dfg, schedule).ok_or(RotationError::Unrealizable)
}

/// Converts a rotation state into an executable [`LoopSchedule`]:
///
/// 1. wrap multi-cycle tails minimally (Section 4) to get the kernel
///    length;
/// 2. re-derive the realizing retiming of minimum spread from the
///    wrapped kernel (Section 3.2) — this usually has a much smaller
///    depth than the accumulated rotation function;
/// 3. bundle kernel and retiming for expansion and simulation.
///
/// The Theorem 2 LP only enforces `d_r ≥ 1` for chained-violating edges,
/// which is *weaker* than the wrap condition when a producer's tail
/// crosses the kernel boundary (`s(v) + L ≥ s(u) + t(u)` must hold for
/// its one-delay consumers). When the minimized retiming fails that
/// stronger check, the accumulated rotation function — under which the
/// wrap was validated — is used instead.
///
/// # Errors
///
/// Propagates wrap failures and [`RotationError::Unrealizable`].
pub fn into_loop_schedule(
    dfg: &Dfg,
    resources: &ResourceSet,
    state: &RotationState,
) -> Result<LoopSchedule, RotationError> {
    let wrapped = minimal_wrap(dfg, Some(&state.retiming), &state.schedule, resources)?;
    let minimized = minimize_depth(dfg, &wrapped.schedule)?;
    let retiming = if rotsched_sched::wrap_to_length(
        dfg,
        Some(&minimized),
        &wrapped.schedule,
        resources,
        wrapped.kernel_length,
    )
    .is_ok()
    {
        minimized
    } else {
        state.retiming.to_normalized()
    };
    Ok(LoopSchedule::new(
        wrapped.kernel_length,
        wrapped.schedule,
        retiming,
    ))
}

/// The pipeline depth of the state's accumulated rotation function
/// (before minimization) — Property 2.
#[must_use]
pub fn accumulated_depth(state: &RotationState) -> u32 {
    state.retiming.depth()
}

/// The pipeline depth after depth minimization, i.e. the depth reported
/// in the paper's tables (the parenthesized numbers).
///
/// # Errors
///
/// Returns [`RotationError::Unrealizable`] when the schedule is not a
/// static schedule of `G`.
pub fn minimized_depth(dfg: &Dfg, state: &RotationState) -> Result<u32, RotationError> {
    Ok(minimize_depth(dfg, &state.schedule)?.depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotate::{down_rotate, initial_state};
    use rotsched_dfg::{DfgBuilder, OpKind};
    use rotsched_sched::{simulate, ListScheduler};

    fn ring(n: usize, delays: u32) -> Dfg {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        DfgBuilder::new("ring")
            .nodes("v", n, OpKind::Add, 1)
            .chain(&refs)
            .edge(&format!("v{}", n - 1), "v0", delays)
            .build()
            .unwrap()
    }

    #[test]
    fn many_rotations_accumulate_depth_but_minimization_collapses_it() {
        let g = ring(4, 2);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        // Rotate many times: R keeps growing.
        for _ in 0..8 {
            if st.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        }
        let accumulated = accumulated_depth(&st);
        let minimized = minimized_depth(&g, &st).unwrap();
        assert!(minimized <= accumulated);
        assert!(
            minimized <= 3,
            "a 2-delay ring pipeline needs at most 3 stages, got {minimized}"
        );
        assert!(accumulated >= minimized);
    }

    #[test]
    fn minimized_retiming_realizes_the_same_schedule() {
        let g = ring(4, 2);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        for _ in 0..5 {
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        }
        let r = minimize_depth(&g, &st.schedule).unwrap();
        rotsched_sched::validate::check_dag_schedule(&g, Some(&r), &st.schedule, &res).unwrap();
    }

    #[test]
    fn loop_schedule_simulates_correctly_end_to_end() {
        let g = ring(4, 2);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        for _ in 0..4 {
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        }
        let ls = into_loop_schedule(&g, &res, &st).unwrap();
        let report = simulate(&g, &ls, &res, 12).unwrap();
        assert_eq!(report.executions, 4 * 12);
        // The pipelined makespan beats running the 4-step critical path
        // 12 times.
        assert!(report.makespan < 4 * 12);
    }

    #[test]
    fn unrotated_state_has_depth_one() {
        let g = ring(3, 1);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let st = initial_state(&g, &sched, &res).unwrap();
        assert_eq!(accumulated_depth(&st), 1);
        assert_eq!(minimized_depth(&g, &st).unwrap(), 1);
    }
}
