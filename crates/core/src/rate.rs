//! The unfolding front end: rate-optimal scheduling beyond the integer
//! iteration bound.
//!
//! Section 7: "The unfolding of loops is considered in the front end of
//! our system to generate a data-flow graph with high execution rate
//! [3, 2], where the size of repeating pattern can be controlled."
//!
//! A loop with a *fractional* maximum cycle ratio (say 3/2) can never
//! have a 1.5-step kernel — static schedules have integer length, so a
//! single-iteration kernel is stuck at `⌈3/2⌉ = 2` steps per iteration.
//! Unfolding by `f` multiplies the cycle ratio by exactly `f`
//! (a property tested in `rotsched-dfg`), so unfolding by the ratio's
//! denominator makes the bound integral: rotation scheduling on the
//! unfolded graph then reaches `f · T/D` steps per `f` iterations —
//! `T/D` per original iteration, the true rate optimum.

use rotsched_dfg::analysis::{max_cycle_ratio, Ratio};
use rotsched_dfg::unfold::unfold;
use rotsched_dfg::Dfg;
use rotsched_sched::ResourceSet;

use crate::error::RotationError;
use crate::heuristics::HeuristicConfig;
use crate::scheduler::RotationScheduler;

/// Result of unfold-then-rotate at one unfolding factor.
#[derive(Clone, Debug)]
pub struct RateResult {
    /// The unfolding factor used.
    pub factor: u32,
    /// Kernel length of the unfolded loop (covers `factor` original
    /// iterations).
    pub kernel_length: u32,
    /// Control steps per **original** iteration.
    pub per_iteration: f64,
    /// Pipeline depth of the unfolded kernel.
    pub depth: u32,
}

/// Rotation-schedules the loop unfolded by `factor`.
///
/// # Errors
///
/// Propagates graph and scheduling failures.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn unfold_and_rotate(
    dfg: &Dfg,
    resources: &ResourceSet,
    config: &HeuristicConfig,
    factor: u32,
) -> Result<RateResult, RotationError> {
    assert!(factor >= 1, "unfolding factor must be at least 1");
    let unfolded = unfold(dfg, factor)?;
    let solved = RotationScheduler::new(&unfolded.graph, resources.clone())
        .with_config(*config)
        .solve()?;
    Ok(RateResult {
        factor,
        kernel_length: solved.length,
        per_iteration: f64::from(solved.length) / f64::from(factor),
        depth: solved.depth,
    })
}

/// Picks the unfolding factor that makes the iteration bound integral
/// (the denominator of the max cycle ratio, capped at `max_factor`) and
/// rotation-schedules at that factor.
///
/// For loops whose ratio is already integral this is plain rotation
/// scheduling (`factor = 1`).
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn rate_optimal(
    dfg: &Dfg,
    resources: &ResourceSet,
    config: &HeuristicConfig,
    max_factor: u32,
) -> Result<RateResult, RotationError> {
    let factor = match max_cycle_ratio(dfg)? {
        Some(ratio) => u32::try_from(ratio.den())
            .unwrap_or(1)
            .min(max_factor.max(1)),
        None => 1,
    };
    unfold_and_rotate(dfg, resources, config, factor)
}

/// The exact rational rate bound `T/D` of the loop (steps per iteration
/// achievable in the limit of unbounded unfolding and resources), or
/// `None` for acyclic loops.
///
/// # Errors
///
/// Returns graph errors for invalid inputs.
pub fn rate_bound(dfg: &Dfg) -> Result<Option<Ratio>, RotationError> {
    Ok(max_cycle_ratio(dfg)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    /// Three unit ops around two registers: max cycle ratio 3/2 — the
    /// canonical fractional-rate loop.
    fn fractional_ring() -> Dfg {
        DfgBuilder::new("frac")
            .nodes("v", 3, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2"])
            .edge("v2", "v0", 2)
            .build()
            .unwrap()
    }

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 4,
            rounds: 2,
        }
    }

    #[test]
    fn rate_bound_is_exact() {
        let g = fractional_ring();
        let b = rate_bound(&g).unwrap().unwrap();
        assert_eq!((b.num(), b.den()), (3, 2));
    }

    #[test]
    fn plain_rotation_is_stuck_at_the_integer_bound() {
        let g = fractional_ring();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let r = unfold_and_rotate(&g, &res, &config(), 1).unwrap();
        assert_eq!(r.kernel_length, 2);
        assert!((r.per_iteration - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unfolding_by_the_denominator_reaches_the_true_rate() {
        let g = fractional_ring();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let r = rate_optimal(&g, &res, &config(), 8).unwrap();
        assert_eq!(r.factor, 2);
        assert_eq!(r.kernel_length, 3, "3 steps per 2 iterations");
        assert!(
            (r.per_iteration - 1.5).abs() < 1e-9,
            "beats the integer IB of 2"
        );
    }

    #[test]
    fn integral_ratio_needs_no_unfolding() {
        let g = DfgBuilder::new("int")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", 2)
            .build()
            .unwrap();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let r = rate_optimal(&g, &res, &config(), 8).unwrap();
        assert_eq!(r.factor, 1);
        assert_eq!(r.kernel_length, 2);
    }

    #[test]
    fn max_factor_caps_the_unfolding() {
        let g = fractional_ring();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let r = rate_optimal(&g, &res, &config(), 1).unwrap();
        assert_eq!(r.factor, 1, "cap of 1 forbids unfolding");
    }

    #[test]
    fn resources_still_bound_the_unfolded_rate() {
        // 3 ops/iteration on ONE adder: 3 steps per iteration no matter
        // how much we unfold.
        let g = fractional_ring();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let r = rate_optimal(&g, &res, &config(), 8).unwrap();
        assert!((r.per_iteration - 3.0).abs() < 1e-9);
    }
}
