//! The unified rotation-search engine: one instrumented loop behind
//! every heuristic, phase, and portfolio worker.
//!
//! Four generations of growth (pruning, incremental contexts, budgets,
//! certification) each threaded their concern through a separate copy of
//! the paper's core loop. [`SearchDriver`] collapses them: a single
//! generic driver parameterized over the composable concerns —
//!
//! * a **step mode** ([`StepMode`]): how one down-rotation executes —
//!   through a persistent incremental [`RotationContext`]
//!   ([`IncrementalStep`], the production path) or the from-scratch
//!   operator ([`ScratchStep`], the reference/ablation path);
//! * a **prune source**: `None` or a portfolio [`PruneSignal`];
//! * a **budget**: `None` or an armed [`BudgetMeter`];
//! * an **observer** ([`SearchObserver`]): a monomorphized event sink.
//!   The default [`NoopObserver`] compiles to nothing — the untraced
//!   driver is the pre-refactor loop, instruction for instruction —
//!   while a [`TraceRecorder`](crate::trace::TraceRecorder) turns the
//!   same run into convergence telemetry.
//!
//! The paper's Heuristic 1 and Heuristic 2 (DAC 1993 §5) are sweep
//! policies *over* this one loop; [`SearchDriver::heuristic1`] and
//! [`SearchDriver::heuristic2`] implement them, and every legacy entry
//! point (`rotation_phase*`, `heuristic1*`, `heuristic2*`) is a thin
//! wrapper over a driver. Results are bit-identical to the pre-engine
//! code paths — enforced by the `seeded_incremental`,
//! `seeded_portfolio`, and `seeded_anytime` suites and the byte-stable
//! bench tables.

use rotsched_dfg::{Dfg, NodeId};
use rotsched_sched::{CacheStats, ListScheduler, ResourceSet, WrapScratch};

use crate::arena::SolveArena;
use crate::budget::{BudgetMeter, StopReason};
use crate::context::RotationContext;
use crate::error::RotationError;
use crate::heuristics::{HeuristicConfig, HeuristicOutcome};
use crate::objective::{Objective, Score};
use crate::phase::{BestSet, PhaseStats};
use crate::portfolio::PruneSignal;
use crate::rotate::{down_rotate, initial_state, RotationState};

/// A structured event emitted by the [`SearchDriver`] at every decision
/// point of the search. Borrowed payloads keep emission allocation-free;
/// observers that need to retain data copy what they keep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchEvent<'a> {
    /// A rotation phase began: `alpha` rotations of requested `size`.
    PhaseStart {
        /// Requested rotation size `i`.
        size: u32,
        /// Down-rotations the phase will attempt (`α`).
        alpha: usize,
    },
    /// One down-rotation completed.
    Rotated {
        /// The rotated node set (the old schedule's first steps).
        node_set: &'a [NodeId],
        /// The *wrapped* schedule length after the rotation — the
        /// paper's length metric, the one the search optimizes.
        length: u32,
    },
    /// The incumbent best score strictly improved.
    IncumbentImproved {
        /// The new best (wrapped) length — the length component of the
        /// new best score.
        length: u32,
        /// The new best packed score. Under the default length-only
        /// objective this is exactly `Score::from_length(length)`.
        score: Score,
    },
    /// Heuristic 2 rescheduled the retimed graph between phases
    /// (`FullSchedule(G_R)`).
    Rescheduled {
        /// The wrapped length of the fresh full schedule.
        length: u32,
    },
    /// The portfolio prune signal ended the phase (the bound was
    /// reached, here or by a lower-indexed task).
    Pruned,
    /// A budget limit fired; the phase stopped at its cancellation
    /// point with the incumbent intact.
    Stopped(StopReason),
    /// A rotation phase ended (by exhausting `alpha`, pruning,
    /// stopping, or running out of schedule to rotate).
    PhaseEnd {
        /// Down-rotations actually performed.
        rotations: usize,
        /// The incumbent best (wrapped) length at phase end.
        best_length: u32,
        /// Weight-memo hit/miss delta accumulated by this phase's
        /// incremental context (zeros on the reference path).
        cache: CacheStats,
    },
}

/// An event sink for [`SearchDriver`] runs.
///
/// Implementations observe, they do not steer: the driver's control
/// flow never depends on the observer, so a traced run returns the
/// bit-identical result of an untraced one (enforced by the
/// `trace_determinism` suite).
pub trait SearchObserver {
    /// Receives one search event.
    fn on_event(&mut self, event: SearchEvent<'_>);
}

/// The zero-cost observer: every event monomorphizes to nothing, so a
/// driver over `NoopObserver` is the uninstrumented loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {
    #[inline(always)]
    fn on_event(&mut self, _event: SearchEvent<'_>) {}
}

impl<O: SearchObserver + ?Sized> SearchObserver for &mut O {
    #[inline]
    fn on_event(&mut self, event: SearchEvent<'_>) {
        (**self).on_event(event);
    }
}

/// How the driver executes one down-rotation.
///
/// Both modes funnel into the same placement core, so their results are
/// bit-identical; they differ only in per-step cost (see DESIGN.md §6).
pub trait StepMode {
    /// Called once at the start of every phase, before any rotation of
    /// `state`; the incremental mode (re)builds its context here.
    ///
    /// # Errors
    ///
    /// Propagates scheduling-substrate failures from the context build.
    fn begin_phase(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &RotationState,
    ) -> Result<(), RotationError>;

    /// Performs one down-rotation of `size` on `state`, returning the
    /// rotated node set as a borrow of the mode's internal buffer (valid
    /// until the next call) — the steady-state step never allocates an
    /// owned set.
    ///
    /// # Errors
    ///
    /// See [`down_rotate`].
    fn rotate(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &mut RotationState,
        size: u32,
    ) -> Result<&[NodeId], RotationError>;

    /// Running cache counters of the mode's scheduling state (zeros
    /// when the mode keeps none).
    fn cache_stats(&self) -> CacheStats;
}

/// The production step mode: rotations run through a persistent
/// [`RotationContext`], rebuilt at each phase start, so per-step work is
/// proportional to the rotated prefix rather than the graph.
#[derive(Debug, Default)]
pub struct IncrementalStep {
    ctx: Option<RotationContext>,
    /// Pools the prefix buffer across context rebuilds (and, through
    /// [`SearchDriver::into_step`], across the items of a batch solve),
    /// so only the first phase of the first solve grows it.
    arena: SolveArena,
}

impl StepMode for IncrementalStep {
    fn begin_phase(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &RotationState,
    ) -> Result<(), RotationError> {
        let buffer = match self.ctx.take() {
            Some(retired) => retired.into_buffer(),
            None => self.arena.nodes.acquire(),
        };
        self.ctx = Some(RotationContext::with_buffer(
            dfg, scheduler, resources, state, buffer,
        )?);
        Ok(())
    }

    fn rotate(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &mut RotationState,
        size: u32,
    ) -> Result<&[NodeId], RotationError> {
        let ctx = self.ctx.as_mut().expect("begin_phase precedes rotate");
        ctx.down_rotate_in_place(dfg, scheduler, resources, state, size)?;
        Ok(ctx.rotated())
    }

    fn cache_stats(&self) -> CacheStats {
        self.ctx
            .as_ref()
            .map(RotationContext::cache_stats)
            .unwrap_or_default()
    }
}

/// The reference step mode: every rotation uses the non-incremental
/// [`down_rotate`] operator. Kept as the ablation arm for equivalence
/// tests and the `rotation_step` before/after benchmark.
#[derive(Clone, Debug, Default)]
pub struct ScratchStep {
    /// Retains the last rotated set so the trait can hand out a borrow.
    last: Vec<NodeId>,
}

impl StepMode for ScratchStep {
    fn begin_phase(
        &mut self,
        _dfg: &Dfg,
        _scheduler: &ListScheduler,
        _resources: &ResourceSet,
        _state: &RotationState,
    ) -> Result<(), RotationError> {
        Ok(())
    }

    fn rotate(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &mut RotationState,
        size: u32,
    ) -> Result<&[NodeId], RotationError> {
        self.last = down_rotate(dfg, scheduler, resources, state, size)?.rotated;
        Ok(&self.last)
    }

    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

/// The unified search driver: one `(graph, scheduler, resources)`
/// binding plus the composable concerns, exposing the paper's phase
/// loop and both heuristics as methods.
///
/// Construct with [`SearchDriver::incremental`] (the production step
/// mode) or [`SearchDriver::reference`] (the from-scratch ablation),
/// attach concerns with the `with_*` builders, then run.
///
/// # Examples
///
/// ```
/// use rotsched_core::engine::SearchDriver;
/// use rotsched_core::{BestSet, HeuristicConfig};
/// use rotsched_dfg::{DfgBuilder, OpKind};
/// use rotsched_sched::{ListScheduler, ResourceSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DfgBuilder::new("ring")
///     .nodes("v", 4, OpKind::Add, 1)
///     .chain(&["v0", "v1", "v2", "v3"])
///     .edge("v3", "v0", 2)
///     .build()?;
/// let scheduler = ListScheduler::default();
/// let resources = ResourceSet::adders_multipliers(2, 0, false);
/// let mut driver = SearchDriver::incremental(&g, &scheduler, &resources);
/// let outcome = driver.heuristic2(&HeuristicConfig::default())?;
/// assert_eq!(outcome.best_length, 2); // the iteration bound
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SearchDriver<'a, S, O = NoopObserver> {
    dfg: &'a Dfg,
    scheduler: &'a ListScheduler,
    resources: &'a ResourceSet,
    prune: Option<&'a PruneSignal<'a>>,
    budget: Option<&'a BudgetMeter>,
    step: S,
    /// What the search minimizes; [`Objective::Length`] reproduces the
    /// paper's scalar search bit for bit.
    objective: Objective,
    /// Reusable buffers for the per-step wrapped-length probe, built on
    /// the first phase and recycled for the driver's lifetime.
    wrap: Option<WrapScratch>,
    /// The attached observer; public so callers can reclaim a recorder
    /// after the run.
    pub observer: O,
}

impl<'a> SearchDriver<'a, IncrementalStep, NoopObserver> {
    /// A driver on the incremental step mode (the production path).
    #[must_use]
    pub fn incremental(
        dfg: &'a Dfg,
        scheduler: &'a ListScheduler,
        resources: &'a ResourceSet,
    ) -> Self {
        Self::incremental_with_step(dfg, scheduler, resources, IncrementalStep::default())
    }

    /// A driver reusing an existing [`IncrementalStep`] — its pooled
    /// buffers stay warm across drivers, which is how
    /// [`solve_batch`](crate::RotationScheduler::solve_batch) amortizes
    /// per-item setup. Reclaim the step afterwards with
    /// [`SearchDriver::into_step`].
    #[must_use]
    pub fn incremental_with_step(
        dfg: &'a Dfg,
        scheduler: &'a ListScheduler,
        resources: &'a ResourceSet,
        step: IncrementalStep,
    ) -> Self {
        SearchDriver {
            dfg,
            scheduler,
            resources,
            prune: None,
            budget: None,
            step,
            objective: Objective::Length,
            wrap: None,
            observer: NoopObserver,
        }
    }
}

impl<'a> SearchDriver<'a, ScratchStep, NoopObserver> {
    /// A driver on the from-scratch step mode (the reference arm).
    #[must_use]
    pub fn reference(
        dfg: &'a Dfg,
        scheduler: &'a ListScheduler,
        resources: &'a ResourceSet,
    ) -> Self {
        SearchDriver {
            dfg,
            scheduler,
            resources,
            prune: None,
            budget: None,
            step: ScratchStep::default(),
            objective: Objective::Length,
            wrap: None,
            observer: NoopObserver,
        }
    }
}

impl<'a, S: StepMode, O: SearchObserver> SearchDriver<'a, S, O> {
    /// Attaches a portfolio pruning signal.
    #[must_use]
    pub fn with_prune(mut self, prune: Option<&'a PruneSignal<'a>>) -> Self {
        self.prune = prune;
        self
    }

    /// Attaches an armed budget meter.
    #[must_use]
    pub fn with_budget(mut self, budget: Option<&'a BudgetMeter>) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the objective the search minimizes (default:
    /// [`Objective::Length`], the paper's scalar).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Replaces the observer, keeping every other concern.
    #[must_use]
    pub fn with_observer<P: SearchObserver>(self, observer: P) -> SearchDriver<'a, S, P> {
        SearchDriver {
            dfg: self.dfg,
            scheduler: self.scheduler,
            resources: self.resources,
            prune: self.prune,
            budget: self.budget,
            step: self.step,
            objective: self.objective,
            wrap: self.wrap,
            observer,
        }
    }

    /// Consumes the driver, handing back its step mode with every pooled
    /// buffer intact (see [`SearchDriver::incremental_with_step`]).
    #[must_use]
    pub fn into_step(self) -> S {
        self.step
    }

    /// Runs `RotationPhase(S_init, L_opt, Q, G, i, α)` — `alpha`
    /// rotations of size `size` on `state`, halving the effective size
    /// whenever it reaches the schedule length, recording improvements
    /// into `best`. This is the paper's one core loop; every public
    /// phase/heuristic entry point reduces to calls of this method.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures. Invalid sizes cannot occur: the
    /// size is halved below the schedule length first, and a schedule of
    /// length 1 terminates the phase early.
    pub fn run_phase(
        &mut self,
        state: &mut RotationState,
        best: &mut BestSet,
        size: u32,
        alpha: usize,
    ) -> Result<PhaseStats, RotationError> {
        self.step
            .begin_phase(self.dfg, self.scheduler, self.resources, state)?;
        if self.wrap.is_none() {
            self.wrap = Some(WrapScratch::new(self.dfg, self.resources)?);
        }
        let cache_before = self.step.cache_stats();
        self.observer
            .on_event(SearchEvent::PhaseStart { size, alpha });
        let mut stats = PhaseStats {
            requested_size: size,
            ..PhaseStats::default()
        };
        let mut min_seen = u32::MAX;
        for j in 0..alpha {
            // The cancellation point: checked before each rotation, so a
            // fired budget never abandons a rotation halfway and the
            // state always holds a complete legal schedule.
            if let Some(reason) = self.budget.and_then(BudgetMeter::check) {
                stats.stopped = Some(reason);
                self.observer.on_event(SearchEvent::Stopped(reason));
                break;
            }
            if self.prune.is_some_and(|p| p.should_stop(best.score)) {
                self.observer.on_event(SearchEvent::Pruned);
                break;
            }
            let length = state.schedule.length(self.dfg);
            if length <= 1 {
                break; // nothing left to rotate
            }
            let mut effective = size;
            while effective >= length {
                effective = effective.div_ceil(2);
            }
            if effective == 0 {
                break;
            }
            let rotated =
                self.step
                    .rotate(self.dfg, self.scheduler, self.resources, state, effective)?;
            if let Some(meter) = self.budget {
                meter.charge_rotation();
            }
            let wrapped = self
                .wrap
                .as_mut()
                .expect("scratch is built at phase start")
                .wrapped_length(
                    self.dfg,
                    Some(&state.retiming),
                    &state.schedule,
                    self.resources,
                )?;
            self.observer.on_event(SearchEvent::Rotated {
                node_set: rotated,
                length: wrapped,
            });
            stats.rotations += 1;
            stats.lengths.push(wrapped);
            if wrapped < min_seen {
                min_seen = wrapped;
                stats.first_optimum_at = Some(j + 1);
            }
            let score = self.objective.score(self.dfg, &state.retiming, wrapped);
            if best.offer(score, state) {
                self.observer.on_event(SearchEvent::IncumbentImproved {
                    length: best.length(),
                    score: best.score,
                });
            }
            if let Some(p) = self.prune {
                p.record(best.score);
            }
        }
        self.observer.on_event(SearchEvent::PhaseEnd {
            rotations: stats.rotations,
            best_length: best.length(),
            cache: self.step.cache_stats().since(&cache_before),
        });
        Ok(stats)
    }

    /// Offers `state` to `best` through the driver's concerns: emits
    /// [`SearchEvent::IncumbentImproved`] on a strict improvement and
    /// publishes the new best into the prune signal. This is how
    /// out-of-phase candidates (the initial schedule, an inter-phase
    /// reschedule) enter an instrumented search.
    pub fn offer(&mut self, best: &mut BestSet, length: u32, state: &RotationState) {
        let score = self.objective.score(self.dfg, &state.retiming, length);
        if best.offer(score, state) {
            self.observer.on_event(SearchEvent::IncumbentImproved {
                length: best.length(),
                score: best.score,
            });
        }
        if let Some(p) = self.prune {
            p.record(best.score);
        }
    }

    /// Heuristic 1: independent phases of sizes `1..=β`, each restarting
    /// from the initial schedule and the zero rotation function. A fired
    /// budget ends the current phase at its cancellation point and skips
    /// the remaining sizes.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic1(
        &mut self,
        config: &HeuristicConfig,
    ) -> Result<HeuristicOutcome, RotationError> {
        let init = initial_state(self.dfg, self.scheduler, self.resources)?;
        let mut best = BestSet::new(config.keep_best);
        let wrapped = init.wrapped_length(self.dfg, self.resources)?;
        self.offer(&mut best, wrapped, &init);

        let beta = config
            .max_size
            .unwrap_or_else(|| init.length(self.dfg))
            .max(1);
        let mut phases = Vec::new();
        for size in 1..=beta {
            let mut state = init.clone();
            let stats = self.run_phase(&mut state, &mut best, size, config.rotations_per_phase)?;
            // Key the sweep's early exit off the *recorded* stop, not a
            // fresh meter check: deterministic limits then truncate the
            // exact same phase prefix on every run.
            let stopped = stats.stopped.is_some();
            phases.push(stats);
            if stopped {
                break;
            }
        }
        Ok(HeuristicOutcome::from_parts(best, phases))
    }

    /// Heuristic 2: iterative compaction with phases of decreasing size
    /// `β, β−1, …, 1`; each phase continues from the previous phase's
    /// final rotation function via a fresh `FullSchedule` of the retimed
    /// graph. The sweep stops early when the prune signal says further
    /// work is pointless or the budget fires (a budget stop ends the
    /// sweep after the phase that recorded it — its chained reschedule
    /// is skipped, so the incumbent is exactly what the truncated search
    /// produced).
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures.
    pub fn heuristic2(
        &mut self,
        config: &HeuristicConfig,
    ) -> Result<HeuristicOutcome, RotationError> {
        let init = initial_state(self.dfg, self.scheduler, self.resources)?;
        let mut best = BestSet::new(config.keep_best);
        let wrapped = init.wrapped_length(self.dfg, self.resources)?;
        self.offer(&mut best, wrapped, &init);

        let beta = config
            .max_size
            .unwrap_or_else(|| init.length(self.dfg))
            .max(1);
        let mut phases = Vec::new();
        let mut state = init;
        'sweep: for _round in 0..config.rounds.max(1) {
            for size in (1..=beta).rev() {
                if self.prune.is_some_and(|p| p.should_stop(best.score)) {
                    self.observer.on_event(SearchEvent::Pruned);
                    break 'sweep;
                }
                let stats =
                    self.run_phase(&mut state, &mut best, size, config.rotations_per_phase)?;
                let stopped = stats.stopped.is_some();
                phases.push(stats);
                if stopped {
                    break 'sweep;
                }

                // Find a new initial schedule for the next phase from the
                // accumulated rotation function: FullSchedule(G_R). The
                // rotation function is kept in place.
                state.schedule =
                    self.scheduler
                        .schedule(self.dfg, Some(&state.retiming), self.resources)?;
                let wrapped = state.wrapped_length(self.dfg, self.resources)?;
                self.observer
                    .on_event(SearchEvent::Rescheduled { length: wrapped });
                self.offer(&mut best, wrapped, &state);
            }
        }
        Ok(HeuristicOutcome::from_parts(best, phases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{heuristic2, heuristic2_reference};
    use crate::phase::rotation_phase;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring(n: usize, delays: u32) -> Dfg {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        DfgBuilder::new("ring")
            .nodes("v", n, OpKind::Add, 1)
            .chain(&refs)
            .edge(&format!("v{}", n - 1), "v0", delays)
            .build()
            .unwrap()
    }

    /// An observer that counts events by kind, for structural checks.
    #[derive(Default)]
    struct Counter {
        phase_starts: usize,
        phase_ends: usize,
        rotations: usize,
        improvements: usize,
        reschedules: usize,
        cache_hits: u64,
        lengths: Vec<u32>,
    }

    impl SearchObserver for Counter {
        fn on_event(&mut self, event: SearchEvent<'_>) {
            match event {
                SearchEvent::PhaseStart { .. } => self.phase_starts += 1,
                SearchEvent::PhaseEnd { cache, .. } => {
                    self.phase_ends += 1;
                    self.cache_hits += cache.weight_memo_hits;
                }
                SearchEvent::Rotated { length, node_set } => {
                    assert!(!node_set.is_empty());
                    self.rotations += 1;
                    self.lengths.push(length);
                }
                SearchEvent::IncumbentImproved { .. } => self.improvements += 1,
                SearchEvent::Rescheduled { .. } => self.reschedules += 1,
                SearchEvent::Pruned | SearchEvent::Stopped(_) => {}
            }
        }
    }

    #[test]
    fn events_mirror_phase_stats() {
        let g = ring(6, 3);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut driver =
            SearchDriver::incremental(&g, &sched, &res).with_observer(Counter::default());
        let mut state = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(4);
        let stats = driver.run_phase(&mut state, &mut best, 2, 8).unwrap();
        let counter = &driver.observer;
        assert_eq!(counter.phase_starts, 1);
        assert_eq!(counter.phase_ends, 1);
        assert_eq!(counter.rotations, stats.rotations);
        assert_eq!(counter.lengths, stats.lengths);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let g = ring(7, 2);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let config = HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        };
        let plain = heuristic2(&g, &sched, &res, &config).unwrap();
        let mut driver =
            SearchDriver::incremental(&g, &sched, &res).with_observer(Counter::default());
        let observed = driver.heuristic2(&config).unwrap();
        assert_eq!(plain.best_length, observed.best_length);
        assert_eq!(plain.best, observed.best);
        assert_eq!(plain.phases, observed.phases);
        assert_eq!(driver.observer.rotations, observed.total_rotations);
        assert!(driver.observer.improvements >= 1, "initial offer improves");
        assert_eq!(
            driver.observer.reschedules,
            observed.phases.len(),
            "one chained reschedule per completed phase"
        );
    }

    #[test]
    fn reference_and_incremental_drivers_agree() {
        let g = ring(6, 3);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let config = HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        };
        let fast = SearchDriver::incremental(&g, &sched, &res)
            .heuristic2(&config)
            .unwrap();
        let slow = heuristic2_reference(&g, &sched, &res, &config, None).unwrap();
        assert_eq!(fast.best_length, slow.best_length);
        assert_eq!(fast.best, slow.best);
        assert_eq!(fast.phases, slow.phases);
    }

    #[test]
    fn driver_phase_matches_the_legacy_wrapper() {
        let g = ring(5, 2);
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        for size in 1..=3 {
            let mut st_wrapper = initial_state(&g, &sched, &res).unwrap();
            let mut st_driver = st_wrapper.clone();
            let mut best_wrapper = BestSet::new(8);
            let mut best_driver = BestSet::new(8);
            let a = rotation_phase(
                &g,
                &sched,
                &res,
                &mut st_wrapper,
                &mut best_wrapper,
                size,
                8,
            )
            .unwrap();
            let b = SearchDriver::incremental(&g, &sched, &res)
                .run_phase(&mut st_driver, &mut best_driver, size, 8)
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(st_wrapper, st_driver);
            assert_eq!(best_wrapper.schedules, best_driver.schedules);
        }
    }
}
