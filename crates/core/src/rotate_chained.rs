//! Rotation on chained schedules.
//!
//! Section 3 promises that "the basic algorithm can handle ... chained
//! operations": rotation only needs a schedule with a notion of
//! control-step prefix and an incremental rescheduler. This module
//! instantiates `DownRotate` for [`ChainedSchedule`]s, where several
//! dependent fast operations share one control step.

use rotsched_dfg::{Dfg, NodeId, Retiming};
use rotsched_sched::{ChainTiming, ChainedSchedule, ChainedScheduler, ResourceSet};

use crate::error::RotationError;

/// The rotation state over a chained schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainedRotationState {
    /// Accumulated rotation function.
    pub retiming: Retiming,
    /// Current chained schedule of `G_R`.
    pub schedule: ChainedSchedule,
}

impl ChainedRotationState {
    /// Schedule length in control steps.
    #[must_use]
    pub fn length(&self, dfg: &Dfg, timing: &ChainTiming) -> u32 {
        self.schedule.length(dfg, timing)
    }
}

/// Builds the initial chained rotation state (`FullSchedule` with
/// chaining, zero retiming).
///
/// # Errors
///
/// Propagates graph and scheduling failures.
pub fn initial_chained_state(
    dfg: &Dfg,
    scheduler: &ChainedScheduler,
    resources: &ResourceSet,
    timing: &ChainTiming,
) -> Result<ChainedRotationState, RotationError> {
    dfg.validate()?;
    let schedule = scheduler.schedule(dfg, None, resources, timing)?;
    Ok(ChainedRotationState {
        retiming: Retiming::zero(dfg),
        schedule,
    })
}

/// One chained down-rotation of `size` control steps: deallocate the
/// nodes *starting* in the first `size` steps, push a delay through
/// them, and reschedule them (with chaining) on the implicitly retimed
/// DAG.
///
/// # Errors
///
/// * [`RotationError::InvalidSize`] — `size` is 0 or at least the
///   current length.
/// * [`RotationError::Sched`] — incremental rescheduling failed.
pub fn down_rotate_chained(
    dfg: &Dfg,
    scheduler: &ChainedScheduler,
    resources: &ResourceSet,
    timing: &ChainTiming,
    state: &mut ChainedRotationState,
    size: u32,
) -> Result<Vec<NodeId>, RotationError> {
    let length = state.schedule.length(dfg, timing);
    if size == 0 || size >= length {
        return Err(RotationError::InvalidSize {
            size,
            schedule_length: length,
        });
    }
    let rotated = state.schedule.prefix_nodes(size);
    for &v in &rotated {
        state.schedule.clear(v);
    }
    state.retiming.apply_set(&rotated, 1);
    state.schedule.normalize();
    scheduler.reschedule(
        dfg,
        Some(&state.retiming),
        resources,
        timing,
        &mut state.schedule,
        &rotated,
    )?;
    state.schedule.normalize();
    Ok(rotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};
    use rotsched_sched::chaining::check_chained_schedule;

    /// A ring of fast 15-unit operations in 40-unit steps: chaining
    /// packs ~2.6 ops per step; rotation then overlaps iterations.
    fn fast_ring() -> Dfg {
        DfgBuilder::new("fast-ring")
            .nodes("s", 6, OpKind::Shift, 15)
            .chain(&["s0", "s1", "s2", "s3", "s4", "s5"])
            .edge("s5", "s0", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn chained_initial_schedule_packs_steps() {
        let g = fast_ring();
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let timing = ChainTiming::new(40);
        let st = initial_chained_state(&g, &ChainedScheduler::default(), &res, &timing).unwrap();
        // 6 x 15 = 90 units of chain = 3 steps of 40 (2.25 rounded by
        // chain boundaries) -> exactly 3.
        assert_eq!(st.length(&g, &timing), 3);
        check_chained_schedule(&g, None, &st.schedule, &res, &timing).unwrap();
    }

    #[test]
    fn chained_rotation_compacts_the_ring() {
        let g = fast_ring();
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let timing = ChainTiming::new(40);
        let sched = ChainedScheduler::default();
        let mut st = initial_chained_state(&g, &sched, &res, &timing).unwrap();
        let mut best = st.length(&g, &timing);
        for _ in 0..4 {
            if st.length(&g, &timing) <= 1 {
                break;
            }
            down_rotate_chained(&g, &sched, &res, &timing, &mut st, 1).unwrap();
            check_chained_schedule(&g, Some(&st.retiming), &st.schedule, &res, &timing).unwrap();
            best = best.min(st.length(&g, &timing));
        }
        // With 2 delays the ring splits into two 3-op chains of 45 units
        // each: 2 steps.
        assert_eq!(best, 2);
        assert!(st.retiming.is_legal(&g));
    }

    #[test]
    fn invalid_chained_sizes_are_rejected() {
        let g = fast_ring();
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let timing = ChainTiming::new(40);
        let sched = ChainedScheduler::default();
        let mut st = initial_chained_state(&g, &sched, &res, &timing).unwrap();
        assert!(matches!(
            down_rotate_chained(&g, &sched, &res, &timing, &mut st, 0),
            Err(RotationError::InvalidSize { .. })
        ));
    }

    #[test]
    fn chaining_beats_unchained_scheduling() {
        // The same ring scheduled WITHOUT chaining (each 15-unit op gets
        // its own step) takes 6 steps before rotation and 2 with
        // chaining after rotation: the chained substrate is strictly
        // more expressive.
        let g = fast_ring();
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let unchained = rotsched_sched::ListScheduler::default()
            .schedule(&g, None, &res)
            .unwrap();
        // Without chaining each op occupies a full step; the chain
        // serializes to 6 steps even with 3 adders.
        assert!(unchained.length(&g) >= 6);
    }
}
