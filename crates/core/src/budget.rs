//! Solve budgets and cooperative cancellation — the anytime layer.
//!
//! Rotation scheduling is an iterative-improvement loop: every
//! down-rotation offers its result to a [`BestSet`](crate::BestSet) and
//! the best incumbent only ever improves. That makes every solve a
//! natural *anytime* algorithm — stopping it early is always safe, it
//! simply returns the best legal schedule seen so far. This module
//! provides the machinery to stop it:
//!
//! * [`Budget`] — a declarative limit: wall-clock deadline, rotation
//!   (step) budget, and/or an external [`CancelToken`].
//! * [`BudgetMeter`] — one *armed* budget: the deadline anchored to a
//!   start instant and a shared rotation counter. One meter spans a
//!   whole solve, including every portfolio worker.
//! * [`StopReason`] — why a solve stopped early, recorded in
//!   [`PhaseStats::stopped`](crate::PhaseStats) at the exact rotation
//!   where the check fired.
//!
//! ## Guarantees
//!
//! * **Checked cooperatively at down-rotation granularity.** The phase
//!   loop consults the meter before every rotation; no rotation is ever
//!   abandoned halfway, so the incumbent schedule is always a complete,
//!   legal static schedule (enforced by the `seeded_anytime` suite).
//! * **Zero-cost when unlimited.** An unlimited budget performs no
//!   clock reads and no atomic traffic in the check, and a solve under
//!   it is bit-identical to one without any budget (enforced by the
//!   `seeded_incremental` and `seeded_portfolio` suites).
//! * **Deterministic under rotation budgets.** `max_rotations` counts
//!   rotations, not time, so single-threaded solves truncated at `k`
//!   rotations reproduce exactly the first `k` steps of the unlimited
//!   run — best lengths are monotone non-increasing in `k`. Deadlines
//!   and cancellation are inherently timing-dependent; results under
//!   them are still always legal, just not reproducible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve stopped before finishing its search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StopReason {
    /// The external [`CancelToken`] was triggered.
    Cancelled,
    /// The rotation (step) budget was used up.
    RotationBudget,
    /// The wall-clock deadline passed.
    Deadline,
}

impl core::fmt::Display for StopReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            StopReason::Cancelled => "cancelled",
            StopReason::RotationBudget => "rotation budget exhausted",
            StopReason::Deadline => "deadline expired",
        })
    }
}

/// A shareable flag that cancels every solve holding a clone of it.
///
/// Cancellation is *cooperative*: the solve observes the flag at
/// down-rotation granularity, finishes the rotation in flight, and
/// returns its incumbent best. Cancelling is idempotent and permanent —
/// there is no way to un-cancel a token.
///
/// # Examples
///
/// ```
/// use rotsched_core::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone(); // give this to another thread
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every solve holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A declarative solve limit: any combination of a wall-clock deadline,
/// a rotation budget, and an external cancel flag. The default is
/// unlimited — a solve under it behaves exactly like one without a
/// budget.
///
/// A `Budget` is inert configuration; [`Budget::arm`] anchors it to a
/// start instant and produces the [`BudgetMeter`] the solve checks.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use rotsched_core::{Budget, CancelToken};
///
/// let budget = Budget::default()
///     .with_deadline(Duration::from_millis(200))
///     .with_max_rotations(10_000)
///     .with_cancel(CancelToken::new());
/// assert!(!budget.is_unlimited());
/// assert!(Budget::default().is_unlimited());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_rotations: Option<u64>,
    cancel: Option<CancelToken>,
    panic_after: Option<u64>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits the solve to `deadline` of wall-clock time from the
    /// moment the budget is armed.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limits the solve to `max` down-rotations in total (across every
    /// phase and every portfolio worker). `0` stops before the first
    /// rotation — the solve returns its initial list schedule.
    #[must_use]
    pub fn with_max_rotations(mut self, max: u64) -> Self {
        self.max_rotations = Some(max);
        self
    }

    /// Attaches an external cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms the solve to panic once `rotations` down-rotations have
    /// been charged (`0` panics at the first cancellation point). This
    /// is the fault-injection surface the serve layer's chaos suite
    /// uses to kill a solver mid-search with partial state on the
    /// stack; it is not part of the public budget contract.
    #[doc(hidden)]
    #[must_use]
    pub fn with_panic_after(mut self, rotations: u64) -> Self {
        self.panic_after = Some(rotations);
        self
    }

    /// True when no limit of any kind is configured. An armed panic
    /// injection counts as a limit so the engine keeps polling the
    /// meter (and the rotation counter) even under an otherwise
    /// unlimited budget.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rotations.is_none()
            && self.cancel.is_none()
            && self.panic_after.is_none()
    }

    /// The configured wall-clock deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured rotation (step) budget, if any.
    #[must_use]
    pub fn max_rotations(&self) -> Option<u64> {
        self.max_rotations
    }

    /// Whether an external [`CancelToken`] is attached.
    #[must_use]
    pub fn has_cancel(&self) -> bool {
        self.cancel.is_some()
    }

    /// Anchors the budget to *now* and returns the meter a solve checks.
    #[must_use]
    pub fn arm(&self) -> BudgetMeter {
        BudgetMeter {
            deadline: self.deadline.map(|d| Instant::now() + d),
            max_rotations: self.max_rotations,
            rotations: AtomicU64::new(0),
            cancel: self.cancel.clone(),
            panic_after: self.panic_after,
        }
    }
}

/// Budgets compare by their declarative limits. Cancel tokens have no
/// observable configuration, so they compare by *presence* only: two
/// budgets holding different tokens are equal as configurations even
/// though the tokens are independent flags.
impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.max_rotations == other.max_rotations
            && self.cancel.is_some() == other.cancel.is_some()
            && self.panic_after == other.panic_after
    }
}

impl Eq for Budget {}

/// One armed [`Budget`]: the live state a solve consults cooperatively
/// at down-rotation granularity. A single meter is shared by every
/// phase — and every portfolio worker — of one solve, so the rotation
/// budget is global to the solve rather than per-worker.
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    max_rotations: Option<u64>,
    rotations: AtomicU64,
    cancel: Option<CancelToken>,
    panic_after: Option<u64>,
}

impl BudgetMeter {
    /// Records one performed down-rotation against the budget.
    pub fn charge_rotation(&self) {
        // Skip the atomic traffic entirely when nothing reads the
        // counter — the unlimited fast path must stay contention-free.
        if self.max_rotations.is_some() || self.panic_after.is_some() {
            self.rotations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Down-rotations charged so far (0 when no rotation budget is set:
    /// the counter is only maintained when something can read it).
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Should the solve stop *now*? Checked before every rotation.
    /// Returns the reason, or `None` while the budget holds. An
    /// unlimited meter answers without reading the clock.
    ///
    /// Check order (first match wins): cancellation, rotation budget,
    /// deadline — the deterministic limits are consulted before the
    /// clock so mixed budgets report reproducibly when both would fire.
    #[must_use]
    pub fn check(&self) -> Option<StopReason> {
        // The fault-injection surface: an armed panic fires before any
        // ordinary limit so chaos tests can rely on it deterministically.
        if self
            .panic_after
            .is_some_and(|k| self.rotations.load(Ordering::Relaxed) >= k)
        {
            panic!("injected mid-search panic (fault injection)");
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self
            .max_rotations
            .is_some_and(|max| self.rotations.load(Ordering::Relaxed) >= max)
        {
            return Some(StopReason::RotationBudget);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::Deadline);
        }
        None
    }

    /// True when this meter can never fire.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rotations.is_none()
            && self.cancel.is_none()
            && self.panic_after.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fires() {
        let meter = Budget::unlimited().arm();
        assert!(meter.is_unlimited());
        for _ in 0..100 {
            meter.charge_rotation();
            assert_eq!(meter.check(), None);
        }
    }

    #[test]
    fn rotation_budget_fires_exactly_at_the_limit() {
        let meter = Budget::default().with_max_rotations(3).arm();
        assert_eq!(meter.check(), None);
        for _ in 0..3 {
            meter.charge_rotation();
        }
        assert_eq!(meter.check(), Some(StopReason::RotationBudget));
        assert_eq!(meter.rotations(), 3);
    }

    #[test]
    fn zero_rotation_budget_fires_immediately() {
        let meter = Budget::default().with_max_rotations(0).arm();
        assert_eq!(meter.check(), Some(StopReason::RotationBudget));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let meter = Budget::default().with_deadline(Duration::ZERO).arm();
        assert_eq!(meter.check(), Some(StopReason::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let meter = Budget::default()
            .with_deadline(Duration::from_hours(1))
            .arm();
        assert_eq!(meter.check(), None);
    }

    #[test]
    fn cancel_token_is_shared_and_permanent() {
        let token = CancelToken::new();
        let meter = Budget::default().with_cancel(token.clone()).arm();
        assert_eq!(meter.check(), None);
        token.cancel();
        assert_eq!(meter.check(), Some(StopReason::Cancelled));
        token.cancel(); // idempotent
        assert_eq!(meter.check(), Some(StopReason::Cancelled));
    }

    #[test]
    fn deterministic_limits_win_over_the_clock() {
        let token = CancelToken::new();
        token.cancel();
        let meter = Budget::default()
            .with_deadline(Duration::ZERO)
            .with_max_rotations(0)
            .with_cancel(token)
            .arm();
        assert_eq!(meter.check(), Some(StopReason::Cancelled));
    }

    #[test]
    fn unlimited_flag_reflects_configuration() {
        assert!(Budget::default().is_unlimited());
        assert!(!Budget::default().with_max_rotations(1).is_unlimited());
        assert!(!Budget::default()
            .with_deadline(Duration::from_secs(1))
            .is_unlimited());
        assert!(!Budget::default()
            .with_cancel(CancelToken::new())
            .is_unlimited());
        assert!(Budget::default()
            .with_max_rotations(1)
            .arm()
            .check()
            .is_none());
    }

    #[test]
    fn injected_panic_fires_at_the_armed_rotation() {
        let meter = Budget::default().with_panic_after(2).arm();
        assert!(!meter.is_unlimited());
        assert_eq!(meter.check(), None);
        meter.charge_rotation();
        assert_eq!(meter.check(), None);
        meter.charge_rotation();
        let err = std::panic::catch_unwind(|| meter.check()).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("injected mid-search panic"), "{msg}");
    }

    #[test]
    fn injected_panic_counts_as_a_limit() {
        // `is_unlimited` must be false so the scheduler arms a meter
        // for an otherwise unlimited budget; equality must see it too.
        assert!(!Budget::default().with_panic_after(5).is_unlimited());
        assert_ne!(
            Budget::default().with_panic_after(5),
            Budget::default(),
            "panic arming must be visible to budget equality"
        );
    }

    #[test]
    fn stop_reasons_display() {
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(
            StopReason::RotationBudget.to_string(),
            "rotation budget exhausted"
        );
        assert_eq!(StopReason::Deadline.to_string(), "deadline expired");
    }
}
