//! # rotsched-core — rotation scheduling
//!
//! A from-scratch implementation of **Rotation Scheduling: A Loop
//! Pipelining Algorithm** (Chao, LaPaugh, Sha — DAC 1993):
//! resource-constrained scheduling of loops with inter-iteration
//! dependencies, modeled as cyclic data-flow graphs.
//!
//! The central idea: a legal schedule's first `i` control steps always
//! form a *down-rotatable* set (Property 1). Rotating them down — an
//! implicit retiming recorded in a single node-labeling function — and
//! *incrementally rescheduling only those nodes* on the implicitly
//! retimed DAG compacts the schedule step by step, naturally producing a
//! loop pipeline. No retimed graph is ever constructed; precedence is
//! read through the rotation function.
//!
//! ## Quick start
//!
//! ```
//! use rotsched_core::RotationScheduler;
//! use rotsched_dfg::{DfgBuilder, OpKind};
//! use rotsched_sched::ResourceSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = DfgBuilder::new("recurrence")
//!     .nodes("v", 4, OpKind::Add, 1)
//!     .chain(&["v0", "v1", "v2", "v3"])
//!     .edge("v3", "v0", 2)
//!     .build()?;
//!
//! let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(2, 0, false));
//! let solved = rs.solve()?;
//! assert_eq!(solved.length, 2);           // = the iteration bound
//! let report = rs.verify(&solved.state, 100)?; // end-to-end simulation
//! assert!(report.speedup() > 1.5);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! * [`rotate`] — down-/up-rotation operators, rotatability checks
//!   (Property 1), and the `DownRotate` procedure (Section 3.1).
//! * [`context`] — the persistent [`RotationContext`] that makes each
//!   rotation step cost `O(|R|·deg)` instead of `O(V+E)` (Section 3.3's
//!   complexity claim).
//! * [`arena`] — [`BufferPool`]/[`SolveArena`]: recycled scratch
//!   buffers behind the steady-state zero-allocation guarantee and
//!   [`RotationScheduler::solve_batch`]'s cross-item reuse.
//! * [`engine`] — the unified [`SearchDriver`]: one instrumented loop
//!   (step mode × prune × budget × observer) behind every phase,
//!   heuristic, and portfolio worker.
//! * [`trace`] — [`TraceRecorder`]/[`SearchTrace`]: ring-buffered
//!   convergence telemetry over driver events (`rotsched solve
//!   --trace`).
//! * [`phase`] — rotation phases with best-set tracking (Section 5).
//! * [`heuristics`] — Heuristic 1 (independent phases) and Heuristic 2
//!   (chained, decreasing sizes) behind the paper's tables.
//! * [`portfolio`] — deterministic parallel portfolio search over many
//!   independent configurations, with lower-bound-based pruning.
//! * [`depth`] — pipeline-depth minimization via the shortest-path dual
//!   (Section 3.2, Theorem 2, Lemma 3) and loop-schedule expansion.
//! * [`RotationScheduler`] — the high-level facade.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod budget;
pub mod context;
pub mod depth;
pub mod engine;
mod error;
pub mod heuristics;
pub mod nested;
pub mod objective;
pub mod phase;
pub mod portfolio;
pub mod rate;
pub mod rotate;
pub mod rotate_chained;
mod scheduler;
pub mod trace;
pub mod wire;

pub use arena::{BufferPool, PoolStats, SolveArena};
pub use budget::{Budget, BudgetMeter, CancelToken, StopReason};
pub use context::RotationContext;
pub use engine::{
    IncrementalStep, NoopObserver, ScratchStep, SearchDriver, SearchEvent, SearchObserver, StepMode,
};
pub use error::RotationError;
pub use heuristics::{
    heuristic1, heuristic1_budgeted, heuristic2, heuristic2_pruned, heuristic2_reference,
    HeuristicConfig, HeuristicOutcome,
};
pub use objective::{Objective, Score};
pub use phase::{
    rotation_phase, rotation_phase_pruned, rotation_phase_reference, BestSet, PhaseStats,
};
pub use portfolio::{
    effective_jobs, parallel_indexed, parallel_indexed_isolated, IsolatedResult, Portfolio,
    PortfolioOutcome, PruneSignal, SearchTask, SharedBound, TaskOutcome, TaskReport,
};
pub use rate::{rate_optimal, unfold_and_rotate, RateResult};
pub use rotate::{
    down_rotate, initial_state, is_down_rotatable, up_rotate, DownRotateOutcome, RotationState,
};
pub use rotate_chained::{down_rotate_chained, initial_chained_state, ChainedRotationState};
pub use scheduler::{
    ProblemSpec, RotationScheduler, SolveOutcome, SolveQuality, SolveStats, SolvedPipeline,
};
pub use trace::{
    PhaseCounters, SearchTrace, TaskTrace, TraceEvent, TraceRecorder, DEFAULT_TRACE_EVENTS,
    TRACE_SCHEMA,
};
pub use wire::{
    cache_fingerprint, cache_key_text, fingerprint_text, parse_problem, render_problem, WireError,
};
