//! The rotation operators (Section 2, Definition 1, and the `DownRotate`
//! procedure of Subsection 3.1).
//!
//! A *down-rotation* of a node set `X` pushes one delay from each
//! incoming edge of `X` to each outgoing edge — the retiming that is the
//! 0–1 indicator of `X`. Rotation scheduling always rotates the set
//! `S_i` of nodes scheduled in the first `i` control steps, which is
//! down-rotatable by construction (Property 1), then *reschedules only
//! those nodes* at their earliest feasible steps in the implicitly
//! retimed graph.
//!
//! No retimed graph is ever materialized: the state of a rotation
//! sequence is a single [`Retiming`] (the *rotation function* `R`), and
//! the scheduler reads retimed delays through it.

use rotsched_dfg::{Dfg, NodeId, Retiming};
use rotsched_sched::{ListScheduler, ResourceSet, Schedule};

use crate::error::RotationError;

/// The evolving state of a rotation sequence: the accumulated rotation
/// function `R` and the current schedule, which is a legal DAG schedule
/// of `G_R` (and therefore a legal *static* schedule of `G`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotationState {
    /// The rotation function: composite of all rotations performed.
    pub retiming: Retiming,
    /// The current schedule of the retimed DAG, normalized to start at
    /// control step 1.
    pub schedule: Schedule,
}

impl RotationState {
    /// The schedule length in control steps (unwrapped).
    #[must_use]
    pub fn length(&self, dfg: &Dfg) -> u32 {
        self.schedule.length(dfg)
    }

    /// The wrapped schedule length — the paper's length metric in the
    /// presence of multi-cycle operations (Section 4).
    ///
    /// # Errors
    ///
    /// Propagates wrap-analysis failures (never happens for the state
    /// maintained by rotation, whose unwrapped interpretation is legal).
    pub fn wrapped_length(&self, dfg: &Dfg, resources: &ResourceSet) -> Result<u32, RotationError> {
        Ok(rotsched_sched::wrapped_length(
            dfg,
            Some(&self.retiming),
            &self.schedule,
            resources,
        )?)
    }
}

/// Checks Property 1: is `set` down-rotatable in `G_r`? Equivalently,
/// does every edge entering the set from outside carry at least one
/// (retimed) delay?
#[must_use]
pub fn is_down_rotatable(dfg: &Dfg, retiming: &Retiming, set: &[NodeId]) -> bool {
    find_rotatability_witness(dfg, retiming, set).is_none()
}

/// Returns a node of `set` reached by a delay-free edge from outside, if
/// any (the witness that the set is *not* down-rotatable).
#[must_use]
pub fn find_rotatability_witness(dfg: &Dfg, retiming: &Retiming, set: &[NodeId]) -> Option<NodeId> {
    let mut in_set = dfg.node_map(false);
    for &v in set {
        in_set[v] = true;
    }
    for (id, edge) in dfg.edges() {
        if !in_set[edge.from()] && in_set[edge.to()] && retiming.retimed_delay(dfg, id) == 0 {
            return Some(edge.to());
        }
    }
    None
}

/// Outcome of one down-rotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DownRotateOutcome {
    /// The nodes rotated down (the old schedule's first `size` steps).
    pub rotated: Vec<NodeId>,
    /// New (unwrapped) schedule length.
    pub length: u32,
}

/// Performs one down-rotation of `size` control steps on `state`
/// (procedure `DownRotate(G, s, i)`):
///
/// 1. `X ← {v | s(v) in the first `size` steps}` — down-rotatable by
///    construction;
/// 2. deallocate `X` and shift the rest down to start at step 1;
/// 3. `R ← R ∘ X` (push a delay through every node of `X`);
/// 4. reschedule `X` incrementally on the DAG of `G_R`
///    (`PartialSchedule`), which pushes each rotated node up to its
///    earliest feasible step.
///
/// The resulting schedule is never longer than the previous one *plus*
/// the tail effects of multi-cycle operations (Section 4); for
/// single-cycle operations it is at most the previous length.
///
/// # Errors
///
/// * [`RotationError::InvalidSize`] — `size` is 0 or ≥ the schedule
///   length (a rotation of the whole schedule is the identity on the
///   DAG and is rejected as the paper's phases do).
/// * [`RotationError::Sched`] — incremental rescheduling failed.
pub fn down_rotate(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    state: &mut RotationState,
    size: u32,
) -> Result<DownRotateOutcome, RotationError> {
    let length = state.schedule.length(dfg);
    if size == 0 || size >= length {
        return Err(RotationError::InvalidSize {
            size,
            schedule_length: length,
        });
    }

    // X = nodes starting in the first `size` control steps.
    let rotated = state.schedule.prefix_nodes(size);
    debug_assert!(
        is_down_rotatable(dfg, &state.retiming, &rotated),
        "a schedule prefix is always down-rotatable (Property 1)"
    );

    // Deallocate and fold the rotation into R in place (no per-step
    // indicator retiming is allocated).
    for &v in &rotated {
        state.schedule.clear(v);
    }
    state.retiming.apply_set(&rotated, 1);

    // Shift the fixed remainder down to start at step 1, then reschedule
    // the rotated nodes at their earliest feasible steps in G_R.
    state.schedule.normalize();
    scheduler.reschedule(
        dfg,
        Some(&state.retiming),
        resources,
        &mut state.schedule,
        &rotated,
    )?;
    // The non-empty fixed remainder keeps occupying step 1 and
    // rescheduling never places below it, so the result is already
    // normalized.
    debug_assert_eq!(state.schedule.first_step(), Some(1));

    Ok(DownRotateOutcome {
        rotated,
        length: state.schedule.length(dfg),
    })
}

/// Performs one *up*-rotation of `size` control steps: the suffix set of
/// the schedule is rotated up (one delay pulled from each outgoing edge
/// to each incoming edge, `r(v) ← r(v) − 1`) and rescheduled at the
/// earliest steps of the schedule.
///
/// Up-rotation is the inverse view of down-rotation (Section 2 notes the
/// symmetric properties); it is provided for completeness and for
/// heuristics that want to shrink the pipeline depth during search.
///
/// # Errors
///
/// * [`RotationError::InvalidSize`] — `size` is 0 or ≥ the schedule
///   length.
/// * [`RotationError::NotRotatable`] — the suffix set is not
///   up-rotatable (an edge leaves it without a delay).
/// * [`RotationError::Sched`] — incremental rescheduling failed.
pub fn up_rotate(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    state: &mut RotationState,
    size: u32,
) -> Result<DownRotateOutcome, RotationError> {
    let length = state.schedule.length(dfg);
    if size == 0 || size >= length {
        return Err(RotationError::InvalidSize {
            size,
            schedule_length: length,
        });
    }
    let first = state
        .schedule
        .first_step()
        .expect("nonempty schedule has a first step");
    let boundary = first + length - size; // steps >= boundary are the suffix
    let rotated: Vec<NodeId> = state
        .schedule
        .iter()
        .filter(|&(_, cs)| cs >= boundary)
        .map(|(v, _)| v)
        .collect();

    // Up-rotatability: every (retimed) edge from the set to the outside
    // must carry a delay. Probe by applying the delta in place and
    // rolling it back on failure — only edges *leaving* the set lose a
    // delay, so checking those (in edge-id order, matching
    // `Retiming::check_legal`'s reporting) covers every edge that could
    // have gone negative.
    state.retiming.apply_set(&rotated, -1);
    let mut witness: Option<(rotsched_dfg::EdgeId, NodeId)> = None;
    for &v in &rotated {
        for &e in dfg.out_edges(v) {
            let to = dfg.edge(e).to();
            let crosses_out = state.schedule.start(to).is_some_and(|cs| cs < boundary);
            if crosses_out
                && state.retiming.retimed_delay(dfg, e) < 0
                && witness.is_none_or(|(w, _)| e.index() < w.index())
            {
                witness = Some((e, to));
            }
        }
    }
    if let Some((_, node)) = witness {
        state.retiming.undo_set(&rotated, -1);
        return Err(RotationError::NotRotatable { node });
    }
    debug_assert!(
        state.retiming.check_legal(dfg).is_ok(),
        "only edges leaving the suffix can lose their last delay"
    );

    for &v in &rotated {
        state.schedule.clear(v);
    }

    // Make room at the front, then let the incremental scheduler place
    // the rotated nodes at the earliest steps compatible with their
    // (fixed) zero-delay successors.
    state.schedule.shift(i64::from(size));
    scheduler.reschedule(
        dfg,
        Some(&state.retiming),
        resources,
        &mut state.schedule,
        &rotated,
    )?;
    state.schedule.normalize();

    Ok(DownRotateOutcome {
        rotated,
        length: state.schedule.length(dfg),
    })
}

/// Builds the initial rotation state: a `FullSchedule` of the unretimed
/// DAG with the zero rotation function.
///
/// # Errors
///
/// Returns [`RotationError::Graph`] for invalid graphs and
/// [`RotationError::Sched`] for unschedulable ones.
pub fn initial_state(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
) -> Result<RotationState, RotationError> {
    dfg.validate()?;
    let schedule = scheduler.schedule(dfg, None, resources)?;
    Ok(RotationState {
        retiming: Retiming::zero(dfg),
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::DfgBuilder;
    use rotsched_dfg::OpKind;
    use rotsched_sched::validate::check_dag_schedule;

    /// A 4-node ring with two delays on the back edge — rotation can
    /// overlap the two halves.
    fn ring() -> Dfg {
        DfgBuilder::new("ring")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", 2)
            .build()
            .unwrap()
    }

    fn setup(adders: u32) -> (Dfg, ListScheduler, ResourceSet) {
        (
            ring(),
            ListScheduler::default(),
            ResourceSet::adders_multipliers(adders, 0, false),
        )
    }

    #[test]
    fn initial_state_is_a_legal_dag_schedule() {
        let (g, sched, res) = setup(2);
        let st = initial_state(&g, &sched, &res).unwrap();
        assert_eq!(st.length(&g), 4);
        check_dag_schedule(&g, None, &st.schedule, &res).unwrap();
    }

    #[test]
    fn down_rotation_shortens_the_ring() {
        let (g, sched, res) = setup(2);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        // Rotate v0 down: edge v3 -> v0 loses a delay; v0 can overlap
        // with v1's chain. With 2 adders the length drops.
        let out = down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        assert_eq!(out.rotated, vec![g.node_by_name("v0").unwrap()]);
        assert!(out.length <= 4);
        check_dag_schedule(&g, Some(&st.retiming), &st.schedule, &res).unwrap();
        // One more rotation reaches the 2-step steady state
        // (ratio = 4 ops / 2 delays = 2 with enough adders).
        let out = down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        let _ = out;
        let out = down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        assert!(out.length >= 2);
        check_dag_schedule(&g, Some(&st.retiming), &st.schedule, &res).unwrap();
    }

    #[test]
    fn rotation_state_remains_statically_realizable() {
        let (g, sched, res) = setup(2);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        for _ in 0..6 {
            let len = st.length(&g);
            if len <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
            // The schedule must always be realizable as a static schedule
            // of the ORIGINAL graph.
            let r = rotsched_sched::validate::realizing_retiming(&g, &st.schedule)
                .expect("rotation preserves static legality");
            assert!(r.is_legal(&g));
        }
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        let (g, sched, res) = setup(2);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        assert!(matches!(
            down_rotate(&g, &sched, &res, &mut st, 0),
            Err(RotationError::InvalidSize { .. })
        ));
        let len = st.length(&g);
        assert!(matches!(
            down_rotate(&g, &sched, &res, &mut st, len),
            Err(RotationError::InvalidSize { .. })
        ));
    }

    #[test]
    fn rotatability_check_matches_property_1() {
        let g = ring();
        let ids: Vec<_> = g.node_ids().collect();
        let r0 = Retiming::zero(&g);
        // v0 is a root (its only incoming edge has 2 delays).
        assert!(is_down_rotatable(&g, &r0, &[ids[0]]));
        // v1 has a zero-delay edge from v0.
        assert!(!is_down_rotatable(&g, &r0, &[ids[1]]));
        assert_eq!(find_rotatability_witness(&g, &r0, &[ids[1]]), Some(ids[1]));
        // {v0, v1} together are rotatable.
        assert!(is_down_rotatable(&g, &r0, &[ids[0], ids[1]]));
    }

    #[test]
    fn up_rotation_inverts_down_rotation_retiming() {
        let (g, sched, res) = setup(2);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
        assert_eq!(st.retiming.max_value(), 1);
        // Rotate the last step up; if it contains exactly the previously
        // rotated node the retiming returns to zero.
        let len = st.length(&g);
        let _ = len;
        // Up-rotate whatever suffix is rotatable; sizes that are not
        // rotatable report NotRotatable rather than corrupting state.
        match up_rotate(&g, &sched, &res, &mut st, 1) {
            Ok(_) => {
                assert!(st.retiming.is_legal(&g));
                check_dag_schedule(&g, Some(&st.retiming), &st.schedule, &res).unwrap();
            }
            Err(RotationError::NotRotatable { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn down_rotate_result_is_already_normalized() {
        // Regression for the redundant second normalize that used to run
        // after rescheduling: the fixed remainder pins control step 1, so
        // rotation must hand back an already-normalized schedule with
        // unchanged starts and length.
        let (g, sched, res) = setup(1);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        for _ in 0..5 {
            if st.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
            assert_eq!(st.schedule.first_step(), Some(1));
            let mut renormalized = st.schedule.clone();
            renormalized.normalize();
            assert_eq!(renormalized, st.schedule, "second normalize is a no-op");
        }
    }

    #[test]
    fn multicycle_rotation_may_lengthen_then_wrap_recovers() {
        // Two-cycle mult feeding an add in a tight loop; rotating the
        // mult's producer can dangle a tail (Section 4).
        let g = DfgBuilder::new("mc")
            .node("m", OpKind::Mul, 2)
            .node("a", OpKind::Add, 1)
            .node("b", OpKind::Add, 1)
            .wire("m", "a")
            .wire("a", "b")
            .edge("b", "m", 2)
            .build()
            .unwrap();
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(1, 1, false);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        assert_eq!(st.length(&g), 4);
        for _ in 0..3 {
            if st.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut st, 1).unwrap();
            let wrapped = st.wrapped_length(&g, &res).unwrap();
            assert!(wrapped <= st.length(&g));
        }
    }
}
