//! Parallel portfolio rotation search with bound-based pruning.
//!
//! Rotation scheduling explores many independent search configurations:
//! Heuristic 1 runs one phase per rotation size, Heuristic 2 can be
//! re-run under different priority policies, and experiment sweeps
//! evaluate many benchmark × resource-config cells. All of these are
//! embarrassingly parallel — no configuration reads another's state —
//! so this module fans them out across scoped worker threads
//! ([`std::thread::scope`]; no external runtime) while keeping the
//! result **bit-for-bit deterministic** in the thread count.
//!
//! ## The determinism protocol
//!
//! Tasks are indexed `0..n`. Two shared atomics coordinate pruning:
//!
//! * `incumbent` — the best packed [`Score`] published by any task
//!   (under the default objective: the best wrapped length). Monotone
//!   via `fetch_min` on the packed word; **advisory only** (its value
//!   depends on thread timing, so it never drives control flow).
//! * `achiever` — the lowest task index whose own best reached the
//!   combined recurrence + resource lower bound
//!   ([`rotsched_baselines::lower_bound`]). Also `fetch_min`.
//!
//! A task stops early in exactly two cases, both safe:
//!
//! 1. **Self-prune** — its own best equals the lower bound. This
//!    depends only on task-local state, so it fires at the same point
//!    regardless of the thread count.
//! 2. **Cross-prune** — `achiever` holds a *strictly lower* task
//!    index. Such a task's result is discarded by the merge rule below,
//!    so truncating its search cannot change the outcome.
//!
//! Merge rule: let `c` be the lowest-indexed task whose final best
//! equals the bound. If `c` exists, the portfolio result is task `c`'s
//! best set alone; otherwise it is the capacity-capped union of every
//! task's best set, folded in index order. An induction over task
//! indices shows `c` (and its entire search trajectory) is independent
//! of scheduling: a task can only record itself as achiever if its
//! untruncated run would reach the bound, and it can only be truncated
//! by a strictly lower achiever — so every task below and including the
//! first true achiever runs exactly as it would sequentially.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::thread;

use rotsched_baselines::lower_bound;
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

use crate::budget::{Budget, BudgetMeter, StopReason};
use crate::engine::{NoopObserver, SearchDriver, SearchObserver};
use crate::error::RotationError;
use crate::heuristics::HeuristicConfig;
use crate::objective::{Objective, Score};
use crate::phase::{BestSet, PhaseStats};
use crate::rotate::{initial_state, RotationState};
use crate::trace::{SearchTrace, TaskTrace, TraceRecorder};

/// The shared pruning state of one portfolio run.
///
/// The incumbent is a packed [`Score`] in a single `AtomicU64`: because
/// scores are totally ordered as integers, the lock-free `fetch_min`
/// protocol (and its determinism argument) carries over from the scalar
/// days unchanged, whatever the objective.
#[derive(Debug)]
pub struct SharedBound {
    bound: u32,
    incumbent: AtomicU64,
    achiever: AtomicU32,
}

impl SharedBound {
    /// A fresh shared state for the given combined lower bound.
    #[must_use]
    pub fn new(bound: u32) -> Self {
        SharedBound {
            bound,
            incumbent: AtomicU64::new(Score::NONE.to_bits()),
            achiever: AtomicU32::new(u32::MAX),
        }
    }

    /// The combined recurrence + resource lower bound in effect. The
    /// bound constrains only the length component: a task achieves it
    /// exactly when its score is at most [`Score::from_length`] of the
    /// bound (for the default objective: its length reached the bound).
    #[must_use]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// The best score any task has published so far (advisory —
    /// timing-dependent while workers are running).
    #[must_use]
    pub fn incumbent(&self) -> Score {
        Score::from_bits(self.incumbent.load(Ordering::Relaxed))
    }

    /// A pruning handle for the task with the given index.
    #[must_use]
    pub fn signal(&self, task_index: u32) -> PruneSignal<'_> {
        PruneSignal {
            shared: self,
            task_index,
        }
    }
}

/// A task's handle onto the shared pruning state.
#[derive(Clone, Copy, Debug)]
pub struct PruneSignal<'a> {
    shared: &'a SharedBound,
    task_index: u32,
}

impl PruneSignal<'_> {
    /// True when `own_best` proves the task can stop on its own: its
    /// score is at or below the length-only packed bound. For the
    /// default objective this is exactly "length reached the bound";
    /// for multi-criteria objectives it additionally requires zero
    /// secondary components — a conservative rule (pruning less can
    /// only explore more), and deterministic either way because it
    /// reads only task-local state.
    fn achieves_bound(&self, own_best: Score) -> bool {
        !own_best.is_none() && own_best <= Score::from_length(self.shared.bound)
    }

    /// Publishes the task's current best score. Marks this task as a
    /// bound achiever when the score reaches the packed lower bound —
    /// never for scores above it, and lengths *below* the bound cannot
    /// occur (the bound is proven; see the pruning test).
    pub fn record(&self, own_best: Score) {
        self.shared
            .incumbent
            .fetch_min(own_best.to_bits(), Ordering::Relaxed);
        if self.achieves_bound(own_best) {
            self.shared
                .achiever
                .fetch_min(self.task_index, Ordering::Relaxed);
        }
    }

    /// Should this task stop searching? True on self-prune (own best
    /// reached the lower bound — deterministic) or cross-prune (a
    /// strictly lower-indexed task reached it — result discarded by the
    /// canonical merge, so stopping is unobservable).
    #[must_use]
    pub fn should_stop(&self, own_best: Score) -> bool {
        self.achieves_bound(own_best) || self.lost_to_lower_task()
    }

    /// True when a strictly lower-indexed task has achieved the bound.
    #[must_use]
    pub fn lost_to_lower_task(&self) -> bool {
        self.shared.achiever.load(Ordering::Relaxed) < self.task_index
    }
}

/// One independent search configuration of a portfolio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchTask {
    /// One Heuristic-1 rotation phase: `alpha` rotations of size `size`
    /// starting from the initial list schedule.
    Phase {
        /// Rotation size `i`.
        size: u32,
        /// Down-rotations to perform (`α`).
        alpha: usize,
        /// Priority policy for the list scheduler.
        policy: PriorityPolicy,
    },
    /// A full Heuristic-2 descending sweep with its own knobs.
    Sweep {
        /// The heuristic configuration (`α`, `β`, rounds, retention).
        config: HeuristicConfig,
        /// Priority policy for the list scheduler.
        policy: PriorityPolicy,
    },
    /// Test-only: a task that panics on entry, exercising the panic
    /// isolation path. Never produced by [`Portfolio::standard`].
    #[doc(hidden)]
    PanicForTest,
}

impl SearchTask {
    /// A short human-readable label ("h1/size=3/DescendantCount").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SearchTask::Phase {
                size,
                alpha,
                policy,
            } => {
                format!("h1/size={size}/alpha={alpha}/{policy:?}")
            }
            SearchTask::Sweep { config, policy } => format!(
                "h2/alpha={}/rounds={}/{policy:?}",
                config.rotations_per_phase, config.rounds
            ),
            SearchTask::PanicForTest => "panic-for-test".to_string(),
        }
    }
}

/// How one portfolio task ended — the structured per-task verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TaskOutcome {
    /// The task ran its full search (possibly self-pruning at the
    /// proven lower bound).
    Completed,
    /// The task was cut short by a strictly lower-indexed bound
    /// achiever; its result is discarded by the canonical merge.
    Pruned,
    /// A [`Budget`] limit (deadline, rotation budget, or cancellation)
    /// fired inside the task; its incumbent best still participates.
    TimedOut,
    /// The task panicked. The portfolio degrades to the surviving
    /// workers' results instead of unwinding.
    Panicked,
}

impl core::fmt::Display for TaskOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TaskOutcome::Completed => "completed",
            TaskOutcome::Pruned => "pruned",
            TaskOutcome::TimedOut => "timed out",
            TaskOutcome::Panicked => "panicked",
        })
    }
}

/// Per-task summary of a portfolio run.
///
/// For tasks above the canonical achiever these numbers are
/// timing-dependent (the task may have been cross-pruned at any point);
/// they are reported for diagnostics, never for results.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// The task's label.
    pub label: String,
    /// The task's own best length, if it admitted any schedule.
    pub best_length: Option<u32>,
    /// Down-rotations the task performed.
    pub rotations: usize,
    /// Whether the task was stopped by a lower-indexed bound achiever.
    pub cross_pruned: bool,
    /// How the task ended.
    pub outcome: TaskOutcome,
}

/// The deterministic result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// Best (wrapped) schedule length found.
    pub best_length: u32,
    /// Best packed score found; its length component is `best_length`.
    pub best_score: Score,
    /// The canonical best set: the lowest-indexed bound achiever's `Q`
    /// when the bound was reached, else the capacity-capped union of
    /// all tasks' sets in index order. `best[0]` is the canonical
    /// winner. Identical for every thread count.
    pub best: Vec<RotationState>,
    /// The combined recurrence + resource lower bound used for pruning.
    pub lower_bound: u32,
    /// Whether some task reached the lower bound (proving optimality).
    pub bound_achieved: bool,
    /// Index of the canonical achiever task, when the bound was reached.
    pub canonical_task: Option<usize>,
    /// Phase statistics from the deterministic part of the run: tasks
    /// `0..=canonical_task` when the bound was achieved, all tasks
    /// otherwise. Identical for every thread count.
    pub phases: Vec<PhaseStats>,
    /// Total rotations in `phases`.
    pub total_rotations: usize,
    /// Advisory per-task summaries (timing-dependent above the
    /// canonical achiever).
    pub reports: Vec<TaskReport>,
    /// How many tasks panicked (each isolated; the portfolio degraded
    /// to the survivors).
    pub panicked_tasks: usize,
    /// Why the run stopped early, if a [`Budget`] limit fired in any
    /// worker; `None` when every surviving task ran to completion.
    pub stopped: Option<StopReason>,
}

/// A portfolio: an indexed task list plus execution knobs.
#[derive(Clone, Debug)]
pub struct Portfolio {
    /// The search configurations, in canonical (tie-break) order.
    pub tasks: Vec<SearchTask>,
    /// Worker threads (`0` or `1` runs on the caller's thread).
    pub jobs: usize,
    /// Capacity of the merged best set.
    pub keep_best: usize,
    /// The solve budget, armed once per [`Portfolio::run`] and shared by
    /// every worker (a rotation budget is global across tasks). Defaults
    /// to unlimited.
    pub budget: Budget,
    /// The objective every task minimizes. Defaults to
    /// [`Objective::Length`], under which the run is bit-identical to
    /// the scalar-length portfolio.
    pub objective: Objective,
}

impl Portfolio {
    /// The standard portfolio for a problem instance: Heuristic 1's
    /// phases of sizes `1..=β` under the paper's policy, then one
    /// Heuristic-2 sweep per priority policy. Task order fixes the
    /// canonical tie-break.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures from the initial list
    /// schedule (needed to determine `β`).
    pub fn standard(
        dfg: &Dfg,
        resources: &ResourceSet,
        config: &HeuristicConfig,
    ) -> Result<Self, RotationError> {
        let init = initial_state(dfg, &ListScheduler::default(), resources)?;
        let beta = config.max_size.unwrap_or_else(|| init.length(dfg)).max(1);
        let mut tasks = Vec::new();
        for size in 1..=beta {
            tasks.push(SearchTask::Phase {
                size,
                alpha: config.rotations_per_phase,
                policy: PriorityPolicy::default(),
            });
        }
        for policy in [
            PriorityPolicy::DescendantCount,
            PriorityPolicy::PathHeight,
            PriorityPolicy::Mobility,
            PriorityPolicy::InputOrder,
        ] {
            tasks.push(SearchTask::Sweep {
                config: *config,
                policy,
            });
        }
        Ok(Portfolio {
            tasks,
            jobs: 1,
            keep_best: config.keep_best,
            budget: Budget::unlimited(),
            objective: Objective::Length,
        })
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the solve budget (see [`Budget`]). Unlimited by default —
    /// and an unlimited budget leaves the run bit-identical to one
    /// without any budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the objective every task minimizes (see [`Objective`]).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Runs every task and merges the results deterministically.
    ///
    /// Each worker's phases run through their own
    /// [`RotationContext`](crate::RotationContext) (built per phase
    /// inside its [`SearchDriver`]), so the incremental state is never
    /// shared across threads and the merged outcome is identical for
    /// every job count.
    ///
    /// Workers are panic-isolated: a task that panics is reported as
    /// [`TaskOutcome::Panicked`] and the portfolio degrades to the
    /// surviving workers' best rather than unwinding. The configured
    /// [`Budget`] is armed once here and shared by every worker.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed task failure, lower-bound
    /// computation failures, and [`RotationError::WorkerPanicked`] when
    /// *every* task panicked (nothing left to degrade to).
    pub fn run(
        &self,
        dfg: &Dfg,
        resources: &ResourceSet,
    ) -> Result<PortfolioOutcome, RotationError> {
        // The untraced path monomorphizes over `NoopObserver`, so it is
        // the pre-observer loop, instruction for instruction.
        self.run_with(dfg, resources, |_| NoopObserver)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`Portfolio::run`], but every worker records its driver
    /// events into a [`TraceRecorder`] with the given ring capacity.
    ///
    /// The returned trace keeps the **deterministic prefix** of the
    /// task list — tasks `0..=canonical_task` when the bound was
    /// achieved, all tasks otherwise (the same rule
    /// [`PortfolioOutcome::phases`] follows). Tasks above the canonical
    /// achiever are cross-pruned at timing-dependent points, so their
    /// streams are discarded; everything kept, and the outcome itself,
    /// is bit-identical for every job count (tasks at or below the
    /// canonical achiever can never observe a cross-prune, because any
    /// recorded achiever index is at least the canonical one). A
    /// panicked task leaves an empty placeholder trace.
    ///
    /// # Errors
    ///
    /// Exactly [`Portfolio::run`]'s errors.
    pub fn run_traced(
        &self,
        dfg: &Dfg,
        resources: &ResourceSet,
        capacity: usize,
    ) -> Result<(PortfolioOutcome, SearchTrace), RotationError> {
        let (outcome, observers) =
            self.run_with(dfg, resources, |_| TraceRecorder::new(capacity))?;
        let keep = outcome.canonical_task.map_or(observers.len(), |c| c + 1);
        let tasks = observers
            .into_iter()
            .take(keep)
            .map(|o| o.map_or_else(TaskTrace::default, TraceRecorder::finish))
            .collect();
        Ok((outcome, SearchTrace { tasks }))
    }

    /// The generic engine under [`Portfolio::run`] and
    /// [`Portfolio::run_traced`]: one observer per task, returned in
    /// index order (`None` for a panicked task).
    fn run_with<O, F>(
        &self,
        dfg: &Dfg,
        resources: &ResourceSet,
        make_observer: F,
    ) -> Result<(PortfolioOutcome, Vec<Option<O>>), RotationError>
    where
        O: SearchObserver + Send,
        F: Fn(usize) -> O + Sync,
    {
        let bound = u32::try_from(lower_bound(dfg, resources)?).unwrap_or(u32::MAX - 1);
        let shared = SharedBound::new(bound);
        // Arm only when limited so the unlimited path provably does no
        // budget work at all (bit-identical to the pre-budget API).
        let meter = (!self.budget.is_unlimited()).then(|| self.budget.arm());
        let runs = parallel_indexed_isolated(self.jobs, self.tasks.len(), |i| {
            let index = u32::try_from(i).unwrap_or(u32::MAX);
            run_task_with(
                dfg,
                resources,
                &self.tasks[i],
                self.keep_best,
                self.objective,
                &shared.signal(index),
                meter.as_ref(),
                make_observer(i),
            )
        });

        // Unpack the isolation layer: a panicked worker degrades to an
        // empty placeholder (it can never be the canonical achiever); a
        // worker that returned an error propagates it, lowest index
        // first, exactly as the sequential path would.
        let mut completed: Vec<(TaskRun, bool)> = Vec::with_capacity(runs.len());
        let mut observers: Vec<Option<O>> = Vec::with_capacity(runs.len());
        let mut first_panic: Option<(usize, String)> = None;
        let mut panicked_tasks = 0;
        for (i, run) in runs.into_iter().enumerate() {
            match run {
                Ok(result) => {
                    let (task_run, observer) = result?;
                    completed.push((task_run, false));
                    observers.push(Some(observer));
                }
                Err(payload) => {
                    panicked_tasks += 1;
                    if first_panic.is_none() {
                        first_panic = Some((i, panic_message(payload.as_ref())));
                    }
                    completed.push((
                        TaskRun {
                            best: BestSet::new(self.keep_best),
                            phases: Vec::new(),
                            cross_pruned: false,
                        },
                        true,
                    ));
                    observers.push(None);
                }
            }
        }
        if panicked_tasks == self.tasks.len() && panicked_tasks > 0 {
            let (task, message) = first_panic.unwrap_or((0, String::new()));
            return Err(RotationError::WorkerPanicked { task, message });
        }

        let reports = self
            .tasks
            .iter()
            .zip(&completed)
            .map(|(task, (run, panicked))| TaskReport {
                label: task.label(),
                best_length: (!run.best.score.is_none()).then(|| run.best.length()),
                rotations: run.phases.iter().map(|p| p.rotations).sum(),
                cross_pruned: run.cross_pruned,
                outcome: if *panicked {
                    TaskOutcome::Panicked
                } else if run.phases.iter().any(|p| p.stopped.is_some()) {
                    TaskOutcome::TimedOut
                } else if run.cross_pruned {
                    TaskOutcome::Pruned
                } else {
                    TaskOutcome::Completed
                },
            })
            .collect();
        let stopped = completed
            .iter()
            .flat_map(|(run, _)| run.phases.iter())
            .find_map(|p| p.stopped);
        let completed: Vec<TaskRun> = completed.into_iter().map(|(run, _)| run).collect();

        let canonical_task = completed.iter().position(|run| {
            !run.best.score.is_none() && run.best.score <= Score::from_length(bound)
        });
        let mut best = BestSet::new(self.keep_best);
        let mut phases = Vec::new();
        match canonical_task {
            Some(c) => {
                // The canonical achiever ran exactly as it would have
                // sequentially; its set IS the portfolio result.
                for (i, run) in completed.into_iter().enumerate() {
                    if i <= c {
                        phases.extend(run.phases);
                    }
                    if i == c {
                        best = run.best;
                        break;
                    }
                }
            }
            None => {
                // No pruning ever fired, so every task completed its
                // full deterministic search: union in index order.
                for run in completed {
                    phases.extend(run.phases);
                    best.merge(run.best);
                }
            }
        }
        Ok((
            PortfolioOutcome {
                best_length: best.length(),
                best_score: best.score,
                lower_bound: bound,
                bound_achieved: canonical_task.is_some(),
                canonical_task,
                total_rotations: phases.iter().map(|p| p.rotations).sum(),
                phases,
                best: best.schedules,
                reports,
                panicked_tasks,
                stopped,
            },
            observers,
        ))
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one task produced.
struct TaskRun {
    best: BestSet,
    phases: Vec<PhaseStats>,
    cross_pruned: bool,
}

/// Runs one task through a [`SearchDriver`] monomorphized over the
/// worker's observer, returning the observer alongside the result so
/// traced runs can reclaim their recorders.
#[allow(clippy::too_many_arguments)]
fn run_task_with<O: SearchObserver>(
    dfg: &Dfg,
    resources: &ResourceSet,
    task: &SearchTask,
    keep_best: usize,
    objective: Objective,
    signal: &PruneSignal<'_>,
    budget: Option<&BudgetMeter>,
    observer: O,
) -> Result<(TaskRun, O), RotationError> {
    if signal.lost_to_lower_task() {
        // A lower-indexed task already proved the bound: this task's
        // result would be discarded, so skip the work entirely.
        return Ok((
            TaskRun {
                best: BestSet::new(keep_best),
                phases: Vec::new(),
                cross_pruned: true,
            },
            observer,
        ));
    }
    match task {
        SearchTask::Phase {
            size,
            alpha,
            policy,
        } => {
            let scheduler = ListScheduler::new(*policy);
            let mut driver = SearchDriver::incremental(dfg, &scheduler, resources)
                .with_prune(Some(signal))
                .with_budget(budget)
                .with_objective(objective)
                .with_observer(observer);
            let mut state = initial_state(dfg, &scheduler, resources)?;
            let mut best = BestSet::new(keep_best);
            let wrapped = state.wrapped_length(dfg, resources)?;
            driver.offer(&mut best, wrapped, &state);
            let stats = driver.run_phase(&mut state, &mut best, *size, *alpha)?;
            Ok((
                TaskRun {
                    best,
                    phases: vec![stats],
                    cross_pruned: signal.lost_to_lower_task(),
                },
                driver.observer,
            ))
        }
        SearchTask::Sweep { config, policy } => {
            let scheduler = ListScheduler::new(*policy);
            let mut driver = SearchDriver::incremental(dfg, &scheduler, resources)
                .with_prune(Some(signal))
                .with_budget(budget)
                .with_objective(objective)
                .with_observer(observer);
            let out = driver.heuristic2(config)?;
            let mut best = BestSet::new(config.keep_best);
            for state in out.best {
                let _ = best.offer_owned(out.best_score, state);
            }
            Ok((
                TaskRun {
                    best,
                    phases: out.phases,
                    cross_pruned: signal.lost_to_lower_task(),
                },
                driver.observer,
            ))
        }
        SearchTask::PanicForTest => panic!("injected test panic"),
    }
}

/// Runs `count` independent jobs `run(0), …, run(count - 1)` on up to
/// `jobs` scoped worker threads and returns the results **in index
/// order**. With `jobs <= 1` (or a single job) everything runs on the
/// caller's thread — byte-identical to the parallel path for
/// deterministic `run` functions.
///
/// Workers claim indices from a shared atomic counter, so long and
/// short jobs balance without any up-front partitioning. This is the
/// engine under the portfolio and under the experiment sweeps'
/// benchmark × resource-config cells.
///
/// A panicking job does not tear down its worker thread or the other
/// jobs: every remaining index still runs. The first (lowest-index)
/// panic is re-raised on the caller's thread after all results are
/// collected, preserving the sequential path's observable behavior.
/// Callers that want to *survive* panics use
/// [`parallel_indexed_isolated`] instead.
pub fn parallel_indexed<T, F>(jobs: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut results = Vec::with_capacity(count);
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for run in parallel_indexed_isolated(jobs, count, run) {
        match run {
            Ok(value) => results.push(value),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    results
}

/// One isolated job's outcome: the job's value, or the panic payload it
/// unwound with.
pub type IsolatedResult<T> = Result<T, Box<dyn Any + Send>>;

/// The worker-thread count a request for `jobs` threads over `count`
/// tasks actually runs with: at least 1, at most `count`, and never
/// more than [`std::thread::available_parallelism`] — oversubscribing a
/// smaller machine only adds context-switch overhead (the outcome is
/// deterministic in the thread count, so the clamp never changes
/// results). Benchmarks report this next to the requested value.
#[must_use]
pub fn effective_jobs(jobs: usize, count: usize) -> usize {
    let hardware =
        std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
    jobs.max(1).min(count.max(1)).min(hardware)
}

/// The panic-isolating core of [`parallel_indexed`]: identical
/// scheduling, but each job runs under
/// [`catch_unwind`] and its slot reports
/// `Err(payload)` instead of unwinding. Job-count-independent: the
/// sequential (`jobs <= 1`) path isolates exactly like the parallel one.
///
/// Isolation is sound here because jobs are independent by contract —
/// a job observes no other job's state, so a panicked job leaves
/// nothing half-mutated that a survivor could read (the portfolio's
/// shared pruning atomics are monotone and single-word, safe to observe
/// at any point).
pub fn parallel_indexed_isolated<T, F>(jobs: usize, count: usize, run: F) -> Vec<IsolatedResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs, count);
    let isolated = |i: usize| catch_unwind(AssertUnwindSafe(|| run(i)));
    if jobs <= 1 {
        return (0..count).map(isolated).collect();
    }
    let next = AtomicUsize::new(0);
    let isolated = &isolated;
    let mut indexed: Vec<(usize, IsolatedResult<T>)> = thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, isolated(i)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker loop itself never panics"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring(n: usize, delays: u32) -> Dfg {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        DfgBuilder::new("ring")
            .nodes("v", n, OpKind::Add, 1)
            .chain(&refs)
            .edge(&format!("v{}", n - 1), "v0", delays)
            .build()
            .unwrap()
    }

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        }
    }

    #[test]
    fn parallel_indexed_returns_results_in_index_order() {
        for jobs in [0, 1, 2, 7, 64] {
            let out = parallel_indexed(jobs, 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn effective_jobs_clamps_to_tasks_and_hardware() {
        let hardware =
            std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
        assert_eq!(effective_jobs(0, 5), 1);
        assert_eq!(effective_jobs(1, 0), 1);
        assert_eq!(effective_jobs(8, 3), 3.min(hardware));
        assert!(effective_jobs(usize::MAX, usize::MAX) <= hardware);
        // Requests within both limits pass through unchanged.
        assert_eq!(effective_jobs(1, 100), 1);
    }

    #[test]
    fn parallel_indexed_handles_empty_and_single() {
        assert!(parallel_indexed(4, 0, |i| i).is_empty());
        assert_eq!(parallel_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn pruning_never_fires_below_the_lower_bound() {
        let shared = SharedBound::new(3);
        let sig = shared.signal(5);
        // Above the bound: no stop, no achiever.
        sig.record(Score::from_length(4));
        assert!(!sig.should_stop(Score::from_length(4)));
        assert!(!sig.lost_to_lower_task());
        assert_eq!(shared.incumbent(), Score::from_length(4));
        // Unachieved sentinel never registers.
        assert!(!sig.should_stop(Score::NONE));
        // At the bound: self-prune fires and the achiever is recorded.
        sig.record(Score::from_length(3));
        assert!(sig.should_stop(Score::from_length(3)));
        // Higher-indexed tasks cross-prune; lower-indexed ones do not.
        assert!(shared.signal(6).lost_to_lower_task());
        assert!(!shared.signal(5).lost_to_lower_task());
        assert!(!shared.signal(2).lost_to_lower_task());
        assert!(
            shared.signal(2).should_stop(Score::from_length(3)),
            "self-prune still applies"
        );
    }

    #[test]
    fn multi_criteria_scores_only_achieve_the_bound_with_zero_secondaries() {
        let shared = SharedBound::new(3);
        let sig = shared.signal(0);
        // Bound-length kernel with a nonzero secondary: no self-prune
        // (conservative — the search keeps hunting for fewer registers).
        sig.record(Score::new(3, 2, 0));
        assert!(!sig.should_stop(Score::new(3, 2, 0)));
        assert!(!shared.signal(1).lost_to_lower_task());
        // Zero secondaries at the bound: the scalar rule again.
        sig.record(Score::new(3, 0, 0));
        assert!(sig.should_stop(Score::new(3, 0, 0)));
        assert!(shared.signal(1).lost_to_lower_task());
    }

    #[test]
    fn achiever_takes_the_minimum_task_index() {
        let shared = SharedBound::new(2);
        shared.signal(9).record(Score::from_length(2));
        shared.signal(4).record(Score::from_length(2));
        shared.signal(7).record(Score::from_length(2));
        assert!(shared.signal(5).lost_to_lower_task());
        assert!(!shared.signal(4).lost_to_lower_task());
    }

    #[test]
    fn standard_portfolio_reaches_the_bound_on_a_ring() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let out = p.run(&g, &res).unwrap();
        assert_eq!(out.best_length, 2, "IB = 6/3 = 2");
        assert!(out.bound_achieved);
        assert_eq!(out.lower_bound, 2);
        assert!(out.canonical_task.is_some());
        assert!(!out.best.is_empty());
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        let g = ring(7, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let baseline = p.clone().with_jobs(1).run(&g, &res).unwrap();
        for jobs in [2, 3, 8] {
            let out = p.clone().with_jobs(jobs).run(&g, &res).unwrap();
            assert_eq!(out.best_length, baseline.best_length);
            assert_eq!(out.best, baseline.best, "jobs={jobs}");
            assert_eq!(out.canonical_task, baseline.canonical_task);
            assert_eq!(out.phases, baseline.phases);
        }
    }

    #[test]
    fn portfolio_never_worsens_heuristic2() {
        use crate::heuristics::heuristic2;
        for delays in 1..=3 {
            let g = ring(6, delays);
            let res = ResourceSet::adders_multipliers(2, 0, false);
            let solo = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
            let p = Portfolio::standard(&g, &res, &config()).unwrap();
            let out = p.with_jobs(4).run(&g, &res).unwrap();
            assert!(out.best_length <= solo.best_length);
            assert!(out.best_length >= out.lower_bound, "bound is sound");
        }
    }

    #[test]
    fn reports_cover_every_task() {
        let g = ring(5, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let n = p.tasks.len();
        let out = p.run(&g, &res).unwrap();
        assert_eq!(out.reports.len(), n);
        assert!(out.reports.iter().all(|r| !r.label.is_empty()));
        assert_eq!(out.panicked_tasks, 0);
        assert!(out
            .reports
            .iter()
            .all(|r| r.outcome != TaskOutcome::Panicked));
    }

    #[test]
    fn isolated_engine_survives_panicking_jobs() {
        for jobs in [1, 2, 8] {
            let out = parallel_indexed_isolated(jobs, 9, |i| {
                assert!(i % 3 != 1, "boom at {i}");
                i * 10
            });
            assert_eq!(out.len(), 9);
            for (i, slot) in out.iter().enumerate() {
                if i % 3 == 1 {
                    assert!(slot.is_err(), "jobs={jobs} index {i} should panic");
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom at 4")]
    fn non_isolated_engine_reraises_the_lowest_index_panic() {
        // Indices 4 and 7 both panic; the re-raise must pick 4.
        let _ = parallel_indexed(3, 9, |i| {
            assert!(i != 4 && i != 7, "boom at {i}");
            i
        });
    }

    #[test]
    fn panicking_task_degrades_the_portfolio() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let clean = Portfolio::standard(&g, &res, &config()).unwrap();
        let mut p = clean.clone();
        // Inject the crash *first* so it cannot hide behind cross-pruning.
        p.tasks.insert(0, SearchTask::PanicForTest);
        for jobs in [1, 2, 4] {
            let out = p.clone().with_jobs(jobs).run(&g, &res).unwrap();
            assert_eq!(out.panicked_tasks, 1, "jobs={jobs}");
            assert_eq!(out.reports[0].outcome, TaskOutcome::Panicked);
            assert_eq!(out.reports[0].best_length, None);
            let baseline = clean.clone().with_jobs(jobs).run(&g, &res).unwrap();
            assert_eq!(
                out.best_length, baseline.best_length,
                "survivors' best is unaffected"
            );
        }
    }

    #[test]
    fn all_tasks_panicking_is_an_error_not_an_abort() {
        let g = ring(4, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio {
            tasks: vec![SearchTask::PanicForTest, SearchTask::PanicForTest],
            jobs: 2,
            keep_best: 4,
            budget: Budget::unlimited(),
            objective: Objective::Length,
        };
        match p.run(&g, &res) {
            Err(RotationError::WorkerPanicked { task, message }) => {
                assert_eq!(task, 0);
                assert!(message.contains("injected test panic"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn zero_rotation_budget_still_returns_the_initial_incumbent() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config())
            .unwrap()
            .with_budget(Budget::default().with_max_rotations(0));
        let out = p.run(&g, &res).unwrap();
        assert_eq!(out.total_rotations, 0);
        assert!(out.stopped.is_some());
        assert!(
            !out.best.is_empty(),
            "initial list schedules are the incumbents"
        );
    }

    #[test]
    fn unlimited_budget_matches_the_budgetless_run() {
        let g = ring(7, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let plain = p.clone().run(&g, &res).unwrap();
        let budgeted = p.with_budget(Budget::unlimited()).run(&g, &res).unwrap();
        assert_eq!(plain.best_length, budgeted.best_length);
        assert_eq!(plain.best, budgeted.best);
        assert_eq!(plain.phases, budgeted.phases);
        assert_eq!(budgeted.stopped, None);
    }
}
