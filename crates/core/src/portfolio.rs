//! Parallel portfolio rotation search with bound-based pruning.
//!
//! Rotation scheduling explores many independent search configurations:
//! Heuristic 1 runs one phase per rotation size, Heuristic 2 can be
//! re-run under different priority policies, and experiment sweeps
//! evaluate many benchmark × resource-config cells. All of these are
//! embarrassingly parallel — no configuration reads another's state —
//! so this module fans them out across scoped worker threads
//! ([`std::thread::scope`]; no external runtime) while keeping the
//! result **bit-for-bit deterministic** in the thread count.
//!
//! ## The determinism protocol
//!
//! Tasks are indexed `0..n`. Two shared atomics coordinate pruning:
//!
//! * `incumbent` — the best (wrapped) length published by any task.
//!   Monotone via `fetch_min`; **advisory only** (its value depends on
//!   thread timing, so it never drives control flow).
//! * `achiever` — the lowest task index whose own best reached the
//!   combined recurrence + resource lower bound
//!   ([`rotsched_baselines::lower_bound`]). Also `fetch_min`.
//!
//! A task stops early in exactly two cases, both safe:
//!
//! 1. **Self-prune** — its own best equals the lower bound. This
//!    depends only on task-local state, so it fires at the same point
//!    regardless of the thread count.
//! 2. **Cross-prune** — `achiever` holds a *strictly lower* task
//!    index. Such a task's result is discarded by the merge rule below,
//!    so truncating its search cannot change the outcome.
//!
//! Merge rule: let `c` be the lowest-indexed task whose final best
//! equals the bound. If `c` exists, the portfolio result is task `c`'s
//! best set alone; otherwise it is the capacity-capped union of every
//! task's best set, folded in index order. An induction over task
//! indices shows `c` (and its entire search trajectory) is independent
//! of scheduling: a task can only record itself as achiever if its
//! untruncated run would reach the bound, and it can only be truncated
//! by a strictly lower achiever — so every task below and including the
//! first true achiever runs exactly as it would sequentially.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::thread;

use rotsched_baselines::lower_bound;
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

use crate::error::RotationError;
use crate::heuristics::{heuristic2_pruned, HeuristicConfig};
use crate::phase::{rotation_phase_pruned, BestSet, PhaseStats};
use crate::rotate::{initial_state, RotationState};

/// Sentinel for "no schedule yet" — a [`BestSet`] that never admitted.
const NO_LENGTH: u32 = u32::MAX;

/// The shared pruning state of one portfolio run.
#[derive(Debug)]
pub struct SharedBound {
    bound: u32,
    incumbent: AtomicU32,
    achiever: AtomicU32,
}

impl SharedBound {
    /// A fresh shared state for the given combined lower bound.
    #[must_use]
    pub fn new(bound: u32) -> Self {
        SharedBound {
            bound,
            incumbent: AtomicU32::new(NO_LENGTH),
            achiever: AtomicU32::new(u32::MAX),
        }
    }

    /// The combined recurrence + resource lower bound in effect.
    #[must_use]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// The best length any task has published so far (advisory —
    /// timing-dependent while workers are running).
    #[must_use]
    pub fn incumbent(&self) -> u32 {
        self.incumbent.load(Ordering::Relaxed)
    }

    /// A pruning handle for the task with the given index.
    #[must_use]
    pub fn signal(&self, task_index: u32) -> PruneSignal<'_> {
        PruneSignal {
            shared: self,
            task_index,
        }
    }
}

/// A task's handle onto the shared pruning state.
#[derive(Clone, Copy, Debug)]
pub struct PruneSignal<'a> {
    shared: &'a SharedBound,
    task_index: u32,
}

impl PruneSignal<'_> {
    /// Publishes the task's current best length. Marks this task as a
    /// bound achiever when the length reaches the lower bound — never
    /// for lengths above it, and lengths *below* the bound cannot occur
    /// (the bound is proven; see the pruning test).
    pub fn record(&self, own_best: u32) {
        self.shared.incumbent.fetch_min(own_best, Ordering::Relaxed);
        if own_best != NO_LENGTH && own_best <= self.shared.bound {
            self.shared
                .achiever
                .fetch_min(self.task_index, Ordering::Relaxed);
        }
    }

    /// Should this task stop searching? True on self-prune (own best
    /// reached the lower bound — deterministic) or cross-prune (a
    /// strictly lower-indexed task reached it — result discarded by the
    /// canonical merge, so stopping is unobservable).
    #[must_use]
    pub fn should_stop(&self, own_best: u32) -> bool {
        (own_best != NO_LENGTH && own_best <= self.shared.bound) || self.lost_to_lower_task()
    }

    /// True when a strictly lower-indexed task has achieved the bound.
    #[must_use]
    pub fn lost_to_lower_task(&self) -> bool {
        self.shared.achiever.load(Ordering::Relaxed) < self.task_index
    }
}

/// One independent search configuration of a portfolio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchTask {
    /// One Heuristic-1 rotation phase: `alpha` rotations of size `size`
    /// starting from the initial list schedule.
    Phase {
        /// Rotation size `i`.
        size: u32,
        /// Down-rotations to perform (`α`).
        alpha: usize,
        /// Priority policy for the list scheduler.
        policy: PriorityPolicy,
    },
    /// A full Heuristic-2 descending sweep with its own knobs.
    Sweep {
        /// The heuristic configuration (`α`, `β`, rounds, retention).
        config: HeuristicConfig,
        /// Priority policy for the list scheduler.
        policy: PriorityPolicy,
    },
}

impl SearchTask {
    /// A short human-readable label ("h1/size=3/DescendantCount").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SearchTask::Phase {
                size,
                alpha,
                policy,
            } => {
                format!("h1/size={size}/alpha={alpha}/{policy:?}")
            }
            SearchTask::Sweep { config, policy } => format!(
                "h2/alpha={}/rounds={}/{policy:?}",
                config.rotations_per_phase, config.rounds
            ),
        }
    }
}

/// Per-task summary of a portfolio run.
///
/// For tasks above the canonical achiever these numbers are
/// timing-dependent (the task may have been cross-pruned at any point);
/// they are reported for diagnostics, never for results.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// The task's label.
    pub label: String,
    /// The task's own best length, if it admitted any schedule.
    pub best_length: Option<u32>,
    /// Down-rotations the task performed.
    pub rotations: usize,
    /// Whether the task was stopped by a lower-indexed bound achiever.
    pub cross_pruned: bool,
}

/// The deterministic result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// Best (wrapped) schedule length found.
    pub best_length: u32,
    /// The canonical best set: the lowest-indexed bound achiever's `Q`
    /// when the bound was reached, else the capacity-capped union of
    /// all tasks' sets in index order. `best[0]` is the canonical
    /// winner. Identical for every thread count.
    pub best: Vec<RotationState>,
    /// The combined recurrence + resource lower bound used for pruning.
    pub lower_bound: u32,
    /// Whether some task reached the lower bound (proving optimality).
    pub bound_achieved: bool,
    /// Index of the canonical achiever task, when the bound was reached.
    pub canonical_task: Option<usize>,
    /// Phase statistics from the deterministic part of the run: tasks
    /// `0..=canonical_task` when the bound was achieved, all tasks
    /// otherwise. Identical for every thread count.
    pub phases: Vec<PhaseStats>,
    /// Total rotations in `phases`.
    pub total_rotations: usize,
    /// Advisory per-task summaries (timing-dependent above the
    /// canonical achiever).
    pub reports: Vec<TaskReport>,
}

/// A portfolio: an indexed task list plus execution knobs.
#[derive(Clone, Debug)]
pub struct Portfolio {
    /// The search configurations, in canonical (tie-break) order.
    pub tasks: Vec<SearchTask>,
    /// Worker threads (`0` or `1` runs on the caller's thread).
    pub jobs: usize,
    /// Capacity of the merged best set.
    pub keep_best: usize,
}

impl Portfolio {
    /// The standard portfolio for a problem instance: Heuristic 1's
    /// phases of sizes `1..=β` under the paper's policy, then one
    /// Heuristic-2 sweep per priority policy. Task order fixes the
    /// canonical tie-break.
    ///
    /// # Errors
    ///
    /// Propagates graph and scheduling failures from the initial list
    /// schedule (needed to determine `β`).
    pub fn standard(
        dfg: &Dfg,
        resources: &ResourceSet,
        config: &HeuristicConfig,
    ) -> Result<Self, RotationError> {
        let init = initial_state(dfg, &ListScheduler::default(), resources)?;
        let beta = config.max_size.unwrap_or_else(|| init.length(dfg)).max(1);
        let mut tasks = Vec::new();
        for size in 1..=beta {
            tasks.push(SearchTask::Phase {
                size,
                alpha: config.rotations_per_phase,
                policy: PriorityPolicy::default(),
            });
        }
        for policy in [
            PriorityPolicy::DescendantCount,
            PriorityPolicy::PathHeight,
            PriorityPolicy::Mobility,
            PriorityPolicy::InputOrder,
        ] {
            tasks.push(SearchTask::Sweep {
                config: *config,
                policy,
            });
        }
        Ok(Portfolio {
            tasks,
            jobs: 1,
            keep_best: config.keep_best,
        })
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Runs every task and merges the results deterministically.
    ///
    /// Each worker's phases run through their own
    /// [`RotationContext`](crate::RotationContext) (built per phase
    /// inside [`rotation_phase_pruned`]), so the incremental state is
    /// never shared across threads and the merged outcome is identical
    /// for every job count.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed task failure, and lower-bound
    /// computation failures.
    pub fn run(
        &self,
        dfg: &Dfg,
        resources: &ResourceSet,
    ) -> Result<PortfolioOutcome, RotationError> {
        let bound = u32::try_from(lower_bound(dfg, resources)?).unwrap_or(u32::MAX - 1);
        let shared = SharedBound::new(bound);
        let runs = parallel_indexed(self.jobs, self.tasks.len(), |i| {
            let index = u32::try_from(i).unwrap_or(u32::MAX);
            run_task(
                dfg,
                resources,
                &self.tasks[i],
                self.keep_best,
                &shared.signal(index),
            )
        });
        let mut completed = Vec::with_capacity(runs.len());
        for run in runs {
            completed.push(run?);
        }

        let reports = self
            .tasks
            .iter()
            .zip(&completed)
            .map(|(task, run)| TaskReport {
                label: task.label(),
                best_length: (run.best.length != NO_LENGTH).then_some(run.best.length),
                rotations: run.phases.iter().map(|p| p.rotations).sum(),
                cross_pruned: run.cross_pruned,
            })
            .collect();

        let canonical_task = completed
            .iter()
            .position(|run| run.best.length != NO_LENGTH && run.best.length <= bound);
        let mut best = BestSet::new(self.keep_best);
        let mut phases = Vec::new();
        match canonical_task {
            Some(c) => {
                // The canonical achiever ran exactly as it would have
                // sequentially; its set IS the portfolio result.
                for (i, run) in completed.into_iter().enumerate() {
                    if i <= c {
                        phases.extend(run.phases);
                    }
                    if i == c {
                        best = run.best;
                        break;
                    }
                }
            }
            None => {
                // No pruning ever fired, so every task completed its
                // full deterministic search: union in index order.
                for run in completed {
                    phases.extend(run.phases);
                    best.merge(run.best);
                }
            }
        }
        Ok(PortfolioOutcome {
            best_length: best.length,
            lower_bound: bound,
            bound_achieved: canonical_task.is_some(),
            canonical_task,
            total_rotations: phases.iter().map(|p| p.rotations).sum(),
            phases,
            best: best.schedules,
            reports,
        })
    }
}

/// What one task produced.
struct TaskRun {
    best: BestSet,
    phases: Vec<PhaseStats>,
    cross_pruned: bool,
}

fn run_task(
    dfg: &Dfg,
    resources: &ResourceSet,
    task: &SearchTask,
    keep_best: usize,
    signal: &PruneSignal<'_>,
) -> Result<TaskRun, RotationError> {
    if signal.lost_to_lower_task() {
        // A lower-indexed task already proved the bound: this task's
        // result would be discarded, so skip the work entirely.
        return Ok(TaskRun {
            best: BestSet::new(keep_best),
            phases: Vec::new(),
            cross_pruned: true,
        });
    }
    match task {
        SearchTask::Phase {
            size,
            alpha,
            policy,
        } => {
            let scheduler = ListScheduler::new(*policy);
            let mut state = initial_state(dfg, &scheduler, resources)?;
            let mut best = BestSet::new(keep_best);
            best.offer(state.wrapped_length(dfg, resources)?, &state);
            signal.record(best.length);
            let stats = rotation_phase_pruned(
                dfg,
                &scheduler,
                resources,
                &mut state,
                &mut best,
                *size,
                *alpha,
                Some(signal),
            )?;
            Ok(TaskRun {
                best,
                phases: vec![stats],
                cross_pruned: signal.lost_to_lower_task(),
            })
        }
        SearchTask::Sweep { config, policy } => {
            let scheduler = ListScheduler::new(*policy);
            let out = heuristic2_pruned(dfg, &scheduler, resources, config, Some(signal))?;
            let mut best = BestSet::new(config.keep_best);
            for state in out.best {
                best.offer_owned(out.best_length, state);
            }
            Ok(TaskRun {
                best,
                phases: out.phases,
                cross_pruned: signal.lost_to_lower_task(),
            })
        }
    }
}

/// Runs `count` independent jobs `run(0), …, run(count - 1)` on up to
/// `jobs` scoped worker threads and returns the results **in index
/// order**. With `jobs <= 1` (or a single job) everything runs on the
/// caller's thread — byte-identical to the parallel path for
/// deterministic `run` functions.
///
/// Workers claim indices from a shared atomic counter, so long and
/// short jobs balance without any up-front partitioning. This is the
/// engine under the portfolio and under the experiment sweeps'
/// benchmark × resource-config cells.
pub fn parallel_indexed<T, F>(jobs: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count);
    if jobs <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let run = &run;
    let mut indexed: Vec<(usize, T)> = thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, run(i)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("portfolio worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring(n: usize, delays: u32) -> Dfg {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        DfgBuilder::new("ring")
            .nodes("v", n, OpKind::Add, 1)
            .chain(&refs)
            .edge(&format!("v{}", n - 1), "v0", delays)
            .build()
            .unwrap()
    }

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        }
    }

    #[test]
    fn parallel_indexed_returns_results_in_index_order() {
        for jobs in [0, 1, 2, 7, 64] {
            let out = parallel_indexed(jobs, 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_indexed_handles_empty_and_single() {
        assert!(parallel_indexed(4, 0, |i| i).is_empty());
        assert_eq!(parallel_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn pruning_never_fires_below_the_lower_bound() {
        let shared = SharedBound::new(3);
        let sig = shared.signal(5);
        // Above the bound: no stop, no achiever.
        sig.record(4);
        assert!(!sig.should_stop(4));
        assert!(!sig.lost_to_lower_task());
        assert_eq!(shared.incumbent(), 4);
        // Unachieved sentinel never registers.
        assert!(!sig.should_stop(NO_LENGTH));
        // At the bound: self-prune fires and the achiever is recorded.
        sig.record(3);
        assert!(sig.should_stop(3));
        // Higher-indexed tasks cross-prune; lower-indexed ones do not.
        assert!(shared.signal(6).lost_to_lower_task());
        assert!(!shared.signal(5).lost_to_lower_task());
        assert!(!shared.signal(2).lost_to_lower_task());
        assert!(shared.signal(2).should_stop(3), "self-prune still applies");
    }

    #[test]
    fn achiever_takes_the_minimum_task_index() {
        let shared = SharedBound::new(2);
        shared.signal(9).record(2);
        shared.signal(4).record(2);
        shared.signal(7).record(2);
        assert!(shared.signal(5).lost_to_lower_task());
        assert!(!shared.signal(4).lost_to_lower_task());
    }

    #[test]
    fn standard_portfolio_reaches_the_bound_on_a_ring() {
        let g = ring(6, 3);
        let res = ResourceSet::adders_multipliers(3, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let out = p.run(&g, &res).unwrap();
        assert_eq!(out.best_length, 2, "IB = 6/3 = 2");
        assert!(out.bound_achieved);
        assert_eq!(out.lower_bound, 2);
        assert!(out.canonical_task.is_some());
        assert!(!out.best.is_empty());
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        let g = ring(7, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let baseline = p.clone().with_jobs(1).run(&g, &res).unwrap();
        for jobs in [2, 3, 8] {
            let out = p.clone().with_jobs(jobs).run(&g, &res).unwrap();
            assert_eq!(out.best_length, baseline.best_length);
            assert_eq!(out.best, baseline.best, "jobs={jobs}");
            assert_eq!(out.canonical_task, baseline.canonical_task);
            assert_eq!(out.phases, baseline.phases);
        }
    }

    #[test]
    fn portfolio_never_worsens_heuristic2() {
        use crate::heuristics::heuristic2;
        for delays in 1..=3 {
            let g = ring(6, delays);
            let res = ResourceSet::adders_multipliers(2, 0, false);
            let solo = heuristic2(&g, &ListScheduler::default(), &res, &config()).unwrap();
            let p = Portfolio::standard(&g, &res, &config()).unwrap();
            let out = p.with_jobs(4).run(&g, &res).unwrap();
            assert!(out.best_length <= solo.best_length);
            assert!(out.best_length >= out.lower_bound, "bound is sound");
        }
    }

    #[test]
    fn reports_cover_every_task() {
        let g = ring(5, 2);
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let p = Portfolio::standard(&g, &res, &config()).unwrap();
        let n = p.tasks.len();
        let out = p.run(&g, &res).unwrap();
        assert_eq!(out.reports.len(), n);
        assert!(out.reports.iter().all(|r| !r.label.is_empty()));
    }
}
