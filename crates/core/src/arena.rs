//! Per-solve buffer arena: recycled allocations for the rotation hot
//! path and the batch solver.
//!
//! The paper's `O(|R||V|)` per-step bound is an *operation* count; on a
//! real allocator a per-step `Vec` churn adds hidden `malloc`/`free`
//! traffic that dwarfs the arithmetic for small prefixes. Every scratch
//! buffer the hot path needs is therefore acquired from a pool that
//! recycles capacity: a steady-state rotation step (beyond the weight
//! memo's warm-up) performs **zero** heap allocations, enforced by the
//! `alloc_discipline` counting-allocator suite.
//!
//! The arena is deliberately *safe* Rust — no bump pointers, no
//! `unsafe`. A [`BufferPool`] is a free list of `Vec`s whose capacity
//! survives reuse; acquiring from a warm pool is a `pop`, releasing is a
//! `clear` + `push`. That is all the hot path needs, because every
//! scratch buffer it uses is built and consumed within one step.
//!
//! [`SolveArena`] groups the pools one solve (or one
//! [`solve_batch`](crate::RotationScheduler::solve_batch) item) draws
//! from, so batch solving reuses warm capacity across items instead of
//! re-growing it per item.

use rotsched_dfg::NodeId;

/// Reuse counters of a [`BufferPool`], for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out in total.
    pub acquired: u64,
    /// Hand-outs served from the free list (capacity recycled).
    pub reused: u64,
}

/// A free list of `Vec<T>` buffers that recycles capacity.
///
/// `acquire` pops a cleared buffer (or creates an empty one when the
/// pool is cold); `release` clears and returns it. Neither touches the
/// heap once the pool is warm.
///
/// # Examples
///
/// ```
/// use rotsched_core::arena::BufferPool;
///
/// let mut pool: BufferPool<u32> = BufferPool::new();
/// let mut buf = pool.acquire();
/// buf.extend([1, 2, 3]);
/// pool.release(buf);
/// let buf = pool.acquire();
/// assert!(buf.is_empty());
/// assert!(buf.capacity() >= 3); // capacity survived the round trip
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    stats: PoolStats,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty (cold) pool.
    #[must_use]
    pub const fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            stats: PoolStats {
                acquired: 0,
                reused: 0,
            },
        }
    }

    /// Hands out a cleared buffer, recycling capacity when available.
    #[must_use]
    pub fn acquire(&mut self) -> Vec<T> {
        self.stats.acquired += 1;
        match self.free.pop() {
            Some(buf) => {
                self.stats.reused += 1;
                debug_assert!(buf.is_empty(), "released buffers are cleared");
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool. Clearing drops the elements but
    /// keeps the capacity for the next `acquire`.
    pub fn release(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently parked on the free list.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Reuse counters since construction.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

/// The per-solve arena: the named pools one rotation solve draws its
/// scratch buffers from.
///
/// One arena serves a whole [`solve_batch`](crate::RotationScheduler::solve_batch)
/// run — the buffers a finished item releases are acquired warm by the
/// next item, so only the first item pays the capacity growth.
#[derive(Debug, Default)]
pub struct SolveArena {
    /// Rotated-prefix node sets (`S_i` of Subsection 3.1): one buffer
    /// lives inside each [`RotationContext`](crate::RotationContext)
    /// for its lifetime and returns here when the context is rebuilt.
    pub nodes: BufferPool<NodeId>,
}

impl SolveArena {
    /// An empty (cold) arena.
    #[must_use]
    pub const fn new() -> Self {
        SolveArena {
            nodes: BufferPool::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_hands_out_empty_buffers() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(
            pool.stats(),
            PoolStats {
                acquired: 1,
                reused: 0
            }
        );
    }

    #[test]
    fn release_recycles_capacity() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        let mut buf = pool.acquire();
        buf.extend(0..100);
        let cap = buf.capacity();
        pool.release(buf);
        assert_eq!(pool.idle(), 1);
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_is_lifo_so_the_warmest_buffer_comes_back_first() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let cold = pool.acquire();
        let mut warm = pool.acquire();
        warm.extend(0..64);
        let warm_cap = warm.capacity();
        pool.release(cold);
        pool.release(warm);
        assert_eq!(pool.acquire().capacity(), warm_cap);
    }

    #[test]
    fn arena_groups_named_pools() {
        let mut arena = SolveArena::new();
        let buf = arena.nodes.acquire();
        arena.nodes.release(buf);
        assert_eq!(arena.nodes.stats().acquired, 1);
    }
}
