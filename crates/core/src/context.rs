//! The persistent rotation context — the paper's `O(|R||V|)` per-step
//! bound, realized.
//!
//! [`down_rotate`](crate::rotate::down_rotate) is semantically
//! incremental (only the rotated prefix is rescheduled) but pays
//! `O(V+E)` setup per step inside [`ListScheduler::reschedule`].
//! [`RotationContext`] carries that setup *across* the steps of a phase:
//! the reservation table, the zero-delay edge view, and the priority
//! weights are maintained by deltas (see
//! [`SchedContext`]), the retiming is
//! updated in place via [`Retiming::apply_set`], and schedule
//! normalization becomes an O(1) origin shift on the table.
//!
//! [`RotationContext::down_rotate`] makes exactly the same decisions as
//! the from-scratch operator — both funnel into the same placement core
//! — so results are bit-identical; debug builds cross-check every
//! maintained structure against full recomputation.
//!
//! [`Retiming::apply_set`]: rotsched_dfg::Retiming::apply_set

use rotsched_dfg::{Dfg, NodeId};
use rotsched_sched::{CacheStats, ListScheduler, ResourceSet, SchedContext};

use crate::error::RotationError;
use crate::rotate::{is_down_rotatable, DownRotateOutcome, RotationState};

/// Incremental scheduling state for a run of down-rotations on one
/// `(graph, scheduler, resources)` triple.
///
/// Build one per rotation phase (each portfolio worker builds its own)
/// from the phase's starting state; it stays valid as long as every
/// rotation of that state goes through [`RotationContext::down_rotate`]
/// or [`RotationContext::down_rotate_in_place`]. After an error the
/// context is stale — rebuild before reuse.
#[derive(Debug)]
pub struct RotationContext {
    ctx: SchedContext,
    /// The reusable prefix buffer: the rotated set `S_i` of the most
    /// recent step. Filled by `prefix_nodes_into`, so steady-state
    /// steps never allocate it.
    rotated: Vec<NodeId>,
}

impl RotationContext {
    /// Builds the context for `state`'s schedule and rotation function.
    ///
    /// # Errors
    ///
    /// Propagates scheduling-substrate failures (unbindable ops, an
    /// oversubscribed schedule, a cyclic zero-delay subgraph).
    pub fn new(
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &RotationState,
    ) -> Result<Self, RotationError> {
        Self::with_buffer(dfg, scheduler, resources, state, Vec::new())
    }

    /// [`RotationContext::new`] seeded with a recycled prefix buffer
    /// (from an [`arena::BufferPool`](crate::arena::BufferPool) or a
    /// retired context), so rebuilding a context at a phase boundary
    /// reuses the previous phase's warm capacity.
    ///
    /// # Errors
    ///
    /// Exactly [`RotationContext::new`]'s errors.
    pub fn with_buffer(
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &RotationState,
        mut buffer: Vec<NodeId>,
    ) -> Result<Self, RotationError> {
        buffer.clear();
        Ok(RotationContext {
            ctx: SchedContext::new(
                dfg,
                scheduler,
                resources,
                Some(&state.retiming),
                &state.schedule,
            )?,
            rotated: buffer,
        })
    }

    /// Retires the context, handing its prefix buffer back for reuse.
    #[must_use]
    pub fn into_buffer(self) -> Vec<NodeId> {
        self.rotated
    }

    /// [`down_rotate`](crate::rotate::down_rotate), incrementally: frees
    /// only the prefix nodes' reservations, folds the rotation into the
    /// retiming in place, repairs the zero-delay view and weights
    /// locally, renumbers by an O(1) origin shift, and reschedules the
    /// prefix through the shared placement core. Produces bit-identical
    /// states, lengths, and errors to the from-scratch operator.
    ///
    /// # Errors
    ///
    /// Exactly [`down_rotate`](crate::rotate::down_rotate)'s errors; the
    /// context must be rebuilt after one.
    pub fn down_rotate(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &mut RotationState,
        size: u32,
    ) -> Result<DownRotateOutcome, RotationError> {
        let length = self.down_rotate_in_place(dfg, scheduler, resources, state, size)?;
        Ok(DownRotateOutcome {
            rotated: self.rotated.clone(),
            length,
        })
    }

    /// [`RotationContext::down_rotate`] without the owned outcome: the
    /// rotated set is kept in the context's reusable buffer (read it via
    /// [`RotationContext::rotated`]) and only the new unwrapped length is
    /// returned. This is the engine's hot path — a steady-state call
    /// performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Exactly [`RotationContext::down_rotate`]'s errors.
    pub fn down_rotate_in_place(
        &mut self,
        dfg: &Dfg,
        scheduler: &ListScheduler,
        resources: &ResourceSet,
        state: &mut RotationState,
        size: u32,
    ) -> Result<u32, RotationError> {
        let length = state.schedule.length(dfg);
        if size == 0 || size >= length {
            return Err(RotationError::InvalidSize {
                size,
                schedule_length: length,
            });
        }

        state.schedule.prefix_nodes_into(size, &mut self.rotated);
        let rotated = &self.rotated;
        debug_assert!(
            is_down_rotatable(dfg, &state.retiming, rotated),
            "a schedule prefix is always down-rotatable (Property 1)"
        );

        for &v in rotated {
            let cs = state.schedule.start(v).expect("prefix nodes are scheduled");
            self.ctx.release(dfg, resources, v, cs);
            state.schedule.clear(v);
        }
        state.retiming.apply_set(rotated, 1);
        self.ctx.apply_retiming_delta(dfg, &state.retiming, rotated);

        // Normalize the fixed remainder; the table follows with an O(1)
        // origin shift. The remainder can be empty even for size <
        // length when multi-cycle tails pad the length past the last
        // start step — then there is nothing to renumber, exactly like
        // `Schedule::normalize` on an empty schedule.
        if let Some(first) = state.schedule.first_step() {
            if first != 1 {
                state.schedule.shift(1 - i64::from(first));
                self.ctx.shift(1 - i64::from(first));
            }
        }

        self.ctx.reschedule(
            dfg,
            scheduler,
            Some(&state.retiming),
            resources,
            &mut state.schedule,
            &self.rotated,
        )?;
        debug_assert_eq!(state.schedule.first_step(), Some(1));

        Ok(state.schedule.length(dfg))
    }

    /// The node set rotated by the most recent
    /// [`RotationContext::down_rotate_in_place`] (empty before the first
    /// step).
    #[must_use]
    pub fn rotated(&self) -> &[NodeId] {
        &self.rotated
    }

    /// Running weight-memo hit/miss counters of the underlying
    /// scheduling context, monotone over the context's lifetime. The
    /// [engine](crate::engine) reports per-phase deltas from these via
    /// [`CacheStats::since`].
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotate::{down_rotate, initial_state};
    use rotsched_dfg::{DfgBuilder, OpKind};

    #[test]
    fn context_rotations_match_the_from_scratch_operator() {
        let g = DfgBuilder::new("ring")
            .nodes("v", 5, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3", "v4"])
            .edge("v4", "v0", 2)
            .build()
            .unwrap();
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut incremental = initial_state(&g, &sched, &res).unwrap();
        let mut reference = incremental.clone();
        let mut ctx = RotationContext::new(&g, &sched, &res, &incremental).unwrap();
        for _ in 0..6 {
            if incremental.length(&g) <= 1 {
                break;
            }
            let a = ctx
                .down_rotate(&g, &sched, &res, &mut incremental, 1)
                .unwrap();
            let b = down_rotate(&g, &sched, &res, &mut reference, 1).unwrap();
            assert_eq!(a, b);
            assert_eq!(incremental, reference);
        }
    }

    #[test]
    fn context_rejects_invalid_sizes_like_the_operator() {
        let g = DfgBuilder::new("pair")
            .nodes("v", 2, OpKind::Add, 1)
            .wire("v0", "v1")
            .edge("v1", "v0", 1)
            .build()
            .unwrap();
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(1, 0, false);
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut ctx = RotationContext::new(&g, &sched, &res, &st).unwrap();
        assert!(matches!(
            ctx.down_rotate(&g, &sched, &res, &mut st, 0),
            Err(RotationError::InvalidSize { .. })
        ));
        let len = st.length(&g);
        assert!(matches!(
            ctx.down_rotate(&g, &sched, &res, &mut st, len),
            Err(RotationError::InvalidSize { .. })
        ));
    }
}
