//! Rotation phases (Section 5): a bounded sequence of same-size
//! down-rotations with best-schedule tracking.
//!
//! A *rotation phase of size `i`* performs `α` down-rotations of size
//! `i`, halving the size whenever it reaches the current schedule length
//! (a rotation of the full schedule is illegal). The phase maintains the
//! shortest length seen (`L_opt`) and the set `Q` of distinct schedules
//! achieving it.

use rotsched_dfg::rng::Fnv64;
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet, Schedule};

use crate::budget::{BudgetMeter, StopReason};
use crate::engine::SearchDriver;
use crate::error::RotationError;
use crate::objective::Score;
use crate::portfolio::PruneSignal;
use crate::rotate::RotationState;

/// A schedule achieving the best known length, with its rotation
/// function.
pub type BestSchedule = RotationState;

/// A cheap order-insensitive-enough fingerprint of a schedule: FNV-1a
/// over its `(node, control step)` pairs in node-index order (the order
/// [`Schedule::iter`] already yields). Two equal schedules always hash
/// equal; unequal schedules collide only with hash probability, and a
/// collision merely costs one deep comparison — never a wrong answer.
#[must_use]
fn schedule_fingerprint(schedule: &Schedule) -> u64 {
    let mut h = Fnv64::new();
    for (v, cs) in schedule.iter() {
        h.write_u32(u32::try_from(v.index()).unwrap_or(u32::MAX));
        h.write_u32(cs);
    }
    h.finish()
}

/// How an offered state relates to the current best set.
enum Admission {
    /// Worse than the best, a duplicate, or a tie with the set full.
    Reject,
    /// Ties the best and is new; carries the precomputed fingerprint.
    Tie(u64),
    /// Strictly improves the best; carries the precomputed fingerprint.
    Improve(u64),
}

/// The set of best schedules found so far (`Q` in the paper), with the
/// best packed [`Score`] (length-only scores carry `L_opt` exactly).
#[derive(Clone, Debug)]
pub struct BestSet {
    /// Best (smallest) packed score seen; its high 32 bits are the
    /// shortest wrapped schedule length under the default objective.
    pub score: Score,
    /// Distinct states achieving it, capped at a configurable size.
    pub schedules: Vec<BestSchedule>,
    /// Maximum number of schedules retained.
    pub capacity: usize,
    /// `fingerprints[i]` is the schedule fingerprint of `schedules[i]`;
    /// duplicate offers are rejected on a fingerprint mismatch scan and
    /// only fall back to a deep schedule comparison on a hash match.
    fingerprints: Vec<u64>,
}

impl BestSet {
    /// An empty set with the given retention capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BestSet {
            score: Score::NONE,
            schedules: Vec::new(),
            capacity: capacity.max(1),
            fingerprints: Vec::new(),
        }
    }

    /// The shortest wrapped schedule length seen — the length component
    /// of the best score ([`u32::MAX`] while the set is empty).
    #[must_use]
    pub fn length(&self) -> u32 {
        self.score.length()
    }

    /// Classifies an offer without cloning anything. Fingerprints are
    /// computed only when the offer can actually be admitted.
    fn admission(&self, score: Score, schedule: &Schedule) -> Admission {
        if score > self.score {
            return Admission::Reject;
        }
        if score < self.score {
            return Admission::Improve(schedule_fingerprint(schedule));
        }
        if self.schedules.len() >= self.capacity {
            return Admission::Reject;
        }
        let fp = schedule_fingerprint(schedule);
        let duplicate = self
            .fingerprints
            .iter()
            .zip(&self.schedules)
            .any(|(&f, s)| f == fp && s.schedule == *schedule);
        if duplicate {
            Admission::Reject
        } else {
            Admission::Tie(fp)
        }
    }

    /// Offers a state with the given packed score; keeps it when it
    /// ties or improves the best, dropping worse ones. Returns `true`
    /// when the offer strictly improved the best score.
    ///
    /// The exact tie-break, which the packed score preserves from the
    /// scalar-length days: a *strictly smaller* score clears the set
    /// and installs the state alone; an *equal* score appends the state
    /// in **insertion order** (first offered, first kept) provided it
    /// is not a duplicate and the set is below capacity; a larger score
    /// is rejected. Insertion order is load-bearing — the portfolio's
    /// canonical merge re-offers each worker's states in this order, so
    /// the merged set (and everything derived from it, down to response
    /// bytes) is identical at every `--jobs` value.
    ///
    /// The state is cloned only on admission — rejected offers (the
    /// common case inside a rotation phase) cost a fingerprint at most.
    #[must_use = "the return value reports whether the best score strictly improved"]
    pub fn offer(&mut self, score: Score, state: &RotationState) -> bool {
        match self.admission(score, &state.schedule) {
            Admission::Reject => false,
            Admission::Tie(fp) => {
                self.schedules.push(state.clone());
                self.fingerprints.push(fp);
                false
            }
            Admission::Improve(fp) => {
                self.score = score;
                self.schedules.clear();
                self.fingerprints.clear();
                self.schedules.push(state.clone());
                self.fingerprints.push(fp);
                true
            }
        }
    }

    /// Like [`BestSet::offer`] but takes ownership of the state, so
    /// admission moves instead of cloning. Rejected states are dropped.
    /// The admission rule and tie-break are identical to
    /// [`BestSet::offer`].
    #[must_use = "the return value reports whether the best score strictly improved"]
    pub fn offer_owned(&mut self, score: Score, state: RotationState) -> bool {
        match self.admission(score, &state.schedule) {
            Admission::Reject => false,
            Admission::Tie(fp) => {
                self.schedules.push(state);
                self.fingerprints.push(fp);
                false
            }
            Admission::Improve(fp) => {
                self.score = score;
                self.schedules.clear();
                self.fingerprints.clear();
                self.schedules.push(state);
                self.fingerprints.push(fp);
                true
            }
        }
    }

    /// Merges another best set into this one (used when joining portfolio
    /// workers), moving its states rather than cloning them. The donor's
    /// states are re-offered in their own insertion order, so the merge
    /// preserves the canonical tie-break documented on
    /// [`BestSet::offer`].
    pub fn merge(&mut self, other: BestSet) {
        if other.score > self.score {
            return;
        }
        for state in other.schedules {
            let _ = self.offer_owned(other.score, state);
        }
    }

    /// The number of distinct best schedules retained.
    #[must_use]
    pub fn count(&self) -> usize {
        self.schedules.len()
    }
}

/// Statistics from one rotation phase, for convergence studies
/// (Section 5 discusses convergence speed vs. rotation size).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// The size the phase was asked to run at.
    pub requested_size: u32,
    /// Down-rotations actually performed.
    pub rotations: usize,
    /// Wrapped schedule length after each rotation.
    pub lengths: Vec<u32>,
    /// The first rotation index (1-based) at which the phase achieved its
    /// own minimum length, if any rotation was performed.
    pub first_optimum_at: Option<usize>,
    /// Why the phase stopped early, if a [`Budget`](crate::Budget) limit
    /// fired mid-phase; `None` for a phase that ran to natural
    /// completion. Sweeps key their own early exit off this recorded
    /// flag rather than re-reading the clock, so budgeted control flow
    /// stays reproducible for deterministic limits.
    pub stopped: Option<StopReason>,
}

/// Runs `RotationPhase(S_init, L_opt, Q, G, i, α)`: `alpha` rotations of
/// size `i` starting from `state`, halving the effective size whenever it
/// reaches the schedule length.
///
/// `state` is advanced in place; improvements are recorded into `best`.
/// Lengths are measured as *wrapped* lengths (Section 4's definition).
///
/// # Errors
///
/// Propagates scheduling failures. Invalid sizes cannot occur: the size
/// is halved below the schedule length first, and a schedule of length 1
/// terminates the phase early.
pub fn rotation_phase(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    state: &mut RotationState,
    best: &mut BestSet,
    size: u32,
    alpha: usize,
) -> Result<PhaseStats, RotationError> {
    rotation_phase_pruned(
        dfg, scheduler, resources, state, best, size, alpha, None, None,
    )
}

/// [`rotation_phase`] with an optional portfolio pruning signal and an
/// optional armed [`Budget`](crate::Budget): the phase publishes its
/// best length after every rotation and stops as soon as the signal
/// says further work is pointless (the best reached the combined lower
/// bound, or a lower-indexed portfolio task did), or as soon as the
/// budget meter fires. A budget stop is recorded in
/// [`PhaseStats::stopped`]; the state and best set always hold complete,
/// legal schedules — no rotation is abandoned halfway.
///
/// With `prune = None` and `budget = None` this is exactly
/// [`rotation_phase`].
///
/// The phase's rotations run through a
/// [`RotationContext`](crate::RotationContext) built from the starting
/// state, so per-step work is proportional to the rotated prefix rather
/// than the graph. Each caller (portfolio worker) gets its own context;
/// the results are bit-identical to [`rotation_phase_reference`].
///
/// This is a thin wrapper over
/// [`SearchDriver::run_phase`] on the incremental step mode.
///
/// # Errors
///
/// See [`rotation_phase`].
#[allow(clippy::too_many_arguments)]
pub fn rotation_phase_pruned(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    state: &mut RotationState,
    best: &mut BestSet,
    size: u32,
    alpha: usize,
    prune: Option<&PruneSignal<'_>>,
    budget: Option<&BudgetMeter>,
) -> Result<PhaseStats, RotationError> {
    SearchDriver::incremental(dfg, scheduler, resources)
        .with_prune(prune)
        .with_budget(budget)
        .run_phase(state, best, size, alpha)
}

/// The from-scratch twin of [`rotation_phase_pruned`]: identical search,
/// but every rotation uses the non-incremental
/// [`down_rotate`](crate::rotate::down_rotate) operator. Kept as the
/// reference arm for equivalence tests and the `rotation_step`
/// before/after benchmark.
///
/// This is a thin wrapper over
/// [`SearchDriver::run_phase`] on the scratch step mode.
///
/// # Errors
///
/// See [`rotation_phase`].
#[allow(clippy::too_many_arguments)]
pub fn rotation_phase_reference(
    dfg: &Dfg,
    scheduler: &ListScheduler,
    resources: &ResourceSet,
    state: &mut RotationState,
    best: &mut BestSet,
    size: u32,
    alpha: usize,
    prune: Option<&PruneSignal<'_>>,
    budget: Option<&BudgetMeter>,
) -> Result<PhaseStats, RotationError> {
    SearchDriver::reference(dfg, scheduler, resources)
        .with_prune(prune)
        .with_budget(budget)
        .run_phase(state, best, size, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotate::initial_state;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn ring(delays: u32) -> Dfg {
        DfgBuilder::new("ring")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", delays)
            .build()
            .unwrap()
    }

    fn setup() -> (Dfg, ListScheduler, ResourceSet) {
        (
            ring(2),
            ListScheduler::default(),
            ResourceSet::adders_multipliers(2, 0, false),
        )
    }

    #[test]
    fn size_one_phase_improves_but_can_plateau() {
        // Section 5: "If the rotation size is too small, the corresponding
        // rotation phase may never converge to an optimal schedule
        // length." Size-1 rotations on this ring cycle at length 3.
        let (g, sched, res) = setup();
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(8);
        assert!(best.offer(
            Score::from_length(st.wrapped_length(&g, &res).unwrap()),
            &st
        ));
        assert_eq!(best.length(), 4);
        let stats = rotation_phase(&g, &sched, &res, &mut st, &mut best, 1, 8).unwrap();
        assert_eq!(stats.rotations, 8);
        assert!(best.length() <= 3, "size-1 rotation improves 4 -> 3");
    }

    #[test]
    fn size_two_phase_reaches_the_iteration_bound() {
        // A single size-2 rotation moves {v0, v1} together, producing the
        // spread retiming r = [1,1,0,0] and the optimal 2-step kernel.
        let (g, sched, res) = setup();
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(8);
        assert!(best.offer(
            Score::from_length(st.wrapped_length(&g, &res).unwrap()),
            &st
        ));
        rotation_phase(&g, &sched, &res, &mut st, &mut best, 2, 8).unwrap();
        assert_eq!(best.length(), 2, "iteration bound 4/2 = 2");
    }

    #[test]
    fn oversized_phase_halves_down() {
        let (g, sched, res) = setup();
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(8);
        // Size 100 >> length 4: must halve to below the length and still
        // perform rotations.
        let stats = rotation_phase(&g, &sched, &res, &mut st, &mut best, 100, 4).unwrap();
        assert_eq!(stats.rotations, 4);
        assert!(best.length() <= 4);
    }

    #[test]
    fn best_set_dedupes_and_caps() {
        let (g, sched, res) = setup();
        let st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(2);
        assert!(best.offer(Score::from_length(4), &st));
        assert!(
            !best.offer(Score::from_length(4), &st),
            "same schedule is not re-added"
        );
        assert_eq!(best.count(), 1);
        let mut st2 = st.clone();
        st2.schedule.shift(1); // a (trivially) different schedule object
        assert!(!best.offer(Score::from_length(4), &st2));
        assert_eq!(best.count(), 2);
        let mut st3 = st.clone();
        st3.schedule.shift(2);
        assert!(!best.offer(Score::from_length(4), &st3));
        assert_eq!(best.count(), 2, "capacity caps the set");
        // An improvement clears the set.
        assert!(best.offer(Score::from_length(3), &st));
        assert_eq!(best.count(), 1);
        assert_eq!(best.length(), 3);
    }

    #[test]
    fn owned_offers_match_borrowed_offers() {
        let (g, sched, res) = setup();
        let st = initial_state(&g, &sched, &res).unwrap();
        let mut by_ref = BestSet::new(4);
        let mut by_move = BestSet::new(4);
        for shift in 0..3_i64 {
            let mut s = st.clone();
            s.schedule.shift(shift);
            assert_eq!(
                by_ref.offer(Score::from_length(4), &s),
                by_move.offer_owned(Score::from_length(4), s.clone())
            );
        }
        assert_eq!(by_ref.score, by_move.score);
        assert_eq!(by_ref.schedules, by_move.schedules);
    }

    #[test]
    fn merge_unions_ties_and_prefers_shorter_lengths() {
        let (g, sched, res) = setup();
        let st = initial_state(&g, &sched, &res).unwrap();
        let mut a = BestSet::new(4);
        assert!(a.offer(Score::from_length(4), &st));
        // A worse set is ignored entirely.
        let mut worse = BestSet::new(4);
        let mut shifted = st.clone();
        shifted.schedule.shift(1);
        assert!(worse.offer(Score::from_length(5), &shifted));
        a.merge(worse);
        assert_eq!(a.length(), 4);
        assert_eq!(a.count(), 1);
        // A tying set unions (with dedupe), a better one replaces.
        let mut tie = BestSet::new(4);
        assert!(tie.offer(Score::from_length(4), &st));
        assert!(!tie.offer(Score::from_length(4), &shifted));
        a.merge(tie);
        assert_eq!(a.count(), 2, "duplicate dropped, new tie kept");
        let mut better = BestSet::new(4);
        assert!(better.offer(Score::from_length(3), &st));
        a.merge(better);
        assert_eq!(a.length(), 3);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn context_phase_matches_reference_phase() {
        let (g, sched, res) = setup();
        for size in 1..=3 {
            let mut st_ctx = initial_state(&g, &sched, &res).unwrap();
            let mut st_ref = st_ctx.clone();
            let mut best_ctx = BestSet::new(8);
            let mut best_ref = BestSet::new(8);
            let stats_ctx =
                rotation_phase(&g, &sched, &res, &mut st_ctx, &mut best_ctx, size, 8).unwrap();
            let stats_ref = rotation_phase_reference(
                &g,
                &sched,
                &res,
                &mut st_ref,
                &mut best_ref,
                size,
                8,
                None,
                None,
            )
            .unwrap();
            assert_eq!(stats_ctx, stats_ref);
            assert_eq!(st_ctx, st_ref);
            assert_eq!(best_ctx.score, best_ref.score);
            assert_eq!(best_ctx.schedules, best_ref.schedules);
        }
    }

    #[test]
    fn rotation_budget_truncates_phase_to_a_prefix() {
        use crate::budget::{Budget, StopReason};
        let (g, sched, res) = setup();
        // Unlimited run as the reference trace.
        let mut st_full = initial_state(&g, &sched, &res).unwrap();
        let mut best_full = BestSet::new(8);
        let full = rotation_phase(&g, &sched, &res, &mut st_full, &mut best_full, 1, 8).unwrap();
        // Budget of k rotations reproduces exactly the first k lengths.
        for k in 0..=full.rotations {
            let meter = Budget::default().with_max_rotations(k as u64).arm();
            let mut st = initial_state(&g, &sched, &res).unwrap();
            let mut best = BestSet::new(8);
            let stats = rotation_phase_pruned(
                &g,
                &sched,
                &res,
                &mut st,
                &mut best,
                1,
                8,
                None,
                Some(&meter),
            )
            .unwrap();
            assert_eq!(stats.rotations, k);
            assert_eq!(stats.lengths, full.lengths[..k]);
            if k < full.rotations {
                assert_eq!(stats.stopped, Some(StopReason::RotationBudget));
            }
        }
    }

    #[test]
    fn cancelled_phase_keeps_its_incumbent() {
        use crate::budget::{Budget, CancelToken, StopReason};
        let (g, sched, res) = setup();
        let token = CancelToken::new();
        token.cancel();
        let meter = Budget::default().with_cancel(token).arm();
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(8);
        assert!(best.offer(
            Score::from_length(st.wrapped_length(&g, &res).unwrap()),
            &st
        ));
        let stats = rotation_phase_pruned(
            &g,
            &sched,
            &res,
            &mut st,
            &mut best,
            2,
            8,
            None,
            Some(&meter),
        )
        .unwrap();
        assert_eq!(stats.rotations, 0);
        assert_eq!(stats.stopped, Some(StopReason::Cancelled));
        assert_eq!(best.length(), 4, "pre-cancel incumbent survives");
    }

    #[test]
    fn stats_track_lengths_per_rotation() {
        let (g, sched, res) = setup();
        let mut st = initial_state(&g, &sched, &res).unwrap();
        let mut best = BestSet::new(4);
        let stats = rotation_phase(&g, &sched, &res, &mut st, &mut best, 1, 5).unwrap();
        assert_eq!(stats.lengths.len(), stats.rotations);
        assert!(stats.first_optimum_at.is_some());
        assert!(stats.lengths.iter().min().copied().unwrap() == best.length());
    }
}
