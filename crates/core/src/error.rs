//! Error type for rotation scheduling.

use core::fmt;

use rotsched_dfg::{DfgError, NodeId};
use rotsched_sched::{SchedError, SimulationError};

/// Errors produced by rotation scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RotationError {
    /// The input graph is invalid (zero-delay cycle, zero-time node).
    Graph(DfgError),
    /// The underlying scheduler failed.
    Sched(SchedError),
    /// End-to-end simulation of a pipeline found a violation.
    Simulation(SimulationError),
    /// A requested rotation set is not down-rotatable (Property 1): some
    /// path from outside the set into it carries no delay.
    NotRotatable {
        /// A witness node inside the set with a delay-free incoming path.
        node: NodeId,
    },
    /// A rotation of size zero (or at least the schedule length when the
    /// schedule is a single step) was requested.
    InvalidSize {
        /// The requested size.
        size: u32,
        /// The current schedule length.
        schedule_length: u32,
    },
    /// No retiming realizes the final schedule — internal invariant
    /// violation; rotation always maintains realizability.
    Unrealizable,
    /// Every portfolio worker panicked, leaving no surviving result to
    /// degrade to. A *partial* worker failure never raises this — the
    /// portfolio degrades to the surviving workers' best instead.
    WorkerPanicked {
        /// Index of the lowest-numbered panicked task.
        task: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for RotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotationError::Graph(e) => write!(f, "invalid graph: {e}"),
            RotationError::Sched(e) => write!(f, "scheduling failed: {e}"),
            RotationError::Simulation(e) => write!(f, "simulation failed: {e}"),
            RotationError::NotRotatable { node } => write!(
                f,
                "set is not down-rotatable: node {node} is reached without a delay from outside the set"
            ),
            RotationError::InvalidSize {
                size,
                schedule_length,
            } => write!(
                f,
                "rotation size {size} is invalid for a schedule of length {schedule_length}"
            ),
            RotationError::Unrealizable => {
                write!(f, "no retiming realizes the schedule (internal invariant violated)")
            }
            RotationError::WorkerPanicked { task, message } => {
                write!(f, "every portfolio worker panicked (first: task {task}: {message})")
            }
        }
    }
}

impl std::error::Error for RotationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RotationError::Graph(e) => Some(e),
            RotationError::Sched(e) => Some(e),
            RotationError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for RotationError {
    fn from(e: DfgError) -> Self {
        RotationError::Graph(e)
    }
}

impl From<SchedError> for RotationError {
    fn from(e: SchedError) -> Self {
        RotationError::Sched(e)
    }
}

impl From<SimulationError> for RotationError {
    fn from(e: SimulationError) -> Self {
        RotationError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RotationError::InvalidSize {
            size: 9,
            schedule_length: 4,
        };
        assert!(e.to_string().contains("size 9"));
        let e = RotationError::NotRotatable {
            node: NodeId::from_index(3),
        };
        assert!(e.to_string().contains("n3"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let g: RotationError = DfgError::ZeroTimeNode {
            node: NodeId::from_index(0),
        }
        .into();
        assert!(matches!(g, RotationError::Graph(_)));
        let s: RotationError = SchedError::Unscheduled {
            node: NodeId::from_index(0),
        }
        .into();
        assert!(matches!(s, RotationError::Sched(_)));
    }
}
