//! The wire form of a [`ProblemSpec`] — the serve protocol's request
//! payload, and the derivation of warm-path cache keys from it.
//!
//! A problem travels as a small line-oriented text document: the graph
//! in the [`rotsched_dfg::text`] format, followed by directives for the
//! resource allocation, the list-scheduling policy, the heuristic
//! configuration, the solve objective (omitted for the default
//! length-only objective, keeping pre-objective payloads and cache
//! keys byte-identical), and the solve budget:
//!
//! ```text
//! dfg my-loop
//! node m mul 2
//! node a add 1
//! edge m a 0
//! edge a m 1
//! resource adder 2 non-pipelined add sub cmp shl other
//! resource multiplier 2 non-pipelined mul div
//! policy descendant-count
//! config rotations-per-phase 32
//! config max-size none
//! config keep-best 16
//! config rounds 4
//! budget deadline-ms 100
//! budget max-rotations 100000
//! ```
//!
//! Every directive is optional: a payload that is nothing but a graph
//! solves under [`ProblemSpec::new`]'s defaults (the CLI's `2A 2M`
//! resource allocation, descendant-count priorities, the standard
//! Heuristic-2 sweep, an unlimited budget).
//!
//! ## Round-trip guarantee
//!
//! [`parse_problem`] inverts [`render_problem`]:
//! `parse_problem(&render_problem(&spec)) == spec` for every spec whose
//! node, graph, and resource-class names are whitespace-free and whose
//! budget carries no [`CancelToken`](crate::CancelToken) (tokens are
//! process-local flags and have no wire form). The `wire_roundtrip`
//! suite enforces this over a seeded corpus.
//!
//! ## Cache keys
//!
//! [`cache_key_text`] is the canonical budget-free rendering of a spec:
//! two requests get the same key exactly when they describe the same
//! graph (including names — responses render names, so distinct names
//! must never share a cached response), resource allocation, policy,
//! and heuristic configuration, regardless of how the client formatted
//! the payload. [`cache_fingerprint`] hashes that text for sharding and
//! prefiltering; exact-text comparison on the full key makes a
//! fingerprint collision cost a string compare, never a wrong reuse.

use core::fmt;
use core::fmt::Write as _;
use core::time::Duration;

use rotsched_dfg::rng::Fnv64;
use rotsched_dfg::text::{self, ParseDfgError};
use rotsched_sched::{PriorityPolicy, ResourceClass, ResourceSet};

use crate::budget::Budget;
use crate::heuristics::HeuristicConfig;
use crate::objective::Objective;
use crate::scheduler::ProblemSpec;

/// Error produced when parsing the wire form of a problem.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// A directive line was malformed.
    Syntax {
        /// 1-based line number within the payload.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The embedded graph failed to parse or validate.
    Dfg(ParseDfgError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            WireError::Dfg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Dfg(e) => Some(e),
            WireError::Syntax { .. } => None,
        }
    }
}

impl From<ParseDfgError> for WireError {
    fn from(e: ParseDfgError) -> Self {
        WireError::Dfg(e)
    }
}

/// The stable wire mnemonic of a priority policy.
#[must_use]
pub fn policy_mnemonic(policy: PriorityPolicy) -> &'static str {
    match policy {
        PriorityPolicy::DescendantCount => "descendant-count",
        PriorityPolicy::PathHeight => "path-height",
        PriorityPolicy::Mobility => "mobility",
        PriorityPolicy::InputOrder => "input-order",
        // `PriorityPolicy` is non-exhaustive; a policy added without a
        // mnemonic must fail loudly rather than silently alias another.
        _ => unimplemented!("policy without a wire mnemonic"),
    }
}

fn policy_from_mnemonic(s: &str) -> Option<PriorityPolicy> {
    Some(match s {
        "descendant-count" => PriorityPolicy::DescendantCount,
        "path-height" => PriorityPolicy::PathHeight,
        "mobility" => PriorityPolicy::Mobility,
        "input-order" => PriorityPolicy::InputOrder,
        _ => return None,
    })
}

/// Names may not contain whitespace in the format; replace offenders.
fn sanitize(name: &str) -> String {
    name.split_whitespace().collect::<Vec<_>>().join("_")
}

fn render_directives(out: &mut String, spec: &ProblemSpec, include_budget: bool) {
    for class in spec.resources.classes() {
        let _ = write!(
            out,
            "resource {} {} {}",
            sanitize(class.name()),
            class.count(),
            if class.is_pipelined() {
                "pipelined"
            } else {
                "non-pipelined"
            }
        );
        for op in class.ops() {
            let _ = write!(out, " {}", op.mnemonic());
        }
        out.push('\n');
    }
    let _ = writeln!(out, "policy {}", policy_mnemonic(spec.policy));
    let _ = writeln!(
        out,
        "config rotations-per-phase {}",
        spec.config.rotations_per_phase
    );
    match spec.config.max_size {
        Some(beta) => {
            let _ = writeln!(out, "config max-size {beta}");
        }
        None => {
            let _ = writeln!(out, "config max-size none");
        }
    }
    let _ = writeln!(out, "config keep-best {}", spec.config.keep_best);
    let _ = writeln!(out, "config rounds {}", spec.config.rounds);
    // The default length-only objective is rendered implicitly: payloads
    // and cache keys from pre-objective clients stay byte-identical.
    if spec.objective != Objective::Length {
        let _ = writeln!(out, "objective {}", spec.objective.mnemonic());
    }
    if include_budget {
        if let Some(deadline) = spec.budget.deadline() {
            // Whole milliseconds render as the human-friendly unit; any
            // finer deadline falls back to nanoseconds so the value
            // round-trips exactly.
            let nanos = deadline.as_nanos();
            if nanos % 1_000_000 == 0 {
                let _ = writeln!(out, "budget deadline-ms {}", nanos / 1_000_000);
            } else {
                let _ = writeln!(out, "budget deadline-ns {nanos}");
            }
        }
        if let Some(max) = spec.budget.max_rotations() {
            let _ = writeln!(out, "budget max-rotations {max}");
        }
    }
}

/// Serializes a problem in the wire format; [`parse_problem`] inverts
/// this. Cancel tokens are process-local and are not rendered.
#[must_use]
pub fn render_problem(spec: &ProblemSpec) -> String {
    let mut out = text::to_text(&spec.dfg);
    render_directives(&mut out, spec, true);
    out
}

/// The canonical cache key of a problem: its wire rendering *minus the
/// budget directives*, re-rendered from the parsed spec so client
/// formatting (comments, blank lines, directive order) never splits
/// identical problems across cache entries. Budgets are excluded
/// because a budget never changes what the canonical answer *is* — only
/// whether one request's search ran long enough to find it.
#[must_use]
pub fn cache_key_text(spec: &ProblemSpec) -> String {
    let mut out = text::to_text(&spec.dfg);
    render_directives(&mut out, spec, false);
    out
}

/// A 64-bit FNV hash of [`cache_key_text`], for shard selection and
/// probe prefiltering. Collisions are harmless as long as the consumer
/// confirms with an exact comparison of the full key text.
#[must_use]
pub fn cache_fingerprint(spec: &ProblemSpec) -> u64 {
    fingerprint_text(&cache_key_text(spec))
}

/// The FNV-64 hash of arbitrary key text (what [`cache_fingerprint`]
/// applies to [`cache_key_text`]).
#[must_use]
pub fn fingerprint_text(key: &str) -> u64 {
    let mut h = Fnv64::new();
    for b in key.bytes() {
        h.write_u8(b);
    }
    h.finish()
}

/// Parses a problem from the wire format.
///
/// Graph lines (`dfg`/`node`/`edge`, plus comments and blank lines) are
/// delegated to [`rotsched_dfg::text::parse`] with directive lines
/// blanked out in place, so its error line numbers match the original
/// payload.
///
/// # Errors
///
/// [`WireError::Syntax`] for malformed directive lines (with the line
/// number), [`WireError::Dfg`] when the embedded graph is rejected.
pub fn parse_problem(input: &str) -> Result<ProblemSpec, WireError> {
    let syntax = |line: usize, message: String| WireError::Syntax { line, message };

    let mut graph_text = String::with_capacity(input.len());
    let mut classes: Vec<ResourceClass> = Vec::new();
    let mut policy = PriorityPolicy::default();
    let mut config = HeuristicConfig::default();
    let mut objective = Objective::default();
    let mut budget = Budget::unlimited();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let fields: Vec<&str> = raw.split_whitespace().collect();
        let directive = fields.first().copied().unwrap_or("");
        match directive {
            "resource" => {
                if fields.len() < 4 {
                    return Err(syntax(
                        line_no,
                        "expected `resource <name> <count> <pipelined|non-pipelined> <op>...`"
                            .to_owned(),
                    ));
                }
                let count: u32 = fields[2]
                    .parse()
                    .map_err(|_| syntax(line_no, "count must be a non-negative integer".into()))?;
                let pipelined = match fields[3] {
                    "pipelined" => true,
                    "non-pipelined" => false,
                    other => {
                        return Err(syntax(
                            line_no,
                            format!("expected `pipelined` or `non-pipelined`, got `{other}`"),
                        ))
                    }
                };
                let mut ops = Vec::with_capacity(fields.len() - 4);
                for op in &fields[4..] {
                    ops.push(op.parse().map_err(|e| syntax(line_no, format!("{e}")))?);
                }
                classes.push(ResourceClass::new(fields[1], count, ops, pipelined));
            }
            "policy" => {
                if fields.len() != 2 {
                    return Err(syntax(line_no, "expected `policy <mnemonic>`".to_owned()));
                }
                policy = policy_from_mnemonic(fields[1])
                    .ok_or_else(|| syntax(line_no, format!("unknown policy `{}`", fields[1])))?;
            }
            "config" => {
                if fields.len() != 3 {
                    return Err(syntax(
                        line_no,
                        "expected `config <knob> <value>`".to_owned(),
                    ));
                }
                let value = fields[2];
                let number = |what: &str| {
                    value.parse::<usize>().map_err(|_| {
                        syntax(line_no, format!("{what} must be a non-negative integer"))
                    })
                };
                match fields[1] {
                    "rotations-per-phase" => {
                        config.rotations_per_phase = number("rotations-per-phase")?;
                    }
                    "max-size" => {
                        config.max_size = if value == "none" {
                            None
                        } else {
                            Some(value.parse().map_err(|_| {
                                syntax(line_no, "max-size must be `none` or an integer".into())
                            })?)
                        };
                    }
                    "keep-best" => config.keep_best = number("keep-best")?,
                    "rounds" => config.rounds = number("rounds")?,
                    other => return Err(syntax(line_no, format!("unknown config knob `{other}`"))),
                }
            }
            "objective" => {
                if fields.len() != 2 {
                    return Err(syntax(
                        line_no,
                        "expected `objective <mnemonic>`".to_owned(),
                    ));
                }
                objective = Objective::parse(fields[1])
                    .ok_or_else(|| syntax(line_no, format!("unknown objective `{}`", fields[1])))?;
            }
            "budget" => {
                if fields.len() != 3 {
                    return Err(syntax(
                        line_no,
                        "expected `budget <limit> <value>`".to_owned(),
                    ));
                }
                let value: u64 = fields[2].parse().map_err(|_| {
                    syntax(
                        line_no,
                        "budget value must be a non-negative integer".into(),
                    )
                })?;
                budget = match fields[1] {
                    "deadline-ms" => budget.with_deadline(Duration::from_millis(value)),
                    "deadline-ns" => budget.with_deadline(Duration::from_nanos(value)),
                    "max-rotations" => budget.with_max_rotations(value),
                    other => {
                        return Err(syntax(line_no, format!("unknown budget limit `{other}`")))
                    }
                };
            }
            // Graph lines, comments, and blanks go to the graph parser;
            // directive lines are blanked to keep line numbers aligned.
            _ => graph_text.push_str(raw),
        }
        graph_text.push('\n');
    }

    let dfg = text::parse(&graph_text)?;
    let resources = if classes.is_empty() {
        ResourceSet::adders_multipliers(2, 2, false)
    } else {
        ResourceSet::new(classes)
    };
    Ok(ProblemSpec {
        dfg,
        resources,
        policy,
        config,
        objective,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{DfgBuilder, OpKind};

    fn sample_spec() -> ProblemSpec {
        let g = DfgBuilder::new("ring")
            .nodes("v", 4, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3"])
            .edge("v3", "v0", 2)
            .build()
            .unwrap();
        ProblemSpec::new(g, ResourceSet::adders_multipliers(2, 1, true))
            .with_policy(PriorityPolicy::PathHeight)
            .with_config(HeuristicConfig {
                rotations_per_phase: 8,
                max_size: Some(3),
                keep_best: 4,
                rounds: 2,
            })
            .with_budget(Budget::unlimited().with_max_rotations(500))
    }

    #[test]
    fn roundtrip_is_exact() {
        let spec = sample_spec();
        let back = parse_problem(&render_problem(&spec)).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn bare_graph_parses_with_defaults() {
        let spec = parse_problem("dfg g\nnode a add 1\n").unwrap();
        assert_eq!(spec.resources, ResourceSet::adders_multipliers(2, 2, false));
        assert_eq!(spec.policy, PriorityPolicy::default());
        assert_eq!(spec.config, HeuristicConfig::default());
        assert!(spec.budget.is_unlimited());
    }

    #[test]
    fn cache_key_excludes_budget() {
        let spec = sample_spec();
        let mut unlimited = spec.clone();
        unlimited.budget = Budget::unlimited();
        assert_eq!(cache_key_text(&spec), cache_key_text(&unlimited));
        assert_eq!(cache_fingerprint(&spec), cache_fingerprint(&unlimited));
        assert_ne!(render_problem(&spec), render_problem(&unlimited));
    }

    #[test]
    fn cache_key_is_canonical_over_formatting() {
        let spec = sample_spec();
        let noisy = format!("# a comment\n\n{}", render_problem(&spec));
        let reparsed = parse_problem(&noisy).unwrap();
        assert_eq!(cache_key_text(&reparsed), cache_key_text(&spec));
    }

    #[test]
    fn objective_directive_roundtrips_and_defaults_render_nothing() {
        let spec = sample_spec();
        assert!(
            !render_problem(&spec).contains("objective"),
            "the default objective must keep pre-objective payload bytes"
        );
        for objective in Objective::ALL {
            let multi = spec.clone().with_objective(objective);
            let back = parse_problem(&render_problem(&multi)).unwrap();
            assert_eq!(back, multi);
        }
    }

    #[test]
    fn cache_key_distinguishes_objectives() {
        let spec = sample_spec();
        let regs = spec.clone().with_objective(Objective::LengthRegs);
        assert_ne!(cache_key_text(&spec), cache_key_text(&regs));
        assert_ne!(cache_fingerprint(&spec), cache_fingerprint(&regs));
    }

    #[test]
    fn sub_millisecond_deadlines_roundtrip() {
        let mut spec = sample_spec();
        spec.budget = Budget::unlimited().with_deadline(Duration::from_micros(1500));
        let back = parse_problem(&render_problem(&spec)).unwrap();
        assert_eq!(back.budget.deadline(), Some(Duration::from_micros(1500)));
    }

    #[test]
    fn directive_errors_carry_line_numbers() {
        let err = parse_problem("dfg g\nnode a add 1\npolicy frobnicate\n").unwrap_err();
        assert_eq!(
            err,
            WireError::Syntax {
                line: 3,
                message: "unknown policy `frobnicate`".into()
            }
        );
    }

    #[test]
    fn graph_errors_keep_original_line_numbers() {
        let err = parse_problem("policy mobility\ndfg g\nnode a add\n").unwrap_err();
        match err {
            WireError::Dfg(ParseDfgError::Syntax { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected graph syntax error, got {other}"),
        }
    }
}
