//! Nested loop pipelining (the extension sketched in Section 8).
//!
//! "We schedule loops from inside out. The innermost loop is scheduled
//! and pipelined first, and partitioned into the prologue, static
//! schedule, and epilogue. When rotations are applied on the outer
//! loop, the static-schedule part is treated as a compound node, which
//! occupies several functional units and takes several control steps."
//!
//! This module implements that scheme:
//!
//! * [`CompoundNode`] — the inner loop's full execution (prologue +
//!   `n` kernels + epilogue) collapsed into one operation with a
//!   per-step, per-class **occupancy profile**;
//! * [`NestedScheduler`] — list scheduling of an outer DFG in which one
//!   node is a compound node (profile-aware reservations), with full
//!   and partial modes;
//! * [`down_rotate_nested`] — rotation on the outer loop, treating the
//!   compound node like any other operation.

use rotsched_dfg::analysis::topo::is_zero_delay_under;
use rotsched_dfg::{Dfg, NodeId, Retiming};
use rotsched_sched::{
    LoopSchedule, PriorityPolicy, ReservationTable, ResourceSet, SchedError, Schedule,
};

use crate::error::RotationError;

/// An inner loop collapsed into a single schedulable operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompoundNode {
    /// `profile[step][class]` = units of `class` busy during the
    /// compound's step `step` (0-based offsets from its start).
    profile: Vec<Vec<u32>>,
}

impl CompoundNode {
    /// Collapses the expanded execution of `inner` (pipelined by
    /// `loop_schedule`, run for `iterations` iterations) into a
    /// compound node: the total span in control steps and the exact
    /// per-step unit usage.
    ///
    /// # Panics
    ///
    /// Panics if an inner operation is not bound to any resource class.
    #[must_use]
    pub fn from_loop(
        inner: &Dfg,
        loop_schedule: &LoopSchedule,
        resources: &ResourceSet,
        iterations: u32,
    ) -> Self {
        let events = loop_schedule.events(inner, iterations);
        let first = events.iter().map(|e| e.start).min().unwrap_or(0);
        let last = events
            .iter()
            .map(|e| e.start + i64::from(inner.node(e.node).time().max(1)) - 1)
            .max()
            .unwrap_or(0);
        let span = usize::try_from(last - first + 1).unwrap_or(1).max(1);
        let mut profile = vec![vec![0_u32; resources.classes().len()]; span];
        for e in &events {
            let class = resources
                .class_for(inner.node(e.node).op())
                .expect("inner operations are bound");
            for off in resources.class(class).occupancy(inner.node(e.node).time()) {
                let step =
                    usize::try_from(e.start + i64::from(off) - first).expect("event within span");
                profile[step][class.index()] += 1;
            }
        }
        CompoundNode { profile }
    }

    /// The compound's span in control steps.
    #[must_use]
    pub fn span(&self) -> u32 {
        u32::try_from(self.profile.len()).expect("span fits")
    }

    /// The occupancy profile (`[step][class]`).
    #[must_use]
    pub fn profile(&self) -> &[Vec<u32>] {
        &self.profile
    }

    /// The peak unit usage per class across the span.
    #[must_use]
    pub fn peak_usage(&self) -> Vec<u32> {
        let classes = self.profile.first().map_or(0, Vec::len);
        (0..classes)
            .map(|c| self.profile.iter().map(|row| row[c]).max().unwrap_or(0))
            .collect()
    }
}

/// Outer-loop scheduling with one compound node.
#[derive(Clone, Debug)]
pub struct NestedScheduler {
    policy: PriorityPolicy,
}

impl Default for NestedScheduler {
    fn default() -> Self {
        NestedScheduler {
            policy: PriorityPolicy::DescendantCount,
        }
    }
}

impl NestedScheduler {
    /// A nested scheduler with the given priority policy for the outer
    /// loop's regular operations.
    #[must_use]
    pub fn new(policy: PriorityPolicy) -> Self {
        NestedScheduler { policy }
    }

    /// Schedules the outer DFG. `compound_at` names the outer node that
    /// stands for the inner loop; its [`Dfg`] computation time must
    /// equal `compound.span()` so precedence arithmetic is consistent.
    ///
    /// # Errors
    ///
    /// Same failure modes as list scheduling, plus a panic-free check
    /// that the compound fits the resource set at all (its peak usage
    /// must not exceed any class count, else
    /// [`SchedError::ResourceOverflow`]).
    pub fn schedule(
        &self,
        outer: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        compound_at: NodeId,
        compound: &CompoundNode,
    ) -> Result<Schedule, SchedError> {
        let mut schedule = Schedule::empty(outer);
        let free: Vec<NodeId> = outer.node_ids().collect();
        self.reschedule(
            outer,
            retiming,
            resources,
            compound_at,
            compound,
            &mut schedule,
            &free,
        )?;
        schedule.normalize();
        Ok(schedule)
    }

    /// Incremental (partial) variant: nodes outside `free` keep their
    /// steps and reservations.
    ///
    /// # Errors
    ///
    /// See [`NestedScheduler::schedule`].
    #[allow(clippy::too_many_arguments)]
    pub fn reschedule(
        &self,
        outer: &Dfg,
        retiming: Option<&Retiming>,
        resources: &ResourceSet,
        compound_at: NodeId,
        compound: &CompoundNode,
        schedule: &mut Schedule,
        free: &[NodeId],
    ) -> Result<(), SchedError> {
        // Sanity: the compound must fit the machine at all.
        for (class, &peak) in resources.classes().iter().zip(&compound.peak_usage()) {
            if peak > class.count() {
                return Err(SchedError::ResourceOverflow {
                    class: class.name().to_owned(),
                    cs: 1,
                    used: peak,
                    limit: class.count(),
                });
            }
        }
        debug_assert_eq!(
            outer.node(compound_at).time().max(1),
            compound.span().max(1),
            "the compound node's declared time must equal its span"
        );

        let weights = self
            .policy
            .weights(outer, retiming)
            .map_err(SchedError::from)?;
        let mut is_free = outer.node_map(false);
        for &v in free {
            is_free[v] = true;
            schedule.clear(v);
        }

        let mut class_of = outer.node_map(None);
        for (v, node) in outer.nodes() {
            if v != compound_at {
                class_of[v] = Some(
                    resources
                        .class_for(node.op())
                        .ok_or(SchedError::UnboundOp { node: v })?,
                );
            }
        }

        // Reservation helpers that understand the compound profile.
        // For the compound node the caller ALWAYS pre-checks with
        // `can_place_compound`, so placement here cannot fail part-way.
        let try_place = |table: &mut ReservationTable, v: NodeId, cs: u32| -> bool {
            if v == compound_at {
                for (off, row) in compound.profile.iter().enumerate() {
                    for (class_idx, &need) in row.iter().enumerate() {
                        let class = rotsched_sched::ResourceClassId::from_index(class_idx);
                        for _ in 0..need {
                            table.place(class, [cs + off as u32]);
                        }
                    }
                }
                true
            } else {
                let class_id = class_of[v].expect("bound");
                let class = resources.class(class_id);
                let steps: Vec<u32> = class
                    .occupancy(outer.node(v).time())
                    .map(|off| cs + off)
                    .collect();
                if table.can_place(class_id, steps.iter().copied()) {
                    table.place(class_id, steps);
                    true
                } else {
                    false
                }
            }
        };
        let can_place_compound = |table: &ReservationTable, cs: u32| -> bool {
            // Strict pre-check so try_place never leaves partial state.
            let mut extra: std::collections::HashMap<(usize, u32), u32> =
                std::collections::HashMap::new();
            for (off, row) in compound.profile.iter().enumerate() {
                for (class_idx, &need) in row.iter().enumerate() {
                    if need > 0 {
                        *extra.entry((class_idx, cs + off as u32)).or_insert(0) += need;
                    }
                }
            }
            extra.iter().all(|(&(class_idx, step), &need)| {
                let class = &resources.classes()[class_idx];
                table.used(rotsched_sched::ResourceClassId::from_index(class_idx), step) + need
                    <= class.count()
            })
        };

        // Reserve fixed nodes (including a fixed compound).
        let mut table = ReservationTable::new(resources);
        let fixed: Vec<(NodeId, u32)> = schedule.iter().collect();
        for (v, cs) in fixed {
            let ok = if v == compound_at {
                can_place_compound(&table, cs) && try_place(&mut table, v, cs)
            } else {
                try_place(&mut table, v, cs)
            };
            if !ok {
                return Err(SchedError::ResourceOverflow {
                    class: "outer".to_owned(),
                    cs,
                    used: 0,
                    limit: 0,
                });
            }
        }

        // Standard list loop over the zero-delay DAG of G_r.
        let mut blocking = outer.node_map(0_u32);
        for &v in free {
            for &e in outer.in_edges(v) {
                if is_zero_delay_under(outer, retiming, e) && is_free[outer.edge(e).from()] {
                    blocking[v] += 1;
                }
            }
        }
        rotsched_dfg::analysis::zero_delay_topological_order(outer, retiming)
            .map_err(SchedError::from)?;

        let mut ready: Vec<NodeId> = free.iter().copied().filter(|&v| blocking[v] == 0).collect();
        let mut remaining = free.len();
        let horizon = table.horizon()
            + u32::try_from(outer.total_time()).unwrap_or(u32::MAX)
            + compound.span()
            + 1;
        let mut cs = 1_u32;
        while remaining > 0 {
            if cs > horizon {
                return Err(SchedError::NoFeasibleSlot {
                    node: free
                        .iter()
                        .copied()
                        .find(|&v| schedule.start(v).is_none())
                        .expect("remaining > 0"),
                });
            }
            ready.sort_by_key(|&v| (core::cmp::Reverse(weights[v]), v));
            let mut placed_any = true;
            while placed_any {
                placed_any = false;
                let mut i = 0;
                while i < ready.len() {
                    let v = ready[i];
                    let mut earliest = 1;
                    for &e in outer.in_edges(v) {
                        if is_zero_delay_under(outer, retiming, e) {
                            let u = outer.edge(e).from();
                            if let Some(su) = schedule.start(u) {
                                earliest = earliest.max(su + outer.node(u).time().max(1));
                            }
                        }
                    }
                    if earliest > cs {
                        i += 1;
                        continue;
                    }
                    let ok = if v == compound_at {
                        can_place_compound(&table, cs) && try_place(&mut table, v, cs)
                    } else {
                        try_place(&mut table, v, cs)
                    };
                    if ok {
                        schedule.set(v, cs);
                        remaining -= 1;
                        ready.swap_remove(i);
                        placed_any = true;
                        for &e in outer.out_edges(v) {
                            if is_zero_delay_under(outer, retiming, e) {
                                let w = outer.edge(e).to();
                                if is_free[w] && schedule.start(w).is_none() {
                                    blocking[w] -= 1;
                                    if blocking[w] == 0 {
                                        ready.push(w);
                                    }
                                }
                            }
                        }
                    } else {
                        i += 1;
                    }
                }
                if placed_any {
                    ready.sort_by_key(|&v| (core::cmp::Reverse(weights[v]), v));
                }
            }
            cs += 1;
        }
        Ok(())
    }
}

/// One down-rotation on the outer loop of a nested schedule: the
/// compound node rotates like any other operation when it falls in the
/// prefix.
///
/// # Errors
///
/// Same failure modes as [`crate::rotate::down_rotate`].
#[allow(clippy::too_many_arguments)]
pub fn down_rotate_nested(
    outer: &Dfg,
    scheduler: &NestedScheduler,
    resources: &ResourceSet,
    compound_at: NodeId,
    compound: &CompoundNode,
    retiming: &mut Retiming,
    schedule: &mut Schedule,
    size: u32,
) -> Result<Vec<NodeId>, RotationError> {
    let length = schedule.length(outer);
    if size == 0 || size >= length {
        return Err(RotationError::InvalidSize {
            size,
            schedule_length: length,
        });
    }
    let rotated = schedule.prefix_nodes(size);
    for &v in &rotated {
        schedule.clear(v);
    }
    retiming.apply_set(&rotated, 1);
    schedule.normalize();
    scheduler.reschedule(
        outer,
        Some(retiming),
        resources,
        compound_at,
        compound,
        schedule,
        &rotated,
    )?;
    schedule.normalize();
    Ok(rotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_core_test_helpers::*;

    /// Local helpers namespaced to avoid clutter.
    mod rotsched_core_test_helpers {
        pub use rotsched_dfg::{DfgBuilder, OpKind};
    }

    /// A small inner loop: 2 mults + 1 add with a recurrence.
    fn inner_loop() -> Dfg {
        DfgBuilder::new("inner")
            .node("im1", OpKind::Mul, 2)
            .node("im2", OpKind::Mul, 2)
            .node("ia", OpKind::Add, 1)
            .wire("im1", "ia")
            .wire("im2", "ia")
            .edge("ia", "im1", 1)
            .edge("ia", "im2", 1)
            .build()
            .unwrap()
    }

    /// An outer loop: pre-processing adds, the inner loop as `LOOP`,
    /// post-processing, and an outer recurrence.
    fn outer_loop(compound_span: u32) -> (Dfg, NodeId) {
        let g = DfgBuilder::new("outer")
            .node("pre1", OpKind::Add, 1)
            .node("pre2", OpKind::Add, 1)
            .node("LOOP", OpKind::Other, compound_span)
            .node("post", OpKind::Add, 1)
            .wire("pre1", "pre2")
            .wire("pre2", "LOOP")
            .wire("LOOP", "post")
            .edge("post", "pre1", 1)
            .build()
            .unwrap();
        let id = g.node_by_name("LOOP").unwrap();
        (g, id)
    }

    fn solve_inner(res: &ResourceSet, iterations: u32) -> (Dfg, CompoundNode) {
        let inner = inner_loop();
        let solved = crate::RotationScheduler::new(&inner, res.clone())
            .solve()
            .expect("inner loop schedulable");
        let ls = crate::depth::into_loop_schedule(&inner, res, &solved.state).expect("expandable");
        let compound = CompoundNode::from_loop(&inner, &ls, res, iterations);
        (inner, compound)
    }

    #[test]
    fn compound_profile_reflects_inner_usage() {
        let res = ResourceSet::adders_multipliers(1, 2, false);
        let (_, compound) = solve_inner(&res, 4);
        assert!(compound.span() >= 4, "4 inner iterations take time");
        let peak = compound.peak_usage();
        // Class 0 = adders, class 1 = multipliers in the standard set.
        assert!(peak[1] >= 1 && peak[1] <= 2);
        assert!(peak[0] >= 1);
    }

    #[test]
    fn outer_schedule_places_the_compound() {
        let res = ResourceSet::adders_multipliers(1, 2, false);
        let (_, compound) = solve_inner(&res, 3);
        let (outer, loop_id) = outer_loop(compound.span());
        let s = NestedScheduler::default()
            .schedule(&outer, None, &res, loop_id, &compound)
            .unwrap();
        assert!(s.is_complete());
        // pre2 finishes before LOOP starts; post starts after it ends.
        let pre2 = s.start(outer.node_by_name("pre2").unwrap()).unwrap();
        let lp = s.start(loop_id).unwrap();
        let post = s.start(outer.node_by_name("post").unwrap()).unwrap();
        assert!(pre2 < lp);
        assert!(lp + compound.span() <= post);
    }

    #[test]
    fn compound_too_big_for_the_machine_is_rejected() {
        let big = ResourceSet::adders_multipliers(2, 2, false);
        let (_, compound) = solve_inner(&big, 3);
        let tiny = ResourceSet::adders_multipliers(2, 0, false);
        let (outer, loop_id) = outer_loop(compound.span());
        let err = NestedScheduler::default()
            .schedule(&outer, None, &tiny, loop_id, &compound)
            .unwrap_err();
        assert!(matches!(err, SchedError::ResourceOverflow { .. }));
    }

    #[test]
    fn outer_rotation_overlaps_around_the_compound() {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let (_, compound) = solve_inner(&res, 2);
        let (outer, loop_id) = outer_loop(compound.span());
        let sched = NestedScheduler::default();
        let mut s = sched
            .schedule(&outer, None, &res, loop_id, &compound)
            .unwrap();
        let mut r = Retiming::zero(&outer);
        let before = s.length(&outer);
        // Rotate the prefix (pre1): it moves into the slack alongside
        // the compound, shortening or preserving the schedule.
        down_rotate_nested(&outer, &sched, &res, loop_id, &compound, &mut r, &mut s, 1).unwrap();
        assert!(r.is_legal(&outer));
        assert!(s.length(&outer) <= before);
        assert!(s.is_complete());
    }

    #[test]
    fn outer_ops_fill_compound_slack() {
        // The inner loop barely uses the adders; an independent outer
        // add (fed through a delay) should co-schedule WITH the
        // compound rather than after it.
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let (_, compound) = solve_inner(&res, 3);
        let outer = DfgBuilder::new("outer")
            .node("LOOP", OpKind::Other, compound.span())
            .node("free_add", OpKind::Add, 1)
            .edge("LOOP", "free_add", 1)
            .build()
            .unwrap();
        let loop_id = outer.node_by_name("LOOP").unwrap();
        let s = NestedScheduler::default()
            .schedule(&outer, None, &res, loop_id, &compound)
            .unwrap();
        let lp = s.start(loop_id).unwrap();
        let fa = s.start(outer.node_by_name("free_add").unwrap()).unwrap();
        assert!(
            fa < lp + compound.span(),
            "the independent add shares the compound's span (slack steps)"
        );
    }
}
