//! Search tracing: turning [`SearchDriver`](crate::engine::SearchDriver)
//! events into convergence telemetry.
//!
//! [`TraceRecorder`] is a [`SearchObserver`] that aggregates the event
//! stream into per-phase counters (rotations tried, weight-memo cache
//! hits, prunes, improvements) and a best-length trajectory, while
//! keeping a bounded ring of the most recent raw events (older events
//! are dropped and counted, never reallocated). Tracing never steers
//! the search — a traced run returns the bit-identical result of an
//! untraced one — and the untraced path pays nothing: the driver's
//! default [`NoopObserver`](crate::engine::NoopObserver) monomorphizes
//! every emission away.
//!
//! The finished [`SearchTrace`] renders as text (`rotsched solve
//! --trace`) or as canonical JSON (`--trace=json`) with the same
//! hand-rolled, byte-stable discipline as `rotsched-verify`: the output
//! of [`SearchTrace::render_json`] parses back via
//! [`SearchTrace::parse_json`] and re-renders to the identical bytes
//! (enforced in CI).
//!
//! [`SearchObserver`]: crate::engine::SearchObserver

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::budget::StopReason;
use crate::engine::{SearchEvent, SearchObserver};
use crate::objective::Score;

/// Default event-ring capacity used by the traced solve entry points.
pub const DEFAULT_TRACE_EVENTS: usize = 256;

/// An owned, compact copy of one [`SearchEvent`] as kept in the trace
/// ring. Rotated node sets are recorded by cardinality only — the trace
/// is telemetry, not a replay log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A phase began.
    PhaseStart {
        /// Requested rotation size.
        size: u32,
        /// Rotations the phase was allowed (`α`).
        alpha: u64,
    },
    /// One down-rotation completed.
    Rotated {
        /// How many nodes the rotated set contained.
        nodes: u64,
        /// The wrapped schedule length after the rotation.
        length: u32,
    },
    /// The incumbent best score strictly improved.
    Improved {
        /// The new best length (the score's primary component).
        length: u32,
        /// The full packed score. Under the default length-only
        /// objective this is exactly `Score::from_length(length)` and
        /// the rendered encoding omits it, keeping trace bytes
        /// identical to pre-objective releases.
        score: Score,
    },
    /// An inter-phase `FullSchedule(G_R)` reschedule (Heuristic 2).
    Rescheduled {
        /// The wrapped length of the fresh schedule.
        length: u32,
    },
    /// A prune signal ended the phase or sweep.
    Pruned,
    /// A budget limit fired.
    Stopped(StopReason),
    /// A phase ended.
    PhaseEnd {
        /// Rotations the phase performed.
        rotations: u64,
        /// The incumbent best length at phase end.
        best_length: u32,
        /// Weight-memo hits accumulated by the phase.
        cache_hits: u64,
        /// Weight-memo misses accumulated by the phase.
        cache_misses: u64,
    },
}

/// Aggregated counters for one rotation phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Requested rotation size.
    pub size: u32,
    /// Rotations the phase was allowed (`α`).
    pub alpha: u64,
    /// Rotations the phase performed.
    pub rotations: u64,
    /// Weight-memo cache hits in the phase's incremental context.
    pub cache_hits: u64,
    /// Weight-memo cache misses in the phase's incremental context.
    pub cache_misses: u64,
    /// Prune-signal stops observed inside the phase.
    pub prunes: u64,
    /// Strict incumbent improvements inside the phase.
    pub improvements: u64,
    /// The incumbent best length when the phase ended.
    pub best_length: u32,
    /// The budget stop recorded inside the phase, if one fired.
    pub stopped: Option<StopReason>,
}

/// The finished trace of one search task (one driver run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskTrace {
    /// Per-phase counters in execution order.
    pub phases: Vec<PhaseCounters>,
    /// The best-length trajectory: `(rotation counter, new best)` at
    /// every strict improvement. The initial offer appears at counter 0.
    pub trajectory: Vec<(u64, u32)>,
    /// Total rotations performed by the task.
    pub rotations: u64,
    /// Total prune-signal stops (including sweep-level ones outside any
    /// phase).
    pub prunes: u64,
    /// The first budget stop observed, if any fired.
    pub stopped: Option<StopReason>,
    /// The most recent raw events, oldest first (bounded ring).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring (capacity overflow).
    pub dropped: u64,
}

impl TaskTrace {
    /// The incumbent best length after exactly `k` rotations: the last
    /// trajectory improvement recorded at a counter `<= k`. `None` only
    /// for a trace that never admitted a schedule.
    ///
    /// For a deterministically budgeted run this equals the best length
    /// a fresh solve under `Budget::with_max_rotations(k)` returns — one
    /// traced run replays the whole degradation table (enforced by the
    /// `trace_determinism` suite).
    #[must_use]
    pub fn best_at_rotation(&self, k: u64) -> Option<u32> {
        self.trajectory
            .iter()
            .take_while(|&&(counter, _)| counter <= k)
            .last()
            .map(|&(_, length)| length)
    }

    /// The final incumbent best length, if any schedule was admitted.
    #[must_use]
    pub fn best_length(&self) -> Option<u32> {
        self.trajectory.last().map(|&(_, length)| length)
    }
}

/// A complete solve trace: one [`TaskTrace`] per deterministic search
/// task.
///
/// For a single-sweep solve there is exactly one task. For a portfolio
/// solve the trace keeps the **deterministic prefix** of the task list:
/// tasks `0..=canonical_task` when the lower bound was achieved, all
/// tasks otherwise — the same rule [`PortfolioOutcome::phases`] follows.
/// Tasks above the canonical achiever are cross-pruned at
/// timing-dependent points, so their streams are discarded rather than
/// reported; everything kept is identical for every `--jobs` value.
///
/// [`PortfolioOutcome::phases`]: crate::portfolio::PortfolioOutcome::phases
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchTrace {
    /// Per-task traces, in task-index order.
    pub tasks: Vec<TaskTrace>,
}

/// The ring-buffered [`SearchObserver`] behind `rotsched solve --trace`.
///
/// Counters and the trajectory live outside the ring, so they are exact
/// regardless of capacity; only the raw event replay is bounded. A
/// capacity of 0 keeps no raw events (every event counts as dropped).
///
/// [`SearchObserver`]: crate::engine::SearchObserver
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    rotation_counter: u64,
    trajectory: Vec<(u64, u32)>,
    phases: Vec<PhaseCounters>,
    current: Option<PhaseCounters>,
    prunes: u64,
    stopped: Option<StopReason>,
}

impl TraceRecorder {
    /// A fresh recorder keeping at most `capacity` raw events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            rotation_counter: 0,
            trajectory: Vec::new(),
            phases: Vec::new(),
            current: None,
            prunes: 0,
            stopped: None,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Finishes the recording and returns the assembled task trace.
    #[must_use]
    pub fn finish(self) -> TaskTrace {
        TaskTrace {
            phases: self.phases,
            trajectory: self.trajectory,
            rotations: self.rotation_counter,
            prunes: self.prunes,
            stopped: self.stopped,
            events: self.events.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_TRACE_EVENTS)
    }
}

impl SearchObserver for TraceRecorder {
    fn on_event(&mut self, event: SearchEvent<'_>) {
        match event {
            SearchEvent::PhaseStart { size, alpha } => {
                self.current = Some(PhaseCounters {
                    size,
                    alpha: alpha as u64,
                    ..PhaseCounters::default()
                });
                self.push(TraceEvent::PhaseStart {
                    size,
                    alpha: alpha as u64,
                });
            }
            SearchEvent::Rotated { node_set, length } => {
                self.rotation_counter += 1;
                if let Some(c) = self.current.as_mut() {
                    c.rotations += 1;
                }
                self.push(TraceEvent::Rotated {
                    nodes: node_set.len() as u64,
                    length,
                });
            }
            SearchEvent::IncumbentImproved { length, score } => {
                self.trajectory.push((self.rotation_counter, length));
                if let Some(c) = self.current.as_mut() {
                    c.improvements += 1;
                }
                self.push(TraceEvent::Improved { length, score });
            }
            SearchEvent::Rescheduled { length } => {
                self.push(TraceEvent::Rescheduled { length });
            }
            SearchEvent::Pruned => {
                self.prunes += 1;
                if let Some(c) = self.current.as_mut() {
                    c.prunes += 1;
                }
                self.push(TraceEvent::Pruned);
            }
            SearchEvent::Stopped(reason) => {
                if self.stopped.is_none() {
                    self.stopped = Some(reason);
                }
                if let Some(c) = self.current.as_mut() {
                    c.stopped = Some(reason);
                }
                self.push(TraceEvent::Stopped(reason));
            }
            SearchEvent::PhaseEnd {
                rotations,
                best_length,
                cache,
            } => {
                if let Some(mut c) = self.current.take() {
                    c.cache_hits = cache.weight_memo_hits;
                    c.cache_misses = cache.weight_memo_misses;
                    c.best_length = best_length;
                    debug_assert_eq!(c.rotations, rotations as u64);
                    self.phases.push(c);
                }
                self.push(TraceEvent::PhaseEnd {
                    rotations: rotations as u64,
                    best_length,
                    cache_hits: cache.weight_memo_hits,
                    cache_misses: cache.weight_memo_misses,
                });
            }
        }
    }
}

fn stop_reason_str(reason: StopReason) -> &'static str {
    match reason {
        StopReason::Cancelled => "cancelled",
        StopReason::RotationBudget => "rotation-budget",
        StopReason::Deadline => "deadline",
    }
}

fn parse_stop_reason(s: &str) -> Result<StopReason, String> {
    match s {
        "cancelled" => Ok(StopReason::Cancelled),
        "rotation-budget" => Ok(StopReason::RotationBudget),
        "deadline" => Ok(StopReason::Deadline),
        other => Err(format!("unknown stop reason `{other}`")),
    }
}

impl TraceEvent {
    /// The canonical single-token-stream encoding used in JSON (and
    /// inverted by [`TraceEvent::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            TraceEvent::PhaseStart { size, alpha } => {
                format!("phase-start size={size} alpha={alpha}")
            }
            TraceEvent::Rotated { nodes, length } => {
                format!("rotated nodes={nodes} length={length}")
            }
            TraceEvent::Improved { length, score } => {
                if *score == Score::from_length(*length) {
                    format!("improved length={length}")
                } else {
                    format!("improved length={length} score={}", score.to_bits())
                }
            }
            TraceEvent::Rescheduled { length } => format!("rescheduled length={length}"),
            TraceEvent::Pruned => "pruned".to_string(),
            TraceEvent::Stopped(reason) => format!("stopped reason={}", stop_reason_str(*reason)),
            TraceEvent::PhaseEnd {
                rotations,
                best_length,
                cache_hits,
                cache_misses,
            } => format!(
                "phase-end rotations={rotations} best={best_length} hits={cache_hits} misses={cache_misses}"
            ),
        }
    }

    /// Parses the encoding produced by [`TraceEvent::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(s: &str) -> Result<TraceEvent, String> {
        let mut parts = s.split(' ');
        let head = parts.next().ok_or_else(|| "empty event".to_string())?;
        let mut fields = Vec::new();
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed event field `{part}`"))?;
            fields.push((key, value));
        }
        let field = |name: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|&(_, v)| v)
                .ok_or_else(|| format!("event `{head}` missing field `{name}`"))
        };
        let num_u64 = |name: &str| -> Result<u64, String> {
            field(name)?
                .parse::<u64>()
                .map_err(|_| format!("event `{head}` field `{name}` is not a number"))
        };
        let num_u32 = |name: &str| -> Result<u32, String> {
            field(name)?
                .parse::<u32>()
                .map_err(|_| format!("event `{head}` field `{name}` is not a number"))
        };
        match head {
            "phase-start" => Ok(TraceEvent::PhaseStart {
                size: num_u32("size")?,
                alpha: num_u64("alpha")?,
            }),
            "rotated" => Ok(TraceEvent::Rotated {
                nodes: num_u64("nodes")?,
                length: num_u32("length")?,
            }),
            "improved" => {
                let length = num_u32("length")?;
                let score = match field("score") {
                    Ok(bits) => Score::from_bits(bits.parse::<u64>().map_err(|_| {
                        "event `improved` field `score` is not a number".to_string()
                    })?),
                    Err(_) => Score::from_length(length),
                };
                Ok(TraceEvent::Improved { length, score })
            }
            "rescheduled" => Ok(TraceEvent::Rescheduled {
                length: num_u32("length")?,
            }),
            "pruned" => Ok(TraceEvent::Pruned),
            "stopped" => Ok(TraceEvent::Stopped(parse_stop_reason(field("reason")?)?)),
            "phase-end" => Ok(TraceEvent::PhaseEnd {
                rotations: num_u64("rotations")?,
                best_length: num_u32("best")?,
                cache_hits: num_u64("hits")?,
                cache_misses: num_u64("misses")?,
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------
// Canonical JSON (hand-rolled, byte-stable; same discipline as
// rotsched-verify — no serde, render ∘ parse ∘ render is the identity
// on the byte level).
// ---------------------------------------------------------------------

/// The schema tag embedded in every rendered trace.
pub const TRACE_SCHEMA: &str = "rotsched-trace-v1";

fn render_stopped(out: &mut String, stopped: Option<StopReason>) {
    match stopped {
        Some(reason) => {
            out.push('"');
            out.push_str(stop_reason_str(reason));
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

impl SearchTrace {
    /// A single-task trace (the shape every non-portfolio solve
    /// produces).
    #[must_use]
    pub fn single(task: TaskTrace) -> Self {
        SearchTrace { tasks: vec![task] }
    }

    /// Renders the trace as canonical JSON. The rendering is total and
    /// deterministic: equal traces render to equal bytes, and
    /// [`SearchTrace::parse_json`] inverts it exactly.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{TRACE_SCHEMA}\",");
        out.push_str("  \"tasks\": [");
        for (i, task) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"rotations\": {},", task.rotations);
            let _ = writeln!(out, "      \"prunes\": {},", task.prunes);
            out.push_str("      \"stopped\": ");
            render_stopped(&mut out, task.stopped);
            out.push_str(",\n");
            let _ = writeln!(out, "      \"dropped\": {},", task.dropped);
            out.push_str("      \"phases\": [");
            for (j, p) in task.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {");
                let _ = write!(
                    out,
                    "\"size\": {}, \"alpha\": {}, \"rotations\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"prunes\": {}, \"improvements\": {}, \"best_length\": {}, \"stopped\": ",
                    p.size,
                    p.alpha,
                    p.rotations,
                    p.cache_hits,
                    p.cache_misses,
                    p.prunes,
                    p.improvements,
                    p.best_length
                );
                render_stopped(&mut out, p.stopped);
                out.push('}');
            }
            if task.phases.is_empty() {
                out.push_str("],\n");
            } else {
                out.push_str("\n      ],\n");
            }
            out.push_str("      \"trajectory\": [");
            for (j, &(counter, length)) in task.trajectory.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{counter}, {length}]");
            }
            out.push_str("],\n");
            out.push_str("      \"events\": [");
            for (j, event) in task.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        \"");
                out.push_str(&event.render());
                out.push('"');
            }
            if task.events.is_empty() {
                out.push_str("]\n");
            } else {
                out.push_str("\n      ]\n");
            }
            out.push_str("    }");
        }
        if self.tasks.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// Parses JSON produced by [`SearchTrace::render_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or schema
    /// violation.
    pub fn parse_json(input: &str) -> Result<SearchTrace, String> {
        let value = json::parse(input)?;
        let root = value.as_object("trace root")?;
        let schema = json::get(root, "schema")?.as_str("schema")?;
        if schema != TRACE_SCHEMA {
            return Err(format!("unsupported trace schema `{schema}`"));
        }
        let mut tasks = Vec::new();
        for (i, tv) in json::get(root, "tasks")?
            .as_array("tasks")?
            .iter()
            .enumerate()
        {
            let t = tv.as_object(&format!("tasks[{i}]"))?;
            let mut phases = Vec::new();
            for (j, pv) in json::get(t, "phases")?
                .as_array("phases")?
                .iter()
                .enumerate()
            {
                let p = pv.as_object(&format!("phases[{j}]"))?;
                phases.push(PhaseCounters {
                    size: json::get(p, "size")?.as_u32("size")?,
                    alpha: json::get(p, "alpha")?.as_u64("alpha")?,
                    rotations: json::get(p, "rotations")?.as_u64("rotations")?,
                    cache_hits: json::get(p, "cache_hits")?.as_u64("cache_hits")?,
                    cache_misses: json::get(p, "cache_misses")?.as_u64("cache_misses")?,
                    prunes: json::get(p, "prunes")?.as_u64("prunes")?,
                    improvements: json::get(p, "improvements")?.as_u64("improvements")?,
                    best_length: json::get(p, "best_length")?.as_u32("best_length")?,
                    stopped: parse_stopped(json::get(p, "stopped")?)?,
                });
            }
            let mut trajectory = Vec::new();
            for (j, point) in json::get(t, "trajectory")?
                .as_array("trajectory")?
                .iter()
                .enumerate()
            {
                let pair = point.as_array(&format!("trajectory[{j}]"))?;
                if pair.len() != 2 {
                    return Err(format!("trajectory[{j}] is not a pair"));
                }
                trajectory.push((pair[0].as_u64("counter")?, pair[1].as_u32("length")?));
            }
            let mut events = Vec::new();
            for (j, ev) in json::get(t, "events")?
                .as_array("events")?
                .iter()
                .enumerate()
            {
                events.push(TraceEvent::parse(ev.as_str(&format!("events[{j}]"))?)?);
            }
            tasks.push(TaskTrace {
                phases,
                trajectory,
                rotations: json::get(t, "rotations")?.as_u64("rotations")?,
                prunes: json::get(t, "prunes")?.as_u64("prunes")?,
                stopped: parse_stopped(json::get(t, "stopped")?)?,
                events,
                dropped: json::get(t, "dropped")?.as_u64("dropped")?,
            });
        }
        Ok(SearchTrace { tasks })
    }

    /// Renders the trace as the human-readable report behind
    /// `rotsched solve --trace`.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "search trace: {} task(s)", self.tasks.len());
        for (i, task) in self.tasks.iter().enumerate() {
            let best = task
                .best_length()
                .map_or_else(|| "-".to_string(), |l| l.to_string());
            let stopped = task
                .stopped
                .map_or_else(|| "ran to completion".to_string(), |r| r.to_string());
            let _ = writeln!(
                out,
                "task {i}: {} rotations, best length {best}, {} prune stop(s), {stopped}",
                task.rotations, task.prunes
            );
            for p in &task.phases {
                let stop = p.stopped.map_or(String::new(), |r| format!(", {r}"));
                let _ = writeln!(
                    out,
                    "  phase size={}: {}/{} rotations, {} hit(s)/{} miss(es), {} improvement(s), best {}{stop}",
                    p.size,
                    p.rotations,
                    p.alpha,
                    p.cache_hits,
                    p.cache_misses,
                    p.improvements,
                    p.best_length
                );
            }
            if !task.trajectory.is_empty() {
                out.push_str("  trajectory:");
                for &(counter, length) in &task.trajectory {
                    let _ = write!(out, " {counter}:{length}");
                }
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "  events kept: {} (dropped {})",
                task.events.len(),
                task.dropped
            );
        }
        out
    }
}

fn parse_stopped(value: &json::Value) -> Result<Option<StopReason>, String> {
    match value {
        json::Value::Null => Ok(None),
        json::Value::Str(s) => parse_stop_reason(s).map(Some),
        _ => Err("`stopped` must be a string or null".to_string()),
    }
}

/// A minimal JSON reader for the trace schema: objects, arrays,
/// escape-free strings, unsigned integers, and `null` — exactly the
/// grammar [`SearchTrace::render_json`] emits.
mod json {
    /// A parsed JSON value (the subset the trace schema uses).
    #[derive(Debug)]
    pub enum Value {
        /// A JSON object, in source order.
        Object(Vec<(String, Value)>),
        /// A JSON array.
        Array(Vec<Value>),
        /// An escape-free string.
        Str(String),
        /// An unsigned integer.
        Num(u64),
        /// `null`.
        Null,
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Object(fields) => Ok(fields),
                _ => Err(format!("{what} is not an object")),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(items) => Ok(items),
                _ => Err(format!("{what} is not an array")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("{what} is not a string")),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("{what} is not a number")),
            }
        }

        pub fn as_u32(&self, what: &str) -> Result<u32, String> {
            u32::try_from(self.as_u64(what)?).map_err(|_| format!("{what} overflows u32"))
        }
    }

    pub fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\n' | b'\t' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'0'..=b'9') => self.number(),
                Some(b'n') => {
                    if self.bytes[self.pos..].starts_with(b"null") {
                        self.pos += 4;
                        Ok(Value::Null)
                    } else {
                        Err(format!("bad literal at byte {}", self.pos))
                    }
                }
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'"' => {
                        let s = core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?
                            .to_string();
                        self.pos += 1;
                        return Ok(s);
                    }
                    b'\\' => return Err("escape sequences are not part of the schema".to_string()),
                    _ => self.pos += 1,
                }
            }
            Err("unterminated string".to_string())
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            core::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchDriver;
    use crate::heuristics::HeuristicConfig;
    use rotsched_dfg::{DfgBuilder, OpKind};
    use rotsched_sched::{ListScheduler, ResourceSet};

    fn traced_run() -> SearchTrace {
        let g = DfgBuilder::new("ring")
            .nodes("v", 6, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3", "v4", "v5"])
            .edge("v5", "v0", 3)
            .build()
            .unwrap();
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let mut driver =
            SearchDriver::incremental(&g, &sched, &res).with_observer(TraceRecorder::default());
        let config = HeuristicConfig {
            rotations_per_phase: 16,
            max_size: None,
            keep_best: 8,
            rounds: 1,
        };
        driver.heuristic2(&config).unwrap();
        SearchTrace::single(driver.observer.finish())
    }

    #[test]
    fn json_round_trips_byte_stably() {
        let trace = traced_run();
        let rendered = trace.render_json();
        let parsed = SearchTrace::parse_json(&rendered).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.render_json(), rendered, "render ∘ parse is identity");
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = SearchTrace::default();
        let parsed = SearchTrace::parse_json(&trace.render_json()).unwrap();
        assert_eq!(parsed, trace);
        let one = SearchTrace::single(TaskTrace::default());
        let parsed = SearchTrace::parse_json(&one.render_json()).unwrap();
        assert_eq!(parsed, one);
        assert_eq!(parsed.render_json(), one.render_json());
    }

    #[test]
    fn counters_are_exact_even_with_a_tiny_ring() {
        let g = DfgBuilder::new("ring")
            .nodes("v", 5, OpKind::Add, 1)
            .chain(&["v0", "v1", "v2", "v3", "v4"])
            .edge("v4", "v0", 2)
            .build()
            .unwrap();
        let sched = ListScheduler::default();
        let res = ResourceSet::adders_multipliers(2, 0, false);
        let config = HeuristicConfig {
            rotations_per_phase: 8,
            max_size: None,
            keep_best: 4,
            rounds: 1,
        };
        let mut full = SearchDriver::incremental(&g, &sched, &res)
            .with_observer(TraceRecorder::new(usize::MAX >> 1));
        full.heuristic2(&config).unwrap();
        let full = full.observer.finish();
        let mut tiny =
            SearchDriver::incremental(&g, &sched, &res).with_observer(TraceRecorder::new(3));
        tiny.heuristic2(&config).unwrap();
        let tiny = tiny.observer.finish();
        assert_eq!(full.rotations, tiny.rotations);
        assert_eq!(full.phases, tiny.phases);
        assert_eq!(full.trajectory, tiny.trajectory);
        assert_eq!(tiny.events.len(), 3);
        assert!(tiny.dropped > 0);
        assert_eq!(
            tiny.dropped + tiny.events.len() as u64,
            full.events.len() as u64
        );
        let zero = TraceRecorder::new(0);
        let zero = {
            let mut d = SearchDriver::incremental(&g, &sched, &res).with_observer(zero);
            d.heuristic2(&config).unwrap();
            d.observer.finish()
        };
        assert!(zero.events.is_empty());
        assert_eq!(zero.phases, full.phases);
    }

    #[test]
    fn trajectory_prefix_queries() {
        let task = TaskTrace {
            trajectory: vec![(0, 6), (2, 4), (7, 3)],
            ..TaskTrace::default()
        };
        assert_eq!(task.best_at_rotation(0), Some(6));
        assert_eq!(task.best_at_rotation(1), Some(6));
        assert_eq!(task.best_at_rotation(2), Some(4));
        assert_eq!(task.best_at_rotation(6), Some(4));
        assert_eq!(task.best_at_rotation(7), Some(3));
        assert_eq!(task.best_at_rotation(u64::MAX), Some(3));
        assert_eq!(task.best_length(), Some(3));
        assert_eq!(TaskTrace::default().best_at_rotation(5), None);
    }

    #[test]
    fn event_encoding_round_trips() {
        let events = [
            TraceEvent::PhaseStart { size: 3, alpha: 32 },
            TraceEvent::Rotated {
                nodes: 2,
                length: 5,
            },
            TraceEvent::Improved {
                length: 4,
                score: Score::from_length(4),
            },
            TraceEvent::Improved {
                length: 4,
                score: Score::new(4, 2, 7),
            },
            TraceEvent::Rescheduled { length: 4 },
            TraceEvent::Pruned,
            TraceEvent::Stopped(StopReason::RotationBudget),
            TraceEvent::Stopped(StopReason::Cancelled),
            TraceEvent::Stopped(StopReason::Deadline),
            TraceEvent::PhaseEnd {
                rotations: 32,
                best_length: 4,
                cache_hits: 10,
                cache_misses: 3,
            },
        ];
        for event in events {
            assert_eq!(TraceEvent::parse(&event.render()), Ok(event));
        }
        assert_eq!(
            TraceEvent::Improved {
                length: 4,
                score: Score::from_length(4),
            }
            .render(),
            "improved length=4",
            "default-objective improvements keep the pre-objective encoding"
        );
        assert!(TraceEvent::parse("nonsense").is_err());
        assert!(TraceEvent::parse("rotated nodes=x length=1").is_err());
        assert!(TraceEvent::parse("stopped reason=whatever").is_err());
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"schema\": \"wrong\", \"tasks\": []}",
            "{\"schema\": \"rotsched-trace-v1\"}",
            "{\"schema\": \"rotsched-trace-v1\", \"tasks\": [{}]}",
            "{\"schema\": \"rotsched-trace-v1\", \"tasks\": [1]}",
            "{\"schema\": \"rotsched-trace-v1\", \"tasks\": []} x",
        ] {
            assert!(SearchTrace::parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn text_report_mentions_the_key_counters() {
        let trace = traced_run();
        let text = trace.render_text();
        assert!(text.contains("search trace: 1 task(s)"));
        assert!(text.contains("task 0:"));
        assert!(text.contains("phase size="));
        assert!(text.contains("trajectory:"));
    }
}
