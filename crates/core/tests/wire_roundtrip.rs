//! The wire-format round-trip guarantee, enforced over a seeded corpus:
//! `parse_problem(&render_problem(&spec)) == spec` for every spec the
//! generators can produce — random graphs, varied resource allocations
//! (including multi-class sets with pipelined units), all four priority
//! policies, swept heuristic configurations, and budgets down to
//! sub-millisecond deadlines. The canonical cache key must likewise be
//! stable under a render→parse→render cycle and blind to budgets.

use core::time::Duration;

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{
    cache_fingerprint, cache_key_text, parse_problem, render_problem, Budget, HeuristicConfig,
    ProblemSpec,
};
use rotsched_dfg::rng::SplitMix64;
use rotsched_sched::{PriorityPolicy, ResourceSet};

const CORPUS: u64 = 120;

const POLICIES: [PriorityPolicy; 4] = [
    PriorityPolicy::DescendantCount,
    PriorityPolicy::PathHeight,
    PriorityPolicy::Mobility,
    PriorityPolicy::InputOrder,
];

/// A seed-determined spec wandering the whole wire surface.
fn spec_for(seed: u64) -> ProblemSpec {
    let mut rng = SplitMix64::new(seed.wrapping_mul(6364).wrapping_add(11));
    let nodes = rng.range_u32(3, 16) as usize;
    let dfg = random_dfg(
        &RandomDfgConfig {
            nodes,
            forward_density: 0.25,
            feedback_density: 0.1,
            max_delays: 3,
            mult_fraction: 0.4,
            mult_steps: 2,
        },
        rng.next_u64() % 1000,
    );
    let resources =
        ResourceSet::adders_multipliers(rng.range_u32(1, 3), rng.range_u32(1, 2), rng.chance(0.5));
    let config = HeuristicConfig {
        rotations_per_phase: 1 + rng.index(64),
        max_size: rng.chance(0.5).then(|| rng.range_u32(1, 8)),
        keep_best: 1 + rng.index(16),
        rounds: 1 + rng.index(4),
    };
    let mut budget = Budget::unlimited();
    if rng.chance(0.4) {
        // Mix whole-millisecond deadlines (rendered as `deadline-ms`)
        // with nanosecond-precision ones (rendered as `deadline-ns`).
        budget = if rng.chance(0.5) {
            budget.with_deadline(Duration::from_millis(1 + rng.next_u64() % 10_000))
        } else {
            budget.with_deadline(Duration::from_nanos(1 + rng.next_u64() % 5_000_000_000))
        };
    }
    if rng.chance(0.4) {
        budget = budget.with_max_rotations(rng.next_u64() % 1_000_000);
    }
    ProblemSpec::new(dfg, resources)
        .with_policy(POLICIES[rng.index(POLICIES.len())])
        .with_config(config)
        .with_budget(budget)
}

#[test]
fn roundtrip_is_exact_over_a_seeded_corpus() {
    for seed in 0..CORPUS {
        let spec = spec_for(seed);
        let wire = render_problem(&spec);
        let back = parse_problem(&wire)
            .unwrap_or_else(|e| panic!("seed {seed}: rendered spec failed to parse: {e}\n{wire}"));
        assert_eq!(back, spec, "seed {seed}: parse(render(spec)) != spec");
        // Rendering is a fixed point: a second trip is byte-identical.
        assert_eq!(
            render_problem(&back),
            wire,
            "seed {seed}: render not stable"
        );
    }
}

#[test]
fn cache_keys_are_canonical_and_budget_blind() {
    for seed in 0..CORPUS {
        let spec = spec_for(seed);
        let back = parse_problem(&render_problem(&spec)).expect("round-trips");
        assert_eq!(
            cache_key_text(&back),
            cache_key_text(&spec),
            "seed {seed}: cache key changed across a wire round-trip"
        );
        let mut unbudgeted = spec.clone();
        unbudgeted.budget = Budget::unlimited();
        assert_eq!(
            cache_key_text(&spec),
            cache_key_text(&unbudgeted),
            "seed {seed}: budget leaked into the cache key"
        );
        assert_eq!(
            cache_fingerprint(&spec),
            cache_fingerprint(&unbudgeted),
            "seed {seed}: budget leaked into the fingerprint"
        );
    }
}

#[test]
fn distinct_problems_get_distinct_keys() {
    // Fingerprints may collide in principle; over this corpus the full
    // key texts must all differ (the consumer compares full keys, but a
    // generator collapsing distinct problems onto one key would make
    // the cache serve wrong answers silently).
    let mut keys: Vec<String> = (0..CORPUS).map(|s| cache_key_text(&spec_for(s))).collect();
    let total = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), total, "corpus produced duplicate cache keys");
}
