//! Seeded randomized tests for the instrumented engine: observing a
//! search must never change it, the recorded trace must be identical
//! for every worker-thread count, the best-length trajectory must
//! replay budgeted runs exactly, and the trace's JSON form must
//! round-trip byte-stably.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{
    heuristic2_pruned, Budget, HeuristicConfig, Portfolio, RotationScheduler, SearchDriver,
    SearchTrace, TraceRecorder,
};
use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet};

const CASES: u64 = 24;

fn random_graph(rng: &mut SplitMix64) -> Dfg {
    let seed = rng.next_u64() % 500;
    let nodes = rng.range_u32(4, 11) as usize;
    random_dfg(
        &RandomDfgConfig {
            nodes,
            forward_density: 0.2,
            feedback_density: 0.1,
            max_delays: 2,
            mult_fraction: 0.3,
            mult_steps: 2,
        },
        seed,
    )
}

fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 8,
        max_size: None,
        keep_best: 4,
        rounds: 1,
    }
}

/// Observation is free of side effects: a traced solve returns the
/// bit-identical outcome of an untraced solve, for the single-sweep and
/// the portfolio paths alike.
#[test]
fn traced_solve_is_bit_identical_to_untraced() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x7ACE ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        for jobs in [1_usize, 4] {
            let scheduler = RotationScheduler::new(&g, res.clone())
                .with_config(config())
                .with_jobs(jobs);
            let (plain, traced) = if jobs > 1 {
                (
                    scheduler.solve_portfolio().expect("solves"),
                    scheduler.solve_portfolio_traced(64).expect("solves"),
                )
            } else {
                (
                    scheduler.solve().expect("solves"),
                    scheduler.solve_traced(64).expect("solves"),
                )
            };
            let (observed, _trace) = traced;
            let what = format!("case {case}, jobs {jobs}");
            assert_eq!(observed.length, plain.length, "{what}: length");
            assert_eq!(observed.depth, plain.depth, "{what}: depth");
            assert_eq!(observed.state, plain.state, "{what}: winning state");
            assert_eq!(observed.quality, plain.quality, "{what}: quality");
            assert_eq!(observed.stats, plain.stats, "{what}: stats");
            assert_eq!(
                observed.outcome.best_length, plain.outcome.best_length,
                "{what}: outcome best length"
            );
            assert_eq!(
                observed.outcome.best, plain.outcome.best,
                "{what}: best schedule set"
            );
            assert_eq!(
                observed.outcome.phases, plain.outcome.phases,
                "{what}: phase stats"
            );
            assert_eq!(
                observed.outcome.total_rotations, plain.outcome.total_rotations,
                "{what}: rotation count"
            );
            assert_eq!(
                observed.outcome.stopped, plain.outcome.stopped,
                "{what}: stop reason"
            );
        }
    }
}

/// The recorded portfolio trace — counters, trajectories, and the raw
/// event streams of the deterministic task prefix — is identical for
/// every worker-thread count, and so is the outcome it rode along with.
#[test]
fn portfolio_trace_is_deterministic_in_the_thread_count() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(
            rng.range_u32(1, 2),
            rng.range_u32(1, 2),
            rng.chance(0.5),
        );
        let p = Portfolio::standard(&g, &res, &config()).expect("schedulable");
        let (seq_out, seq_trace) = p
            .clone()
            .with_jobs(1)
            .run_traced(&g, &res, 128)
            .expect("runs");
        for jobs in [2_usize, 4] {
            let (out, trace) = p
                .clone()
                .with_jobs(jobs)
                .run_traced(&g, &res, 128)
                .expect("runs");
            let what = format!("case {case}, jobs {jobs}");
            assert_eq!(out.best_length, seq_out.best_length, "{what}: best length");
            assert_eq!(out.best, seq_out.best, "{what}: canonical schedule set");
            assert_eq!(
                out.canonical_task, seq_out.canonical_task,
                "{what}: canonical task"
            );
            assert_eq!(trace, seq_trace, "{what}: traced event streams diverged");
        }
    }
}

/// One traced, unlimited Heuristic-2 run replays the whole anytime
/// degradation table: `best_at_rotation(k)` equals the best length a
/// fresh solve under `Budget::with_max_rotations(k)` returns, at every
/// budget from zero through the unlimited run's rotation count.
#[test]
fn trajectory_replays_budgeted_runs_exactly() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0xB1D ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 1, false);
        let sched = ListScheduler::default();
        let config = config();
        let mut driver =
            SearchDriver::incremental(&g, &sched, &res).with_observer(TraceRecorder::new(0));
        let full = driver.heuristic2(&config).expect("schedulable");
        let trace = driver.observer.finish();
        for k in 0..=full.total_rotations {
            let meter = Budget::default().with_max_rotations(k as u64).arm();
            let budgeted = heuristic2_pruned(&g, &sched, &res, &config, None, Some(&meter))
                .expect("schedulable");
            assert_eq!(
                trace.best_at_rotation(k as u64),
                Some(budgeted.best_length),
                "case {case}: trajectory diverged from the budget-{k} run"
            );
        }
    }
}

/// The JSON form is byte-stable: render → parse → re-render reproduces
/// the exact bytes, for single-sweep and portfolio traces alike.
#[test]
fn trace_json_round_trips_byte_stably() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0x15AB ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        for jobs in [1_usize, 4] {
            let scheduler = RotationScheduler::new(&g, res.clone())
                .with_config(config())
                .with_jobs(jobs);
            let (_, trace) = if jobs > 1 {
                scheduler.solve_portfolio_traced(32).expect("solves")
            } else {
                scheduler.solve_traced(32).expect("solves")
            };
            let rendered = trace.render_json();
            let parsed = SearchTrace::parse_json(&rendered)
                .unwrap_or_else(|e| panic!("case {case}, jobs {jobs}: {e}"));
            assert_eq!(parsed, trace, "case {case}, jobs {jobs}: parse lost data");
            assert_eq!(
                parsed.render_json(),
                rendered,
                "case {case}, jobs {jobs}: re-render not byte-identical"
            );
        }
    }
}

/// A tiny event ring never corrupts the exact side of the trace: the
/// counters, trajectory, and totals of a capacity-2 recording equal the
/// ones of a roomy recording; only the raw event replay is truncated.
#[test]
fn ring_capacity_only_bounds_the_raw_replay() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0x21C6 ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let scheduler = RotationScheduler::new(&g, res.clone()).with_config(config());
        let (_, roomy) = scheduler.solve_traced(4096).expect("solves");
        let (_, tiny) = scheduler.solve_traced(2).expect("solves");
        let (roomy, tiny) = (&roomy.tasks[0], &tiny.tasks[0]);
        assert_eq!(tiny.phases, roomy.phases, "case {case}: phase counters");
        assert_eq!(tiny.trajectory, roomy.trajectory, "case {case}: trajectory");
        assert_eq!(tiny.rotations, roomy.rotations, "case {case}: rotations");
        assert_eq!(tiny.prunes, roomy.prunes, "case {case}: prunes");
        assert_eq!(tiny.stopped, roomy.stopped, "case {case}: stop reason");
        assert!(tiny.events.len() <= 2, "case {case}: ring overflowed");
        assert_eq!(
            tiny.dropped + tiny.events.len() as u64,
            roomy.dropped + roomy.events.len() as u64,
            "case {case}: events went missing rather than dropped"
        );
    }
}
