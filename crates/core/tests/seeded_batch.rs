//! Batch-solving equivalence: `RotationScheduler::solve_batch` must be
//! byte-identical to per-item `solve` calls on a seeded problem corpus.
//!
//! The batch path shares a list scheduler per policy (warm priority
//! memo), one `IncrementalStep` (warm arena buffers), and deduplicates
//! repeated specs by graph fingerprint — none of which may steer a
//! single decision. The corpus injects exact duplicates so the
//! deduplication path is exercised, and cycles all four priority
//! policies so scheduler sharing crosses graphs.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{HeuristicConfig, ProblemSpec, RotationScheduler, SolveOutcome};
use rotsched_dfg::rng::SplitMix64;
use rotsched_sched::{PriorityPolicy, ResourceSet};

/// Total corpus size; seeds repeat past `UNIQUE`, giving 50 duplicates.
const PROBLEMS: u64 = 200;
const UNIQUE: u64 = 150;

const POLICIES: [PriorityPolicy; 4] = [
    PriorityPolicy::DescendantCount,
    PriorityPolicy::PathHeight,
    PriorityPolicy::Mobility,
    PriorityPolicy::InputOrder,
];

fn spec_for(seed: u64) -> ProblemSpec {
    let mut rng = SplitMix64::new(seed.wrapping_mul(7919).wrapping_add(13));
    let nodes = rng.range_u32(4, 13) as usize;
    let dfg = random_dfg(
        &RandomDfgConfig {
            nodes,
            forward_density: 0.2,
            feedback_density: 0.08,
            max_delays: 2,
            mult_fraction: 0.35,
            mult_steps: 2,
        },
        rng.next_u64() % 500,
    );
    let resources =
        ResourceSet::adders_multipliers(rng.range_u32(1, 2), rng.range_u32(1, 2), rng.chance(0.5));
    let policy = POLICIES[(seed % 4) as usize];
    // A trimmed sweep keeps the 200-problem corpus fast in debug builds
    // while still running multiple phases per item.
    let config = HeuristicConfig {
        rotations_per_phase: 6,
        max_size: Some(3),
        keep_best: 4,
        rounds: 1,
    };
    ProblemSpec::new(dfg, resources)
        .with_policy(policy)
        .with_config(config)
}

fn assert_identical(got: &SolveOutcome, want: &SolveOutcome, what: &str) {
    assert_eq!(got.length, want.length, "{what}: length");
    assert_eq!(got.depth, want.depth, "{what}: depth");
    assert_eq!(got.state, want.state, "{what}: state");
    assert_eq!(got.quality, want.quality, "{what}: quality");
    assert_eq!(got.stats, want.stats, "{what}: stats");
    assert_eq!(
        got.outcome.best_length, want.outcome.best_length,
        "{what}: best_length"
    );
    assert_eq!(got.outcome.best, want.outcome.best, "{what}: best set");
    assert_eq!(got.outcome.phases, want.outcome.phases, "{what}: phases");
    assert_eq!(
        got.outcome.total_rotations, want.outcome.total_rotations,
        "{what}: rotations"
    );
    assert_eq!(got.outcome.stopped, want.outcome.stopped, "{what}: stopped");
}

#[test]
fn batch_matches_per_item_solves_on_a_seeded_corpus() {
    let specs: Vec<ProblemSpec> = (0..PROBLEMS).map(|i| spec_for(i % UNIQUE)).collect();
    let batch = RotationScheduler::solve_batch(&specs).expect("corpus is solvable");
    assert_eq!(batch.len(), specs.len());
    for (i, (spec, got)) in specs.iter().zip(&batch).enumerate() {
        let want = RotationScheduler::new(&spec.dfg, spec.resources.clone())
            .with_policy(spec.policy)
            .with_config(spec.config)
            .solve()
            .expect("per-item solve succeeds");
        assert_identical(got, &want, &format!("item {i}"));
    }
}

#[test]
fn duplicate_items_reuse_the_representative_outcome() {
    let spec = spec_for(3);
    let batch =
        RotationScheduler::solve_batch(&[spec.clone(), spec.clone(), spec]).expect("solvable");
    assert_identical(&batch[1], &batch[0], "first duplicate");
    assert_identical(&batch[2], &batch[0], "second duplicate");
}

#[test]
fn near_duplicates_are_not_merged() {
    // Same graph, different resources: the confirm step must reject the
    // fingerprint match and solve both items independently.
    let a = spec_for(5);
    let mut b = a.clone();
    b.resources = ResourceSet::adders_multipliers(3, 3, true);
    let batch = RotationScheduler::solve_batch(&[a.clone(), b.clone()]).expect("solvable");
    let want_b = RotationScheduler::new(&b.dfg, b.resources.clone())
        .with_policy(b.policy)
        .with_config(b.config)
        .solve()
        .expect("solvable");
    assert_identical(&batch[1], &want_b, "distinct-resources item");
    // And differing policies likewise stay separate.
    let mut c = a.clone();
    c.policy = PriorityPolicy::InputOrder;
    let batch = RotationScheduler::solve_batch(&[a, c.clone()]).expect("solvable");
    let want_c = RotationScheduler::new(&c.dfg, c.resources.clone())
        .with_policy(c.policy)
        .with_config(c.config)
        .solve()
        .expect("solvable");
    assert_identical(&batch[1], &want_c, "distinct-policy item");
}

#[test]
fn empty_batch_is_empty() {
    assert!(RotationScheduler::solve_batch(&[])
        .expect("trivial")
        .is_empty());
}
