//! Property-based tests for the rotation invariants.

use proptest::prelude::*;
use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{down_rotate, initial_state, HeuristicConfig};
use rotsched_dfg::Dfg;
use rotsched_sched::validate::{check_dag_schedule, realizing_retiming};
use rotsched_sched::{ListScheduler, ResourceSet};

fn random_graph() -> impl Strategy<Value = Dfg> {
    (0_u64..500, 4_usize..14).prop_map(|(seed, nodes)| {
        random_dfg(
            &RandomDfgConfig {
                nodes,
                forward_density: 0.2,
                feedback_density: 0.08,
                max_delays: 2,
                mult_fraction: 0.35,
                mult_steps: 2,
            },
            seed,
        )
    })
}

fn resource_config() -> impl Strategy<Value = (u32, u32, bool)> {
    (1_u32..3, 1_u32..3, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The paper's core invariant: after ANY sequence of legal rotations,
    /// the schedule is a legal DAG schedule of G_R — and therefore a
    /// legal static schedule of the original G, certified by Lemma 1.
    #[test]
    fn rotation_preserves_legality_and_realizability(
        g in random_graph(),
        (adders, mults, pipelined) in resource_config(),
        sizes in proptest::collection::vec(1_u32..4, 1..10),
    ) {
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for &size in &sizes {
            let len = state.length(&g);
            if len <= 1 {
                break;
            }
            let size = size.min(len - 1);
            down_rotate(&g, &sched, &res, &mut state, size).expect("prefix rotations are legal");
            // (a) the rotation function is a legal retiming;
            prop_assert!(state.retiming.is_legal(&g));
            // (b) the schedule is DAG-legal on the implicitly retimed graph;
            prop_assert!(
                check_dag_schedule(&g, Some(&state.retiming), &state.schedule, &res).is_ok()
            );
            // (c) some retiming (not necessarily R) realizes it on G.
            let r = realizing_retiming(&g, &state.schedule);
            prop_assert!(r.is_some());
            prop_assert!(r.expect("checked").is_legal(&g));
        }
    }

    /// The wrapped schedule length never beats the combined lower bound.
    #[test]
    fn rotation_never_beats_the_lower_bound(
        g in random_graph(),
        (adders, mults, pipelined) in resource_config(),
        rotations in 1_usize..8,
    ) {
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let lb = rotsched_baselines::lower_bound(&g, &res).expect("valid graph");
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for _ in 0..rotations {
            if state.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut state, 1).expect("legal rotation");
            let wrapped = state.wrapped_length(&g, &res).expect("wraps");
            prop_assert!(u64::from(wrapped) >= lb, "wrapped {} < LB {}", wrapped, lb);
        }
    }

    /// Depth minimization returns a retiming realizing the same schedule
    /// with depth no larger than the accumulated rotation function's.
    #[test]
    fn depth_minimization_is_sound(
        g in random_graph(),
        rotations in 1_usize..8,
    ) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for _ in 0..rotations {
            if state.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut state, 1).expect("legal rotation");
        }
        let minimized = rotsched_core::depth::minimize_depth(&g, &state.schedule)
            .expect("rotation states are realizable");
        prop_assert!(minimized.depth() <= state.retiming.to_normalized().depth());
        prop_assert!(
            check_dag_schedule(&g, Some(&minimized), &state.schedule, &res).is_ok()
        );
    }

    /// Solved pipelines simulate correctly end-to-end on random graphs.
    #[test]
    fn solved_pipelines_simulate_correctly(
        seed in 0_u64..200,
        (adders, mults, pipelined) in resource_config(),
    ) {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes: 10,
                forward_density: 0.2,
                feedback_density: 0.1,
                max_delays: 2,
                mult_fraction: 0.3,
                mult_steps: 2,
            },
            seed,
        );
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let scheduler = rotsched_core::RotationScheduler::new(&g, res)
            .with_config(HeuristicConfig {
                rotations_per_phase: 8,
                max_size: None,
                keep_best: 2,
                rounds: 1,
            });
        let solved = scheduler.solve().expect("schedulable");
        let report = scheduler.verify(&solved.state, 6).expect("pipeline is correct");
        prop_assert_eq!(report.executions, g.node_count() * 6);
    }
}
