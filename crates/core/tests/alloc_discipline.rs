//! Allocation discipline of the data-oriented hot path, enforced by a
//! counting global allocator.
//!
//! Two claims are pinned here:
//!
//! 1. a **steady-state rotation step** — `down_rotate_in_place` plus the
//!    `WrapScratch` wrapped-length probe, beyond the weight-memo warm-up
//!    — performs **zero** heap allocations;
//! 2. a **deduplicated `solve_batch` item** costs a small fixed
//!    allocation budget (the outcome clone), far below a fresh solve.
//!
//! The zero-allocation claim only holds in release builds: debug builds
//! run the self-verifying cross-checks (`WrapScratch` re-runs the
//! reference probe, the context re-validates its zero-delay view), which
//! allocate by design. The test still runs the same steps in debug so
//! the path is exercised; only the counts are release-gated.
//!
//! Everything is measured inside ONE `#[test]` — the counter is global,
//! and the harness runs separate tests on separate threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rotsched_core::{ProblemSpec, RotationContext, RotationScheduler};
use rotsched_dfg::{Dfg, DfgBuilder, OpKind};
use rotsched_sched::{ListScheduler, ResourceSet, WrapScratch};

/// Counts every allocation and reallocation (frees are irrelevant to
/// the zero-alloc claim) on top of the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A ring whose steady-state length stays above 1, so rotation steps
/// can run indefinitely: n single-cycle adds, k delays on the back edge.
fn ring(n: usize, delays: u32) -> Dfg {
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    DfgBuilder::new("ring")
        .nodes("v", n, OpKind::Add, 1)
        .chain(&refs)
        .edge(&format!("v{}", n - 1), "v0", delays)
        .build()
        .expect("valid ring")
}

#[test]
fn hot_path_allocation_discipline() {
    // ---- claim 1: zero allocations per steady-state rotation step ----
    let n = 24;
    let g = ring(n, 3);
    let sched = ListScheduler::default();
    let res = ResourceSet::adders_multipliers(4, 0, false);
    let mut state = rotsched_core::initial_state(&g, &sched, &res).expect("ring schedules");
    let mut ctx = RotationContext::new(&g, &sched, &res, &state).expect("context builds");
    let mut wrap = WrapScratch::new(&g, &res).expect("ops bind");

    let step = |ctx: &mut RotationContext, wrap: &mut WrapScratch, state: &mut _| {
        ctx.down_rotate_in_place(&g, &sched, &res, state, 1)
            .expect("steady ring keeps rotating");
        wrap.wrapped_length(&g, Some(&state.retiming), &state.schedule, &res)
            .expect("rotation states wrap");
    };

    // Warm-up: grow every pooled buffer and fill the weight memo (the
    // rotation sequence of a uniform ring is periodic in n steps; 4n
    // sees every zero-delay set it will ever produce).
    for _ in 0..4 * n {
        step(&mut ctx, &mut wrap, &mut state);
    }

    let mut per_step = Vec::with_capacity(n);
    for _ in 0..n {
        let before = allocs();
        step(&mut ctx, &mut wrap, &mut state);
        per_step.push(allocs() - before);
    }
    if !cfg!(debug_assertions) {
        assert_eq!(
            per_step.iter().sum::<u64>(),
            0,
            "steady-state rotation steps must not touch the heap: {per_step:?}"
        );
    }

    // ---- claim 2: a deduplicated batch item has a fixed small cost ----
    let spec = ProblemSpec::new(ring(10, 2), ResourceSet::adders_multipliers(2, 0, false));

    let before = allocs();
    let single = RotationScheduler::solve_batch(std::slice::from_ref(&spec)).expect("solves");
    let fresh_cost = allocs() - before;

    let before = allocs();
    let triple =
        RotationScheduler::solve_batch(&[spec.clone(), spec.clone(), spec]).expect("solves");
    let triple_cost = allocs() - before;
    assert_eq!(triple[2].length, single[0].length);

    // Two duplicate items on top of the representative solve.
    let duplicate_cost = triple_cost.saturating_sub(fresh_cost) / 2;
    assert!(
        duplicate_cost < 1_000,
        "a deduplicated item should cost only its outcome clone, \
         got {duplicate_cost} allocations"
    );
    assert!(
        duplicate_cost * 4 < fresh_cost,
        "deduplication must be far cheaper than solving: \
         duplicate {duplicate_cost} vs fresh {fresh_cost}"
    );
}
