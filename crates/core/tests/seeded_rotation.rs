//! Seeded randomized tests for the rotation invariants.
//!
//! Originally proptest properties; now a deterministic `SplitMix64` seed
//! sweep so the workspace builds with no external dependencies.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{down_rotate, initial_state, HeuristicConfig};
use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::Dfg;
use rotsched_sched::validate::{check_dag_schedule, realizing_retiming};
use rotsched_sched::{ListScheduler, ResourceSet};

const CASES: u64 = 96;

fn random_graph(rng: &mut SplitMix64) -> Dfg {
    let seed = rng.next_u64() % 500;
    let nodes = rng.range_u32(4, 13) as usize;
    random_dfg(
        &RandomDfgConfig {
            nodes,
            forward_density: 0.2,
            feedback_density: 0.08,
            max_delays: 2,
            mult_fraction: 0.35,
            mult_steps: 2,
        },
        seed,
    )
}

fn resource_config(rng: &mut SplitMix64) -> (u32, u32, bool) {
    (rng.range_u32(1, 2), rng.range_u32(1, 2), rng.chance(0.5))
}

/// The paper's core invariant: after ANY sequence of legal rotations,
/// the schedule is a legal DAG schedule of G_R — and therefore a legal
/// static schedule of the original G, certified by Lemma 1.
#[test]
fn rotation_preserves_legality_and_realizability() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let n_sizes = rng.range_u32(1, 9);
        let sizes: Vec<u32> = (0..n_sizes).map(|_| rng.range_u32(1, 3)).collect();
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for &size in &sizes {
            let len = state.length(&g);
            if len <= 1 {
                break;
            }
            let size = size.min(len - 1);
            down_rotate(&g, &sched, &res, &mut state, size).expect("prefix rotations are legal");
            // (a) the rotation function is a legal retiming;
            assert!(state.retiming.is_legal(&g), "case {case}");
            // (b) the schedule is DAG-legal on the implicitly retimed graph;
            assert!(
                check_dag_schedule(&g, Some(&state.retiming), &state.schedule, &res).is_ok(),
                "case {case}"
            );
            // (c) some retiming (not necessarily R) realizes it on G.
            let r = realizing_retiming(&g, &state.schedule);
            assert!(r.is_some(), "case {case}");
            assert!(r.expect("checked").is_legal(&g), "case {case}");
        }
    }
}

/// The wrapped schedule length never beats the combined lower bound.
#[test]
fn rotation_never_beats_the_lower_bound() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let rotations = rng.range_u32(1, 7);
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let lb = rotsched_baselines::lower_bound(&g, &res).expect("valid graph");
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for _ in 0..rotations {
            if state.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut state, 1).expect("legal rotation");
            let wrapped = state.wrapped_length(&g, &res).expect("wraps");
            assert!(
                u64::from(wrapped) >= lb,
                "case {case}: wrapped {wrapped} < LB {lb}"
            );
        }
    }
}

/// Depth minimization returns a retiming realizing the same schedule
/// with depth no larger than the accumulated rotation function's.
#[test]
fn depth_minimization_is_sound() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let rotations = rng.range_u32(1, 7);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        let mut state = initial_state(&g, &sched, &res).expect("schedulable");
        for _ in 0..rotations {
            if state.length(&g) <= 1 {
                break;
            }
            down_rotate(&g, &sched, &res, &mut state, 1).expect("legal rotation");
        }
        let minimized = rotsched_core::depth::minimize_depth(&g, &state.schedule)
            .expect("rotation states are realizable");
        assert!(
            minimized.depth() <= state.retiming.to_normalized().depth(),
            "case {case}"
        );
        assert!(
            check_dag_schedule(&g, Some(&minimized), &state.schedule, &res).is_ok(),
            "case {case}"
        );
    }
}

/// Solved pipelines simulate correctly end-to-end on random graphs.
#[test]
fn solved_pipelines_simulate_correctly() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let seed = rng.next_u64() % 200;
        let (adders, mults, pipelined) = resource_config(&mut rng);
        let g = random_dfg(
            &RandomDfgConfig {
                nodes: 10,
                forward_density: 0.2,
                feedback_density: 0.1,
                max_delays: 2,
                mult_fraction: 0.3,
                mult_steps: 2,
            },
            seed,
        );
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let scheduler =
            rotsched_core::RotationScheduler::new(&g, res).with_config(HeuristicConfig {
                rotations_per_phase: 8,
                max_size: None,
                keep_best: 2,
                rounds: 1,
            });
        let solved = scheduler.solve().expect("schedulable");
        let report = scheduler
            .verify(&solved.state, 6)
            .expect("pipeline is correct");
        assert_eq!(report.executions, g.node_count() * 6, "case {case}");
    }
}
