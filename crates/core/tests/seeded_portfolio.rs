//! Seeded randomized tests for the parallel portfolio: the result —
//! best length AND canonical schedule set — must be identical for every
//! worker-thread count, and pruning must never produce a length below
//! the combined lower bound.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{Budget, HeuristicConfig, Portfolio, RotationScheduler, SearchTask};
use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::Dfg;
use rotsched_sched::validate::realizing_retiming;
use rotsched_sched::ResourceSet;

const CASES: u64 = 32;

fn random_graph(rng: &mut SplitMix64) -> Dfg {
    let seed = rng.next_u64() % 500;
    let nodes = rng.range_u32(4, 11) as usize;
    random_dfg(
        &RandomDfgConfig {
            nodes,
            forward_density: 0.2,
            feedback_density: 0.1,
            max_delays: 2,
            mult_fraction: 0.3,
            mult_steps: 2,
        },
        seed,
    )
}

fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 8,
        max_size: None,
        keep_best: 4,
        rounds: 1,
    }
}

/// The portfolio returns the identical best length and the identical
/// canonical schedule set for `jobs` in {1, 2, 8} on random cyclic
/// DFGs — the tentpole determinism property.
#[test]
fn portfolio_is_deterministic_in_the_thread_count() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(
            rng.range_u32(1, 2),
            rng.range_u32(1, 2),
            rng.chance(0.5),
        );
        let p = Portfolio::standard(&g, &res, &config()).expect("schedulable");
        let sequential = p.clone().with_jobs(1).run(&g, &res).expect("runs");
        for jobs in [2_usize, 8] {
            let parallel = p.clone().with_jobs(jobs).run(&g, &res).expect("runs");
            assert_eq!(
                parallel.best_length, sequential.best_length,
                "case {case}, jobs {jobs}: best length diverged"
            );
            assert_eq!(
                parallel.best, sequential.best,
                "case {case}, jobs {jobs}: canonical schedule set diverged"
            );
            assert_eq!(
                parallel.canonical_task, sequential.canonical_task,
                "case {case}, jobs {jobs}: canonical task diverged"
            );
            assert_eq!(
                parallel.phases, sequential.phases,
                "case {case}, jobs {jobs}: deterministic phase stats diverged"
            );
        }
    }
}

/// Pruning is sound: the portfolio's best length never beats the
/// combined recurrence + resource lower bound it prunes against, and a
/// claimed bound achievement really is at the bound.
#[test]
fn portfolio_never_beats_the_lower_bound() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(
            rng.range_u32(1, 3),
            rng.range_u32(1, 3),
            rng.chance(0.5),
        );
        let p = Portfolio::standard(&g, &res, &config()).expect("schedulable");
        let out = p.with_jobs(4).run(&g, &res).expect("runs");
        let lb = rotsched_baselines::lower_bound(&g, &res).expect("valid graph");
        assert_eq!(u64::from(out.lower_bound), lb, "case {case}");
        assert!(
            u64::from(out.best_length) >= lb,
            "case {case}: best {} beats LB {lb}",
            out.best_length
        );
        if out.bound_achieved {
            assert_eq!(u64::from(out.best_length), lb, "case {case}");
            assert!(out.canonical_task.is_some(), "case {case}");
        }
    }
}

/// Every schedule the portfolio returns is a legal static schedule of
/// the original graph, and the facade's portfolio solve verifies
/// end-to-end by simulation.
#[test]
fn portfolio_schedules_are_legal_and_simulate() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0x5EED ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let scheduler = RotationScheduler::new(&g, res.clone())
            .with_config(config())
            .with_jobs(4);
        let solved = scheduler.solve_portfolio().expect("schedulable");
        for st in &solved.outcome.best {
            let r = realizing_retiming(&g, &st.schedule).expect("statically realizable");
            assert!(r.is_legal(&g), "case {case}");
        }
        let report = scheduler
            .verify(&solved.state, 5)
            .expect("pipeline is correct");
        assert_eq!(report.executions, g.node_count() * 5, "case {case}");
    }
}

/// The resilience layer's zero-cost guarantee at suite scale: arming an
/// *unlimited* budget changes nothing about a portfolio run — lengths,
/// canonical schedule sets, phase traces, and rotation counts are all
/// bit-identical, and no stop or panic is reported.
#[test]
fn unlimited_budget_portfolio_is_bit_identical() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0xB0D6 ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let p = Portfolio::standard(&g, &res, &config()).expect("schedulable");
        for jobs in [1_usize, 4] {
            let plain = p.clone().with_jobs(jobs).run(&g, &res).expect("runs");
            let budgeted = p
                .clone()
                .with_jobs(jobs)
                .with_budget(Budget::unlimited())
                .run(&g, &res)
                .expect("runs");
            let what = format!("case {case}, jobs {jobs}");
            assert_eq!(budgeted.best_length, plain.best_length, "{what}: length");
            assert_eq!(budgeted.best, plain.best, "{what}: best set");
            assert_eq!(
                budgeted.canonical_task, plain.canonical_task,
                "{what}: canonical task"
            );
            assert_eq!(budgeted.phases, plain.phases, "{what}: phase stats");
            assert_eq!(
                budgeted.total_rotations, plain.total_rotations,
                "{what}: rotation count"
            );
            assert_eq!(budgeted.stopped, None, "{what}: phantom stop");
            assert_eq!(budgeted.panicked_tasks, 0, "{what}: phantom panic");
        }
    }
}

/// Panic isolation at suite scale: a crashing task injected into every
/// random portfolio degrades the run to the survivors' result — same
/// best length and schedules as the clean run, one panic counted — for
/// every job count, including the sequential path.
#[test]
fn injected_panic_degrades_to_the_survivors_best_everywhere() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::new(0xDEAD ^ case);
        let g = random_graph(&mut rng);
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let clean = Portfolio::standard(&g, &res, &config()).expect("schedulable");
        let baseline = clean.clone().with_jobs(1).run(&g, &res).expect("runs");
        let mut sabotaged = clean;
        // Injecting *first* gives the crash the best chance to poison
        // cross-task pruning state if isolation were leaky.
        sabotaged.tasks.insert(0, SearchTask::PanicForTest);
        for jobs in [1_usize, 2, 8] {
            let out = sabotaged
                .clone()
                .with_jobs(jobs)
                .run(&g, &res)
                .expect("survivors carry the run");
            let what = format!("case {case}, jobs {jobs}");
            assert_eq!(out.panicked_tasks, 1, "{what}: panic count");
            assert_eq!(out.best_length, baseline.best_length, "{what}: length");
            assert_eq!(out.best, baseline.best, "{what}: best set");
            for st in &out.best {
                let r = realizing_retiming(&g, &st.schedule).expect("legal");
                assert!(r.is_legal(&g), "{what}: illegal survivor schedule");
            }
        }
    }
}
