//! The anytime contract of the resilience layer, at property-suite
//! scale: stop a solve after *any* number of down-rotations — via a
//! rotation budget or a pre-fired cancel token — and the incumbent it
//! returns is a complete, legal static schedule whose length never
//! regresses as the budget grows.
//!
//! This is the load-bearing guarantee behind `--deadline-ms`: budget
//! checks fire *between* rotations, so there is no partially-applied
//! rotation to corrupt the incumbent, for every priority policy and
//! both heuristics.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{
    heuristic1_budgeted, heuristic2_pruned, Budget, CancelToken, HeuristicConfig, HeuristicOutcome,
    StopReason,
};
use rotsched_dfg::Dfg;
use rotsched_sched::validate::check_static_schedule;
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

const SEEDS: [u64; 2] = [7, 31];

const POLICIES: [PriorityPolicy; 4] = [
    PriorityPolicy::DescendantCount,
    PriorityPolicy::PathHeight,
    PriorityPolicy::Mobility,
    PriorityPolicy::InputOrder,
];

fn suite_graph(seed: u64) -> Dfg {
    random_dfg(
        &RandomDfgConfig {
            nodes: 16,
            ..RandomDfgConfig::default()
        },
        seed,
    )
}

/// Small phases keep the full-run rotation count low enough to sweep
/// every budget k = 0, 1, 2, … exhaustively.
fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 8,
        max_size: Some(2),
        keep_best: 2,
        rounds: 1,
    }
}

/// Asserts every schedule in the incumbent set is a legal static
/// schedule of `g` (resource-respecting and realized by some retiming)
/// at the claimed length.
fn assert_incumbent_legal(g: &Dfg, res: &ResourceSet, out: &HeuristicOutcome, what: &str) {
    assert!(!out.best.is_empty(), "{what}: incumbent set is empty");
    for (i, state) in out.best.iter().enumerate() {
        check_static_schedule(g, &state.schedule, res)
            .unwrap_or_else(|e| panic!("{what}: incumbent {i} is illegal: {e}"));
        let wrapped = state
            .wrapped_length(g, res)
            .unwrap_or_else(|e| panic!("{what}: incumbent {i} unwrappable: {e}"));
        assert_eq!(
            wrapped, out.best_length,
            "{what}: incumbent {i} does not achieve the claimed best length"
        );
    }
}

/// Runs one (heuristic, policy) cell under rotation budget `k`.
fn run_budgeted(
    g: &Dfg,
    policy: PriorityPolicy,
    res: &ResourceSet,
    use_h2: bool,
    budget: &Budget,
) -> HeuristicOutcome {
    let sched = ListScheduler::new(policy);
    let meter = budget.arm();
    if use_h2 {
        heuristic2_pruned(g, &sched, res, &config(), None, Some(&meter)).expect("schedulable")
    } else {
        heuristic1_budgeted(g, &sched, res, &config(), Some(&meter)).expect("schedulable")
    }
}

/// The exhaustive anytime sweep: for every policy and both heuristics,
/// every rotation budget k = 0..=R yields a legal incumbent, respects
/// the budget, never regresses as k grows, and lands exactly on the
/// unlimited result at k = R.
#[test]
fn every_truncation_point_yields_a_legal_monotone_incumbent() {
    let res = ResourceSet::adders_multipliers(2, 1, false);
    for seed in SEEDS {
        let g = suite_graph(seed);
        for policy in POLICIES {
            for use_h2 in [false, true] {
                let name = if use_h2 { "h2" } else { "h1" };
                let full = run_budgeted(&g, policy, &res, use_h2, &Budget::unlimited());
                assert_eq!(full.stopped, None);
                let mut last_best = u32::MAX;
                for k in 0..=full.total_rotations {
                    let budget = Budget::default().with_max_rotations(k as u64);
                    let out = run_budgeted(&g, policy, &res, use_h2, &budget);
                    let what = format!("seed {seed}, {policy:?}, {name}, budget {k}");
                    assert_incumbent_legal(&g, &res, &out, &what);
                    assert!(out.total_rotations <= k, "{what}: budget overshot");
                    assert!(
                        out.best_length <= last_best,
                        "{what}: incumbent regressed ({} > {last_best})",
                        out.best_length
                    );
                    if k < full.total_rotations {
                        assert_eq!(
                            out.stopped,
                            Some(StopReason::RotationBudget),
                            "{what}: missing stop reason"
                        );
                    }
                    last_best = out.best_length;
                }
                assert_eq!(
                    last_best, full.best_length,
                    "seed {seed}, {policy:?}, {name}: full budget missed the unlimited best"
                );
            }
        }
    }
}

/// A token cancelled before the solve starts: zero rotations happen,
/// the stop reason says so, and the incumbent — the initial list
/// schedule — is still legal.
#[test]
fn pre_cancelled_solves_return_the_legal_initial_incumbent() {
    let res = ResourceSet::adders_multipliers(2, 1, false);
    for seed in SEEDS {
        let g = suite_graph(seed);
        for use_h2 in [false, true] {
            let token = CancelToken::new();
            token.cancel();
            let budget = Budget::default().with_cancel(token);
            let out = run_budgeted(&g, PriorityPolicy::DescendantCount, &res, use_h2, &budget);
            let what = format!("seed {seed}, h{}", if use_h2 { 2 } else { 1 });
            assert_eq!(out.total_rotations, 0, "{what}: rotated despite cancel");
            assert_eq!(out.stopped, Some(StopReason::Cancelled), "{what}");
            assert_incumbent_legal(&g, &res, &out, &what);
        }
    }
}

/// Cancellation raced against a running solve (the one legitimately
/// nondeterministic mode): whenever it lands, the incumbent is legal
/// and no worse than the initial schedule.
#[test]
fn mid_flight_cancellation_always_leaves_a_legal_incumbent() {
    let res = ResourceSet::adders_multipliers(2, 1, false);
    let g = suite_graph(SEEDS[0]);
    let initial = run_budgeted(
        &g,
        PriorityPolicy::DescendantCount,
        &res,
        true,
        &Budget::default().with_max_rotations(0),
    )
    .best_length;
    for delay_us in [0_u64, 20, 200] {
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let budget = Budget::default().with_cancel(token);
        let out = run_budgeted(&g, PriorityPolicy::DescendantCount, &res, true, &budget);
        canceller.join().expect("canceller thread");
        let what = format!("cancel after ~{delay_us}us");
        assert_incumbent_legal(&g, &res, &out, &what);
        assert!(out.best_length <= initial, "{what}: worse than initial");
    }
}
