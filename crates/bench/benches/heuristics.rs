//! Wall-clock cost of the full heuristics on the paper's benchmarks —
//! the Section 6 claim that "every experiment is finished within
//! seconds" (on a 1993 DEC 5000; modern hardware does it in
//! milliseconds).

use core::time::Duration;
use rotsched_bench::harness::Harness;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, heuristic2_reference, HeuristicConfig};
use rotsched_sched::{ListScheduler, ResourceSet};

fn main() {
    let config = HeuristicConfig {
        rotations_per_phase: 32,
        max_size: None,
        keep_best: 16,
        rounds: 1,
    };
    let mut h = Harness::new("heuristics").with_budget(
        Duration::from_millis(500),
        Duration::from_secs(2),
        20,
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        h.bench(&format!("heuristic2/{name}"), || {
            heuristic2(&g, &sched, &res, &config).expect("schedulable");
        });
        // The from-scratch ablation of the incremental rotation context
        // (identical output, see DESIGN.md §6).
        h.bench(&format!("heuristic2-reference/{name}"), || {
            heuristic2_reference(&g, &sched, &res, &config, None).expect("schedulable");
        });
        h.bench(&format!("heuristic1/{name}"), || {
            heuristic1(&g, &sched, &res, &config).expect("schedulable");
        });
    }
    h.finish();
}
