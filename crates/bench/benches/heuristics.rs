//! Wall-clock cost of the full heuristics on the paper's benchmarks —
//! the Section 6 claim that "every experiment is finished within
//! seconds" (on a 1993 DEC 5000; modern hardware does it in
//! milliseconds).

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, HeuristicConfig};
use rotsched_sched::{ListScheduler, ResourceSet};

fn bench_heuristics(c: &mut Criterion) {
    let config = HeuristicConfig {
        rotations_per_phase: 32,
        max_size: None,
        keep_best: 16,
        rounds: 1,
    };
    let mut group = c.benchmark_group("heuristics");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        group.bench_with_input(BenchmarkId::new("heuristic2", name), &g, |b, g| {
            b.iter(|| heuristic2(g, &sched, &res, &config).expect("schedulable"));
        });
        group.bench_with_input(BenchmarkId::new("heuristic1", name), &g, |b, g| {
            b.iter(|| heuristic1(g, &sched, &res, &config).expect("schedulable"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
