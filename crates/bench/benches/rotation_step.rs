//! Cost of one rotation step, and the ablation DESIGN.md calls out:
//! incremental rescheduling of only the rotated set (the paper's
//! approach) vs. rescheduling the whole graph after each rotation.

use core::time::Duration;
use rotsched_bench::harness::Harness;
use rotsched_benchmarks::{all_benchmarks, random_dfg, RandomDfgConfig, TimingModel};
use rotsched_core::{down_rotate, initial_state};
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet};

fn one_rotation_partial(g: &Dfg, res: &ResourceSet) {
    let sched = ListScheduler::default();
    let mut state = initial_state(g, &sched, res).expect("schedulable");
    down_rotate(g, &sched, res, &mut state, 1).expect("legal");
}

/// The ablation arm: rotate, then throw the incremental result away and
/// reschedule everything from scratch on the retimed graph.
fn one_rotation_full_reschedule(g: &Dfg, res: &ResourceSet) {
    let sched = ListScheduler::default();
    let mut state = initial_state(g, &sched, res).expect("schedulable");
    down_rotate(g, &sched, res, &mut state, 1).expect("legal");
    state.schedule = sched
        .schedule(g, Some(&state.retiming), res)
        .expect("schedulable");
}

fn main() {
    let mut h = Harness::new("rotation_step").with_budget(
        Duration::from_millis(500),
        Duration::from_secs(2),
        20,
    );
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        h.bench(&format!("partial/{name}"), || {
            one_rotation_partial(&g, &res)
        });
        h.bench(&format!("full-reschedule/{name}"), || {
            one_rotation_full_reschedule(&g, &res);
        });
    }
    // Scaling on random graphs.
    for nodes in [50, 100, 200] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes,
                ..RandomDfgConfig::default()
            },
            7,
        );
        h.bench(&format!("partial-random/{nodes}"), || {
            one_rotation_partial(&g, &res);
        });
    }
    h.finish();
}
