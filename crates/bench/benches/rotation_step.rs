//! Cost of one rotation step, and the ablation DESIGN.md calls out:
//! incremental rescheduling of only the rotated set (the paper's
//! approach) vs. rescheduling the whole graph after each rotation.

use core::time::Duration;
use rotsched_bench::harness::Harness;
use rotsched_benchmarks::{all_benchmarks, random_dfg, RandomDfgConfig, TimingModel};
use rotsched_core::{
    down_rotate, initial_state, BestSet, RotationContext, RotationState, Score, SearchDriver,
};
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet, WrapScratch};

/// Down-rotations per measured iteration in the context-vs-scratch
/// arms. The rotation sequence continues across iterations (rotation is
/// endless — the state space is periodic), so both arms measure the
/// steady state a rotation phase actually runs in: a warm context and a
/// warm scheduler cache.
const STEPS: usize = 32;

fn one_rotation_partial(g: &Dfg, res: &ResourceSet) {
    let sched = ListScheduler::default();
    let mut state = initial_state(g, &sched, res).expect("schedulable");
    down_rotate(g, &sched, res, &mut state, 1).expect("legal");
}

/// Persistent per-arm state: the rotation sequence picks up where the
/// previous measured iteration left off.
struct SteppedArm {
    sched: ListScheduler,
    state: RotationState,
    ctx: Option<RotationContext>,
}

impl SteppedArm {
    fn new(g: &Dfg, res: &ResourceSet, with_context: bool) -> Self {
        let sched = ListScheduler::default();
        let state = initial_state(g, &sched, res).expect("schedulable");
        let ctx = with_context
            .then(|| RotationContext::new(g, &sched, res, &state).expect("schedulable"));
        SteppedArm { sched, state, ctx }
    }

    /// `STEPS` size-1 rotations — through the persistent
    /// [`RotationContext`] (the tentpole arm) or the from-scratch
    /// operator (the before arm).
    fn run(&mut self, g: &Dfg, res: &ResourceSet) {
        for _ in 0..STEPS {
            if self.state.length(g) <= 1 {
                break;
            }
            match &mut self.ctx {
                Some(ctx) => ctx
                    .down_rotate(g, &self.sched, res, &mut self.state, 1)
                    .expect("legal"),
                None => down_rotate(g, &self.sched, res, &mut self.state, 1).expect("legal"),
            };
        }
    }
}

/// The engine-overhead guard, driver side: one `STEPS`-rotation size-1
/// phase through [`SearchDriver`] on the monomorphized `NoopObserver`
/// path.
fn driver_phase(g: &Dfg, sched: &ListScheduler, res: &ResourceSet, init: &RotationState) {
    let mut state = init.clone();
    let mut best = BestSet::new(4);
    let mut driver = SearchDriver::incremental(g, sched, res);
    driver
        .run_phase(&mut state, &mut best, 1, STEPS)
        .expect("legal");
}

/// The engine-overhead guard, baseline side: a hand-rolled replica of
/// the engine's phase loop — the same context kernel, halving rule,
/// wrapped-length probe, stats bookkeeping, and best-set offer that
/// `SearchDriver::run_phase` performs, minus its dispatch. Must track
/// the engine's hot path (`down_rotate_in_place` + `WrapScratch` since
/// the SoA rework) or the overhead reading drifts into fiction; the
/// two-sided band in `perf_report --check` guards the drift.
fn legacy_phase(g: &Dfg, sched: &ListScheduler, res: &ResourceSet, init: &RotationState) {
    let mut state = init.clone();
    let mut best = BestSet::new(4);
    let mut ctx = RotationContext::new(g, sched, res, &state).expect("schedulable");
    let mut wrap = WrapScratch::new(g, res).expect("ops bind");
    let mut rotations = 0_usize;
    let mut lengths = Vec::new();
    let mut first_optimum_at = None;
    let mut min_seen = u32::MAX;
    for j in 0..STEPS {
        let length = state.length(g);
        if length <= 1 {
            break;
        }
        let mut effective = 1_u32;
        while effective >= length {
            effective = effective.div_ceil(2);
        }
        if effective == 0 {
            break;
        }
        ctx.down_rotate_in_place(g, sched, res, &mut state, effective)
            .expect("legal");
        let wrapped = wrap
            .wrapped_length(g, Some(&state.retiming), &state.schedule, res)
            .expect("wraps");
        rotations += 1;
        lengths.push(wrapped);
        if wrapped < min_seen {
            min_seen = wrapped;
            first_optimum_at = Some(j + 1);
        }
        let _ = best.offer(Score::from_length(wrapped), &state);
    }
    std::hint::black_box((rotations, lengths, first_optimum_at));
}

/// The ablation arm: rotate, then throw the incremental result away and
/// reschedule everything from scratch on the retimed graph.
fn one_rotation_full_reschedule(g: &Dfg, res: &ResourceSet) {
    let sched = ListScheduler::default();
    let mut state = initial_state(g, &sched, res).expect("schedulable");
    down_rotate(g, &sched, res, &mut state, 1).expect("legal");
    state.schedule = sched
        .schedule(g, Some(&state.retiming), res)
        .expect("schedulable");
}

fn main() {
    let mut h = Harness::new("rotation_step").with_budget(
        Duration::from_millis(500),
        Duration::from_secs(2),
        20,
    );
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        h.bench(&format!("partial/{name}"), || {
            one_rotation_partial(&g, &res);
        });
        h.bench(&format!("full-reschedule/{name}"), || {
            one_rotation_full_reschedule(&g, &res);
        });
    }
    // Scaling on random graphs.
    for nodes in [50, 100, 200] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes,
                ..RandomDfgConfig::default()
            },
            7,
        );
        h.bench(&format!("partial-random/{nodes}"), || {
            one_rotation_partial(&g, &res);
        });
    }
    // Tentpole comparison: `STEPS` size-1 rotations through a persistent
    // RotationContext vs. the same sequence from scratch, on the 64-node
    // random suite. The context arm is the one the phase driver runs.
    for seed in [1, 2, 3] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes: 64,
                ..RandomDfgConfig::default()
            },
            seed,
        );
        let mut context_arm = SteppedArm::new(&g, &res, true);
        h.bench(&format!("context-steps/random64-seed{seed}"), || {
            context_arm.run(&g, &res);
        });
        let mut scratch_arm = SteppedArm::new(&g, &res, false);
        h.bench(&format!("scratch-steps/random64-seed{seed}"), || {
            scratch_arm.run(&g, &res);
        });
    }
    // Engine-overhead guard: the same `STEPS`-rotation phase through the
    // SearchDriver's NoopObserver path and through a hand-rolled replica
    // of the pre-engine loop. The driver arm must stay within noise
    // (≤2%) of the phase-loop arm — `perf_report` records the same
    // comparison in BENCH_ROTATION.json.
    for seed in [1, 2, 3] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes: 64,
                ..RandomDfgConfig::default()
            },
            seed,
        );
        let sched = ListScheduler::default();
        let init = initial_state(&g, &sched, &res).expect("schedulable");
        h.bench(
            &format!("driver-overhead/driver/random64-seed{seed}"),
            || {
                driver_phase(&g, &sched, &res, &init);
            },
        );
        h.bench(
            &format!("driver-overhead/phase-loop/random64-seed{seed}"),
            || {
                legacy_phase(&g, &sched, &res, &init);
            },
        );
    }
    h.finish();
}
