//! Cost of the graph analyses: iteration bound (exact max cycle ratio),
//! critical path, and the Lemma 3 realizing-retiming solver.

use core::time::Duration;
use rotsched_bench::harness::Harness;
use rotsched_benchmarks::{all_benchmarks, random_dfg, RandomDfgConfig, TimingModel};
use rotsched_dfg::analysis::{critical_path_length, iteration_bound};
use rotsched_sched::validate::realizing_retiming;
use rotsched_sched::{ListScheduler, ResourceSet};

fn main() {
    let mut h = Harness::new("analysis").with_budget(
        Duration::from_millis(500),
        Duration::from_secs(2),
        20,
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        h.bench(&format!("iteration-bound/{name}"), || {
            iteration_bound(&g).expect("valid");
        });
        h.bench(&format!("critical-path/{name}"), || {
            critical_path_length(&g, None).expect("valid");
        });
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        h.bench(&format!("realizing-retiming/{name}"), || {
            realizing_retiming(&g, &s).expect("realizable");
        });
    }
    for nodes in [100, 400, 1600] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes,
                forward_density: 4.0 / nodes as f64,
                feedback_density: 1.0 / nodes as f64,
                ..RandomDfgConfig::default()
            },
            11,
        );
        h.bench(&format!("iteration-bound-random/{nodes}"), || {
            iteration_bound(&g).expect("valid");
        });
    }
    h.finish();
}
