//! Cost of the graph analyses: iteration bound (exact max cycle ratio),
//! critical path, and the Lemma 3 realizing-retiming solver.

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rotsched_benchmarks::{all_benchmarks, random_dfg, RandomDfgConfig, TimingModel};
use rotsched_dfg::analysis::{critical_path_length, iteration_bound};
use rotsched_sched::validate::realizing_retiming;
use rotsched_sched::{ListScheduler, ResourceSet};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        group.bench_with_input(BenchmarkId::new("iteration-bound", name), &g, |b, g| {
            b.iter(|| iteration_bound(g).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("critical-path", name), &g, |b, g| {
            b.iter(|| critical_path_length(g, None).expect("valid"));
        });
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let s = ListScheduler::default()
            .schedule(&g, None, &res)
            .expect("schedulable");
        group.bench_with_input(
            BenchmarkId::new("realizing-retiming", name),
            &(&g, &s),
            |b, (g, s)| b.iter(|| realizing_retiming(g, s).expect("realizable")),
        );
    }
    for nodes in [100, 400, 1600] {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes,
                forward_density: 4.0 / nodes as f64,
                feedback_density: 1.0 / nodes as f64,
                ..RandomDfgConfig::default()
            },
            11,
        );
        group.bench_with_input(
            BenchmarkId::new("iteration-bound-random", nodes),
            &g,
            |b, g| b.iter(|| iteration_bound(g).expect("valid")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
