//! Rotation scheduling vs. the executable baselines, in wall-clock
//! time: DAG-only list scheduling, unfold-and-schedule, and iterative
//! modulo scheduling.

use core::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rotsched_baselines::{dag_only, modulo_schedule, unfold_and_schedule, ModuloConfig};
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::RotationScheduler;
use rotsched_sched::{PriorityPolicy, ResourceSet};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        group.bench_with_input(BenchmarkId::new("rotation-solve", name), &g, |b, g| {
            b.iter(|| {
                RotationScheduler::new(g, res.clone())
                    .solve()
                    .expect("schedulable")
            });
        });
        group.bench_with_input(BenchmarkId::new("modulo", name), &g, |b, g| {
            b.iter(|| modulo_schedule(g, &res, &ModuloConfig::default()).expect("schedulable"));
        });
        group.bench_with_input(BenchmarkId::new("dag-only", name), &g, |b, g| {
            b.iter(|| dag_only(g, &res, PriorityPolicy::DescendantCount).expect("schedulable"));
        });
        group.bench_with_input(BenchmarkId::new("unfold-x4", name), &g, |b, g| {
            b.iter(|| {
                unfold_and_schedule(g, &res, PriorityPolicy::DescendantCount, 4)
                    .expect("schedulable")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
