//! Rotation scheduling vs. the executable baselines, in wall-clock
//! time: DAG-only list scheduling, unfold-and-schedule, and iterative
//! modulo scheduling.

use core::time::Duration;
use rotsched_baselines::{dag_only, modulo_schedule, unfold_and_schedule, ModuloConfig};
use rotsched_bench::harness::Harness;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::RotationScheduler;
use rotsched_sched::{PriorityPolicy, ResourceSet};

fn main() {
    let mut h = Harness::new("baselines").with_budget(
        Duration::from_millis(500),
        Duration::from_secs(2),
        20,
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        h.bench(&format!("rotation-solve/{name}"), || {
            RotationScheduler::new(&g, res.clone())
                .solve()
                .expect("schedulable");
        });
        h.bench(&format!("modulo/{name}"), || {
            modulo_schedule(&g, &res, &ModuloConfig::default()).expect("schedulable");
        });
        h.bench(&format!("dag-only/{name}"), || {
            dag_only(&g, &res, PriorityPolicy::DescendantCount).expect("schedulable");
        });
        h.bench(&format!("unfold-x4/{name}"), || {
            unfold_and_schedule(&g, &res, PriorityPolicy::DescendantCount, 4).expect("schedulable");
        });
    }
    h.finish();
}
