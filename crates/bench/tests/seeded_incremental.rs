//! Seeded equivalence properties for the incremental rotation kernel:
//! on random cyclic DFGs, the persistent
//! [`RotationContext`](rotsched_core::RotationContext) path must be
//! bit-identical to the from-scratch reference at every level — single
//! rotation phases (under every priority policy), full Heuristic-1 and
//! Heuristic-2 sweeps, and the parallel portfolio at every job count.
//!
//! Debug builds additionally cross-check every incrementally maintained
//! structure (reservation table, zero-delay view, priority weights)
//! against full recomputation inside the context itself, so a pass here
//! is a strong structural guarantee, not just an output comparison.

use rotsched_benchmarks::{random_dfg, RandomDfgConfig};
use rotsched_core::{
    heuristic1, heuristic1_budgeted, heuristic2, heuristic2_pruned, heuristic2_reference,
    initial_state, rotation_phase, rotation_phase_reference, BestSet, Budget, HeuristicConfig,
    HeuristicOutcome, RotationScheduler, Score,
};
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

const SEEDS: [u64; 4] = [11, 23, 42, 97];

fn suite_graph(seed: u64) -> Dfg {
    random_dfg(
        &RandomDfgConfig {
            nodes: 40,
            ..RandomDfgConfig::default()
        },
        seed,
    )
}

fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 24,
        max_size: Some(4),
        keep_best: 4,
        rounds: 2,
    }
}

fn assert_outcomes_identical(a: &HeuristicOutcome, b: &HeuristicOutcome, what: &str) {
    assert_eq!(a.best_length, b.best_length, "{what}: best length diverged");
    assert_eq!(a.best, b.best, "{what}: best schedule set diverged");
    assert_eq!(a.phases, b.phases, "{what}: phase statistics diverged");
    assert_eq!(
        a.total_rotations, b.total_rotations,
        "{what}: rotation count diverged"
    );
}

#[test]
fn phases_match_the_reference_under_every_policy() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for seed in SEEDS {
        let g = suite_graph(seed);
        for policy in [
            PriorityPolicy::DescendantCount,
            PriorityPolicy::PathHeight,
            PriorityPolicy::Mobility,
            PriorityPolicy::InputOrder,
        ] {
            let sched = ListScheduler::new(policy);
            let init = initial_state(&g, &sched, &res).expect("schedulable");
            for size in 1..=3 {
                let mut incremental = init.clone();
                let mut reference = init.clone();
                let mut best_inc = BestSet::new(4);
                let mut best_ref = BestSet::new(4);
                let stats_inc =
                    rotation_phase(&g, &sched, &res, &mut incremental, &mut best_inc, size, 24)
                        .expect("phase runs");
                let stats_ref = rotation_phase_reference(
                    &g,
                    &sched,
                    &res,
                    &mut reference,
                    &mut best_ref,
                    size,
                    24,
                    None,
                    None,
                )
                .expect("phase runs");
                let what = format!("seed {seed}, {policy:?}, size {size}");
                assert_eq!(stats_inc, stats_ref, "{what}: phase stats diverged");
                assert_eq!(incremental, reference, "{what}: final state diverged");
                assert_eq!(best_inc.score, best_ref.score, "{what}: best score");
                assert_eq!(
                    best_inc.schedules, best_ref.schedules,
                    "{what}: best set diverged"
                );
            }
        }
    }
}

#[test]
fn heuristic2_matches_the_reference_on_random_graphs() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for seed in SEEDS {
        let g = suite_graph(seed);
        let sched = ListScheduler::default();
        let incremental = heuristic2(&g, &sched, &res, &config()).expect("schedulable");
        let reference =
            heuristic2_reference(&g, &sched, &res, &config(), None).expect("schedulable");
        assert_outcomes_identical(
            &incremental,
            &reference,
            &format!("seed {seed}, heuristic2"),
        );
    }
}

/// Heuristic 1's phases all restart from the initial state; driving the
/// same loop with the from-scratch phase must reproduce it exactly.
#[test]
fn heuristic1_matches_a_reference_driven_sweep() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    let cfg = config();
    for seed in SEEDS {
        let g = suite_graph(seed);
        let sched = ListScheduler::default();
        let incremental = heuristic1(&g, &sched, &res, &cfg).expect("schedulable");

        let init = initial_state(&g, &sched, &res).expect("schedulable");
        let mut best = BestSet::new(cfg.keep_best);
        let _ = best.offer(
            Score::from_length(init.wrapped_length(&g, &res).expect("wrappable")),
            &init,
        );
        let beta = cfg.max_size.unwrap_or_else(|| init.length(&g)).max(1);
        let mut phases = Vec::new();
        for size in 1..=beta {
            let mut state = init.clone();
            let stats = rotation_phase_reference(
                &g,
                &sched,
                &res,
                &mut state,
                &mut best,
                size,
                cfg.rotations_per_phase,
                None,
                None,
            )
            .expect("phase runs");
            phases.push(stats);
        }

        let what = format!("seed {seed}, heuristic1");
        assert_eq!(
            incremental.best_length,
            best.length(),
            "{what}: best length"
        );
        assert_eq!(incremental.best, best.schedules, "{what}: best set");
        assert_eq!(incremental.phases, phases, "{what}: phase statistics");
    }
}

/// The resilience layer's bit-identity guarantee: an *unlimited* budget
/// threaded through every entry point (heuristics, facade solve, and
/// portfolio) changes nothing — schedules, stats, and phase traces all
/// match the budget-free API exactly.
#[test]
fn unlimited_budget_is_bit_identical_to_no_budget() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for seed in SEEDS {
        let g = suite_graph(seed);
        let sched = ListScheduler::default();
        let what = format!("seed {seed}");

        let plain2 = heuristic2(&g, &sched, &res, &config()).expect("schedulable");
        let meter = Budget::unlimited().arm();
        let budgeted2 = heuristic2_pruned(&g, &sched, &res, &config(), None, Some(&meter))
            .expect("schedulable");
        assert_outcomes_identical(&plain2, &budgeted2, &format!("{what}, heuristic2+budget"));
        assert_eq!(budgeted2.stopped, None, "{what}: unlimited budget fired");

        let plain1 = heuristic1(&g, &sched, &res, &config()).expect("schedulable");
        let meter = Budget::unlimited().arm();
        let budgeted1 =
            heuristic1_budgeted(&g, &sched, &res, &config(), Some(&meter)).expect("schedulable");
        assert_outcomes_identical(&plain1, &budgeted1, &format!("{what}, heuristic1+budget"));

        let rs = RotationScheduler::new(&g, res.clone()).with_config(config());
        let plain = rs.solve().expect("schedulable");
        let budgeted = rs
            .clone()
            .with_budget(Budget::unlimited())
            .solve()
            .expect("schedulable");
        assert_eq!(plain.length, budgeted.length, "{what}: solve length");
        assert_eq!(plain.state, budgeted.state, "{what}: solve state");
        assert_eq!(plain.depth, budgeted.depth, "{what}: solve depth");
        assert_eq!(plain.quality, budgeted.quality, "{what}: solve quality");
        assert_eq!(plain.stats, budgeted.stats, "{what}: solve stats");
    }
}

/// Anytime monotonicity at the suite scale: under growing rotation
/// budgets the incumbent never regresses, and the truncated search's
/// rotation trace is a prefix of the unlimited run's.
#[test]
fn rotation_budgets_truncate_heuristic2_monotonically() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for seed in [11, 97] {
        let g = suite_graph(seed);
        let sched = ListScheduler::default();
        let full = heuristic2(&g, &sched, &res, &config()).expect("schedulable");
        let full_trace: Vec<u32> = full
            .phases
            .iter()
            .flat_map(|p| p.lengths.iter().copied())
            .collect();
        let mut last_best = u32::MAX;
        // Stride the budget axis to keep the suite fast; include the
        // exact endpoints.
        let budgets: Vec<usize> = (0..full.total_rotations)
            .step_by(7)
            .chain([full.total_rotations])
            .collect();
        for k in budgets {
            let meter = Budget::default().with_max_rotations(k as u64).arm();
            let out = heuristic2_pruned(&g, &sched, &res, &config(), None, Some(&meter))
                .expect("schedulable");
            let what = format!("seed {seed}, budget {k}");
            let trace: Vec<u32> = out
                .phases
                .iter()
                .flat_map(|p| p.lengths.iter().copied())
                .collect();
            assert_eq!(
                trace,
                full_trace[..trace.len()],
                "{what}: truncated trace is not a prefix"
            );
            assert!(out.total_rotations <= k, "{what}: budget overshot");
            assert!(
                out.best_length <= last_best,
                "{what}: incumbent regressed ({} > {last_best})",
                out.best_length
            );
            last_best = out.best_length;
        }
        assert_eq!(last_best, full.best_length);
    }
}

#[test]
fn portfolio_is_identical_for_every_job_count() {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    for seed in [11, 42] {
        let g = suite_graph(seed);
        let baseline = RotationScheduler::new(&g, res.clone())
            .with_config(config())
            .with_jobs(1)
            .portfolio()
            .expect("schedulable");
        for jobs in [2, 4] {
            let run = RotationScheduler::new(&g, res.clone())
                .with_config(config())
                .with_jobs(jobs)
                .portfolio()
                .expect("schedulable");
            let what = format!("seed {seed}, jobs {jobs}");
            assert_eq!(run.best_length, baseline.best_length, "{what}: best length");
            assert_eq!(run.best, baseline.best, "{what}: canonical best set");
            assert_eq!(run.lower_bound, baseline.lower_bound, "{what}: bound");
            assert_eq!(
                run.bound_achieved, baseline.bound_achieved,
                "{what}: bound achievement"
            );
            assert_eq!(
                run.canonical_task, baseline.canonical_task,
                "{what}: canonical task"
            );
            assert_eq!(run.phases, baseline.phases, "{what}: phase statistics");
            assert_eq!(
                run.total_rotations, baseline.total_rotations,
                "{what}: rotation count"
            );
        }
    }
}
