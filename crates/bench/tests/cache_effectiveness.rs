//! The hot-path weight cache must actually pay off on real heuristic
//! runs: rotation revisits zero-delay edge sets (phase restarts, cyclic
//! rotations, repeated `FullSchedule`s of the same retimed face), so a
//! meaningful share of priority-weight computations should be cache
//! hits.

use std::sync::Arc;

use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, HeuristicConfig};
use rotsched_dfg::{NodeId, Retiming};
use rotsched_sched::{ListScheduler, ResourceSet};

fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 32,
        max_size: None,
        keep_best: 4,
        rounds: 2,
    }
}

#[test]
fn weight_cache_gets_hits_on_real_sweeps() {
    let mut total_hits = 0_u64;
    let mut total_misses = 0_u64;
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        heuristic1(&g, &sched, &res, &config()).expect("schedulable");
        heuristic2(&g, &sched, &res, &config()).expect("schedulable");
        let (hits, misses) = sched.weight_cache_stats();
        println!("{name}: weight cache {hits} hits / {misses} misses");
        total_hits += hits;
        total_misses += misses;
    }
    assert!(total_hits > 0, "cache never hit on an entire sweep suite");
    assert!(
        total_hits * 4 >= total_misses,
        "cache hit fewer than 20% of lookups ({total_hits} hits / {total_misses} misses) — \
         the hot-path cache no longer pays off"
    );
    let rate = total_hits as f64 / (total_hits + total_misses) as f64;
    println!(
        "overall hit rate with fingerprint keying: {:.1}%",
        rate * 100.0
    );
}

/// A cache hit must hand back the stored `Arc`, not a fresh copy of the
/// weight vector — the hot loop calls this once per rotation step.
#[test]
fn cache_hits_share_one_allocation() {
    let (name, g) = all_benchmarks(&TimingModel::paper())
        .into_iter()
        .next()
        .expect("suite is non-empty");
    let sched = ListScheduler::default();

    let first = sched.cached_weights(&g, None).expect("acyclic zero graph");
    assert_eq!(
        sched.weight_cache_stats(),
        (0, 1),
        "{name}: cold lookup must miss"
    );

    let second = sched.cached_weights(&g, None).expect("acyclic zero graph");
    assert!(
        Arc::ptr_eq(&first, &second),
        "{name}: a hit returned a reallocated weight vector instead of the cached Arc"
    );
    assert_eq!(sched.weight_cache_stats(), (1, 1));

    // The cache keys on the retiming's *effect* — the zero-delay edge
    // set fingerprint — not on the retiming values. A uniform retiming
    // leaves every retimed delay unchanged, so it must hit the same
    // entry without allocating.
    let mut uniform = Retiming::zero(&g);
    let everyone: Vec<NodeId> = g.node_ids().collect();
    uniform.apply_set(&everyone, 1);
    let third = sched
        .cached_weights(&g, Some(&uniform))
        .expect("acyclic zero graph");
    assert!(
        Arc::ptr_eq(&first, &third),
        "{name}: fingerprint keying must recognize a zero-delay-set-preserving retiming"
    );
    assert_eq!(sched.weight_cache_stats(), (2, 1));
}
