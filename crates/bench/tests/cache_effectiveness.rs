//! The hot-path weight cache must actually pay off on real heuristic
//! runs: rotation revisits zero-delay edge sets (phase restarts, cyclic
//! rotations, repeated `FullSchedule`s of the same retimed face), so a
//! meaningful share of priority-weight computations should be cache
//! hits.

use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, HeuristicConfig};
use rotsched_sched::{ListScheduler, ResourceSet};

fn config() -> HeuristicConfig {
    HeuristicConfig {
        rotations_per_phase: 32,
        max_size: None,
        keep_best: 4,
        rounds: 2,
    }
}

#[test]
fn weight_cache_gets_hits_on_real_sweeps() {
    let mut total_hits = 0_u64;
    let mut total_misses = 0_u64;
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let res = ResourceSet::adders_multipliers(2, 2, false);
        let sched = ListScheduler::default();
        heuristic1(&g, &sched, &res, &config()).expect("schedulable");
        heuristic2(&g, &sched, &res, &config()).expect("schedulable");
        let (hits, misses) = sched.weight_cache_stats();
        println!("{name}: weight cache {hits} hits / {misses} misses");
        total_hits += hits;
        total_misses += misses;
    }
    assert!(total_hits > 0, "cache never hit on an entire sweep suite");
    assert!(
        total_hits * 4 >= total_misses,
        "cache hit fewer than 20% of lookups ({total_hits} hits / {total_misses} misses) — \
         the hot-path cache no longer pays off"
    );
}
