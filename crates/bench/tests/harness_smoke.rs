//! Smoke tests for the experiment harness itself.

use rotsched_bench::{format_row, measure_rs};
use rotsched_benchmarks::{biquad, diffeq, TimingModel};

#[test]
fn measure_rs_reports_consistent_rows() {
    let g = diffeq(&TimingModel::paper());
    let row = measure_rs(&g, 1, 2, false);
    assert_eq!(row.resources, "1A 2M");
    assert_eq!(row.lb, 6);
    assert_eq!(row.rs, 6);
    assert!(row.verified);
    assert!(row.optima >= 1);
    assert!(row.registers >= 1, "loop-carried state needs registers");
}

#[test]
fn format_row_contains_all_fields() {
    let g = biquad(&TimingModel::paper());
    let row = measure_rs(&g, 2, 2, true);
    let text = format_row(&row, 4, 4, 2);
    assert!(text.contains("2A 2Mp"));
    assert!(text.contains("LB"));
    assert!(text.contains("regs"));
    assert!(text.contains("verified"));
}

#[test]
fn register_pressure_scales_with_pipelining_depth() {
    // The deeper 4-stage lattice pipeline holds more concurrent state
    // than the shallow biquad pipeline relative to its size.
    let g = rotsched_benchmarks::lattice4(&TimingModel::paper());
    let tight = measure_rs(&g, 2, 4, false); // kernel 8
    let fast = measure_rs(&g, 6, 15, false); // kernel 2, deep pipeline
    assert!(
        fast.registers >= tight.registers,
        "shorter kernels overlap more iterations: {} vs {}",
        fast.registers,
        tight.registers
    );
}
