//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds in an offline container, so Criterion is not
//! available; the benches under `benches/` (all `harness = false`) use
//! this self-contained harness instead. It keeps the parts that matter
//! for the repo's perf claims: warm-up, batched sampling, median/mean
//! per-iteration times, and a `cargo bench -- <filter>` substring filter.

use std::time::{Duration, Instant};

/// One measured benchmark entry.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `"rotation_step/partial/biquad"`.
    pub id: String,
    /// Total iterations across all samples.
    pub iterations: u64,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median of the per-sample per-iteration times, in nanoseconds.
    pub median_ns: f64,
}

/// A benchmark group: times closures and prints a per-entry summary.
///
/// ```
/// use std::time::Duration;
/// let mut h = rotsched_bench::harness::Harness::new("demo")
///     .with_budget(Duration::from_millis(1), Duration::from_millis(5), 3);
/// let mut acc = 0_u64;
/// h.bench("sum", || {
///     acc = acc.wrapping_add((0..100_u64).sum::<u64>());
/// });
/// assert!(!h.results().is_empty());
/// ```
pub struct Harness {
    group: String,
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
    samples: u32,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness for `group` with the default budget (100 ms warm-up,
    /// ~1 s measurement, 15 samples) and a filter taken from the first
    /// free command-line argument (`cargo bench -- <substr>`).
    #[must_use]
    pub fn new(group: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Harness {
            group: group.to_string(),
            filter,
            warm_up: Duration::from_millis(100),
            measure: Duration::from_secs(1),
            samples: 15,
            results: Vec::new(),
        }
    }

    /// Overrides the measurement budget per benchmark entry.
    #[must_use]
    pub fn with_budget(mut self, warm_up: Duration, measure: Duration, samples: u32) -> Self {
        self.warm_up = warm_up;
        self.measure = measure;
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing one summary line; skipped (with a note) when
    /// the id does not match the active filter.
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.group, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate a batch size so one batch costs roughly 1/samples of
        // the budget but at least one iteration.
        let probe_start = Instant::now();
        f();
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let target_batch = self.measure / (self.samples * 2);
        let batch = (target_batch.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            f();
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples as usize);
        let mut total_iters = 0_u64;
        let mut total_time = Duration::ZERO;
        let deadline = Instant::now() + self.measure;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = start.elapsed();
            per_iter.push(elapsed.as_nanos() as f64 / batch as f64);
            total_iters += batch;
            total_time += elapsed;
            if Instant::now() > deadline {
                break;
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
        println!(
            "{full:<48} median {:>12} mean {:>12} ({} iters)",
            format_ns(median_ns),
            format_ns(mean_ns),
            total_iters
        );
        self.results.push(BenchResult {
            id: full,
            iterations: total_iters,
            mean_ns,
            median_ns,
        });
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing line. Call at the end of `main`.
    pub fn finish(&self) {
        println!(
            "{}: {} benchmark(s) measured",
            self.group,
            self.results.len()
        );
    }
}

/// Formats nanoseconds with an adaptive unit.
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut h = Harness::new("test").with_budget(
            Duration::from_millis(1),
            Duration::from_millis(10),
            3,
        );
        let mut acc = 0_u64;
        h.bench("noop", || acc = acc.wrapping_add(1));
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.id, "test/noop");
        assert!(r.iterations > 0);
        assert!(r.mean_ns > 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
