//! Wall-clock performance report for the parallel portfolio engine and
//! the incremental rotation kernel.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin perf_report [-- OPTIONS]
//!
//!   --out PATH        write the JSON report here (default:
//!                     BENCH_ROTATION.json at the repository root)
//!   --reps N          timed repetitions per jobs value (default: 3)
//!   --check BASELINE  smoke mode: run one sweep, compare schedule
//!                     lengths and the rows fingerprint against a
//!                     checked-in baseline JSON, gate the SoA rotation
//!                     step's tail latency (p99 within 10x of p50),
//!                     gate batch throughput against the baseline's
//!                     recorded solves/s (within a generous divisor),
//!                     hold the driver-overhead reading — measured AND
//!                     baseline — inside a two-sided band (a large
//!                     negative reading means the hand-rolled replica
//!                     went stale, not that the engine got fast), and
//!                     gate the serve layer (warm hits ≥50x faster
//!                     than cold at p50 with zero solver invocations,
//!                     identical bursts collapsing to one solve,
//!                     byte-identical responses throughout), and hold
//!                     the fault-injection plane's `NoopFaults`
//!                     default to at most a 2% warm-path cost against
//!                     a quiet-armed service (the zero-cost gate), and
//!                     gate the static-analysis framework (a full
//!                     schedule-mode analysis of a 256-node graph
//!                     under 5 ms at p50, byte-identical reports on
//!                     every repetition; the sweep fingerprint gate
//!                     doubles as proof that a plain solve pays
//!                     nothing when `--analyze` is off); exit non-zero
//!                     on any regression. No report written.
//!   --certify         certification mode: run one sweep and have the
//!                     independent verifier (`rotsched-verify`) re-prove
//!                     every winning kernel legal — starts, retimed-delay
//!                     precedence, reservations, and the optimality
//!                     verdict. Exit non-zero on any rejection. No
//!                     timing, no report written.
//!   --degradation     anytime-degradation mode: for each paper
//!                     benchmark, run Heuristic 2 once under the
//!                     instrumented engine and read the incumbent best
//!                     length at each truncation point off the recorded
//!                     best-length trajectory (`best_at_rotation`
//!                     equals a fresh budgeted solve at that exact
//!                     rotation count). Deterministic (rotation
//!                     budgets, no clocks); no report written. Source
//!                     of EXPERIMENTS.md's degradation-curve table.
//! ```
//!
//! Times the full Table-3 sweep (every benchmark × resource-config
//! cell) sequentially and under several `--jobs` values (requested and
//! effective counts both recorded), checks that every jobs value yields
//! byte-identical rows, samples per-rotation-step latency percentiles
//! for the allocation-free SoA step and the incremental context path
//! against the from-scratch path, times `solve_batch` throughput over a
//! deduplicating corpus, measures the `SearchDriver` dispatch overhead
//! against a hand-rolled replica of the pre-engine phase loop (the
//! `NoopObserver` path must stay within noise of the bare kernel),
//! exercises the warm-path serve layer in-process (cold vs. warm-hit
//! latency, single-flight deduplication under an identical burst,
//! closed-loop sustained throughput — all counter-asserted and
//! byte-compared), and writes a machine-readable JSON report.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use rotsched_baselines::TABLE_3;
use rotsched_bench::{format_row, measure_rs};
use rotsched_benchmarks::{
    allpole, biquad, diffeq, lattice4, random_dfg, RandomDfgConfig, TimingModel,
};
use rotsched_core::{
    down_rotate, effective_jobs, initial_state, parallel_indexed, BestSet, HeuristicConfig,
    Objective, ProblemSpec, RotationContext, RotationScheduler, Score, SearchDriver, TraceRecorder,
};
use rotsched_dfg::rng::{Fnv64, SplitMix64};
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, ResourceSet, WrapScratch};
use rotsched_serve::{seeded_corpus, FaultPlan, InjectedFaults, ServeConfig, SolveService};

const JOBS: [usize; 4] = [1, 2, 4, 8];
/// Size-1 rotations per sampled sequence in the per-step timing study.
const STEP_SEQ: usize = 32;
/// Repetitions of each sampled sequence.
const STEP_REPS: usize = 5;
/// Unique problems in the batch-throughput corpus.
const BATCH_UNIQUE: u64 = 48;
/// Total batch items (the tail repeats earlier specs, exercising the
/// fingerprint deduplication path).
const BATCH_ITEMS: u64 = 64;
/// Timed `solve_batch` repetitions.
const BATCH_REPS: usize = 9;
/// Smoke gate: a steady-state SoA step's tail latency must stay within
/// this multiple of its median.
const STEP_TAIL_RATIO: u64 = 10;
/// Smoke gate: measured batch throughput must stay within this divisor
/// of the baseline's `solves_per_sec_p50` (generous — the baseline may
/// come from different hardware; the gate exists to catch
/// order-of-magnitude regressions, not machine variance).
const BATCH_THROUGHPUT_DIVISOR: f64 = 3.0;
/// Smoke gate: the engine-vs-replica overhead must sit inside
/// `±DRIVER_OVERHEAD_BAND_PCT` — two-sided, because a large *negative*
/// reading doesn't mean the engine got fast, it means the hand-rolled
/// replica went stale against the engine's hot path.
const DRIVER_OVERHEAD_BAND_PCT: f64 = 15.0;
/// Seed for the serve-arm corpus.
const SERVE_SEED: u64 = 11;
/// Unique problems in the serve-arm corpus. Seven keeps every item
/// budget-free (`seeded_corpus` attaches a rotation budget to every
/// eighth item), so each problem takes the full warm path.
const SERVE_UNIQUE: usize = 7;
/// Fresh-service repetitions of the cold-solve pass.
const SERVE_COLD_REPS: usize = 3;
/// Timed warm-hit samples.
const SERVE_WARM_SAMPLES: usize = 2000;
/// Concurrent identical requests in the coalescing burst.
const SERVE_BURST: usize = 32;
/// Closed-loop client threads in the sustained arm.
const SERVE_SUSTAIN_THREADS: usize = 4;
/// Requests per closed-loop client.
const SERVE_SUSTAIN_REQUESTS: usize = 200;
/// Smoke gate: a warm cache hit must be at least this many times
/// faster than a cold solve at p50.
const SERVE_WARM_SPEEDUP_FLOOR: u64 = 50;
/// Smoke gate: the default `NoopFaults` warm path must cost at most
/// this much more than a fault-armed service running an all-quiet
/// plan. The fault plane is a generic parameter monomorphized out on
/// the default path; if the noop path ever pays more than noise, the
/// zero-cost claim broke.
const FAULT_OVERHEAD_LIMIT_PCT: f64 = 2.0;
/// Interleaved warm-hit samples per arm in the fault-overhead study.
const FAULT_OVERHEAD_SAMPLES: usize = 1200;
/// Smoke gate: the default length-only objective must cost at most
/// this much more than a scalar-`u32` replica of the pre-objective
/// best set over identical rotation sequences. `Objective::score`
/// dispatch plus `Score::from_length` packing is a match and a shift;
/// if the default path ever pays more than noise, the zero-cost
/// objective claim broke.
const OBJECTIVE_OVERHEAD_LIMIT_PCT: f64 = 2.0;
/// Interleaved sequence samples per arm in the objective-overhead
/// study.
const OBJECTIVE_OVERHEAD_SAMPLES: usize = 400;
/// Graphs in the analyze-arm latency suite.
const ANALYZE_SUITE_GRAPHS: u64 = 8;
/// Nodes per suite graph.
const ANALYZE_SUITE_NODES: usize = 64;
/// Timed full-analysis repetitions per graph.
const ANALYZE_REPS: usize = 9;
/// Nodes in the large analyze-gate graph.
const ANALYZE_LARGE_NODES: usize = 256;
/// Smoke gate: one full schedule-mode analysis (all four passes plus
/// the lint sweep) of the 256-node graph must finish under 5 ms at
/// p50. The analysis framework runs after `solve --analyze` and per
/// request in `analyze`; a linear-ish budget keeps it invisible next
/// to the solve it annotates.
const ANALYZE_LARGE_LIMIT_NS: u64 = 5_000_000;

struct Options {
    out: String,
    check: Option<String>,
    reps: usize,
    degradation: bool,
    certify: bool,
}

fn main() {
    let opts = options_from_args();
    let t = TimingModel::paper();
    let graphs: Vec<(&str, Dfg)> = vec![
        ("Differential Equation", diffeq(&t)),
        ("4-stage Lattice Filter", lattice4(&t)),
        ("All-pole Lattice Filter", allpole(&t)),
        ("2-cascaded Biquad Filter", biquad(&t)),
    ];

    if let Some(baseline) = &opts.check {
        std::process::exit(check_against_baseline(&graphs, baseline));
    }
    if opts.certify {
        std::process::exit(certify_sweep(&graphs));
    }
    if opts.degradation {
        degradation_report(&graphs);
        return;
    }

    let cells = TABLE_3.len();
    let reps = opts.reps;
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("perf_report: table3 sweep ({cells} cells), {reps} reps per jobs value");
    println!("hardware threads: {hardware}\n");

    // One untimed warm-up pass so allocator and page-cache effects hit
    // every configuration equally.
    let _ = sweep(&graphs, 1);

    let mut results = Vec::new();
    let mut lengths = Vec::new();
    for jobs in JOBS {
        let effective = effective_jobs(jobs, cells);
        let mut wall_ns = Vec::new();
        let mut fingerprint = 0_u64;
        for _ in 0..reps {
            let start = Instant::now();
            let rows = sweep(&graphs, jobs);
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            wall_ns.push(elapsed);
            fingerprint = rows_fingerprint(&rows);
            lengths = rows.iter().map(|(_, rs)| *rs).collect();
        }
        wall_ns.sort_unstable();
        let median = wall_ns[wall_ns.len() / 2];
        let min = wall_ns[0];
        println!(
            "jobs {jobs} (effective {effective}): median {:.1} ms, min {:.1} ms \
             (fingerprint {fingerprint:#018x})",
            median as f64 / 1e6,
            min as f64 / 1e6
        );
        results.push((jobs, effective, median, min, fingerprint));
    }

    let seq_median = results[0].2;
    let deterministic = results.iter().all(|r| r.4 == results[0].4);
    assert!(
        deterministic,
        "table3 rows must be byte-identical for every jobs value"
    );
    println!("\nrows byte-identical across all jobs values: yes");
    for (jobs, _, median, _, _) in &results {
        println!(
            "speedup vs sequential at jobs {jobs}: {:.2}x",
            seq_median as f64 / *median as f64
        );
    }

    let soa = soa_steady_percentiles();
    let (ctx, scratch) = step_percentiles(&graphs);
    println!(
        "\nrotation step (soa, steady):  p50 {:>8} ns, p90 {:>8} ns, p99 {:>8} ns ({} samples)",
        soa.p50, soa.p90, soa.p99, soa.samples
    );
    println!(
        "rotation step (context):      p50 {:>8} ns, p90 {:>8} ns, p99 {:>8} ns ({} samples)",
        ctx.p50, ctx.p90, ctx.p99, ctx.samples
    );
    println!(
        "rotation step (from scratch): p50 {:>8} ns, p90 {:>8} ns, p99 {:>8} ns ({} samples)",
        scratch.p50, scratch.p90, scratch.p99, scratch.samples
    );
    println!(
        "per-step speedup at p50: {:.2}x (context vs scratch); steady soa step \
         tail p99/p50: {:.1}x",
        scratch.p50 as f64 / ctx.p50.max(1) as f64,
        soa.p99 as f64 / soa.p50.max(1) as f64
    );

    let specs = batch_corpus();
    let batch = batch_throughput(&specs);
    println!(
        "\nbatch throughput ({} items, {} unique): \
         {:.0} solves/s at p50, {:.0} solves/s at the p99 tail",
        BATCH_ITEMS,
        BATCH_UNIQUE,
        solves_per_sec(BATCH_ITEMS, batch.p50),
        solves_per_sec(BATCH_ITEMS, batch.p99)
    );

    let (driver, legacy) = driver_overhead(&graphs);
    let overhead_pct = (driver.p50 as f64 - legacy.p50 as f64) / legacy.p50.max(1) as f64 * 100.0;
    println!(
        "\ndriver overhead ({STEP_SEQ} size-1 rotations per sequence): \
         driver p50 {} ns, legacy loop p50 {} ns ({overhead_pct:+.2}%)",
        driver.p50, legacy.p50
    );

    let serve = serve_report();
    println!(
        "\nserve cold solve:  p50 {:>9} ns, p99 {:>9} ns ({} samples)",
        serve.cold.p50, serve.cold.p99, serve.cold.samples
    );
    println!(
        "serve warm hit:    p50 {:>9} ns, p99 {:>9} ns ({} samples, \
         {} extra solver invocations)",
        serve.warm.p50, serve.warm.p99, serve.warm.samples, serve.warm_extra_invocations
    );
    println!(
        "serve warm speedup at p50: {:.0}x; coalescing: {} identical requests \
         -> {} solve(s), {} followers; sustained: {:.0} req/s over {} threads; \
         deterministic: {}",
        serve.cold.p50 as f64 / serve.warm.p50.max(1) as f64,
        SERVE_BURST,
        serve.burst_solves,
        serve.burst_followers,
        serve.sustained_rps,
        SERVE_SUSTAIN_THREADS,
        if serve.deterministic { "yes" } else { "NO" }
    );
    assert!(
        serve.deterministic,
        "serve responses must be byte-identical across cache states, \
         thread counts, and arrival orders"
    );

    let fault = fault_overhead();
    println!(
        "\nfault-plane overhead: noop warm p50 {} ns vs quiet-armed p50 {} ns \
         ({:+.2}%, limit {FAULT_OVERHEAD_LIMIT_PCT}%)",
        fault.noop_p50, fault.armed_p50, fault.overhead_pct
    );

    let objective = objective_overhead(&graphs);
    println!(
        "objective-core overhead: scalar best-set p50 {} ns vs packed p50 {} ns \
         ({:+.2}%, limit {OBJECTIVE_OVERHEAD_LIMIT_PCT}%)",
        objective.scalar_p50, objective.packed_p50, objective.overhead_pct
    );

    let analyze = analyze_arm();
    println!(
        "\nfull analysis ({ANALYZE_SUITE_NODES}-node suite): p50 {:>8} ns, \
         p90 {:>8} ns, p99 {:>8} ns ({} samples)",
        analyze.suite.p50, analyze.suite.p90, analyze.suite.p99, analyze.suite.samples
    );
    println!(
        "full analysis ({ANALYZE_LARGE_NODES} nodes):     p50 {:>8} ns \
         (limit {ANALYZE_LARGE_LIMIT_NS} ns); reports byte-stable: {}",
        analyze.large.p50,
        if analyze.byte_stable { "yes" } else { "NO" }
    );
    assert!(
        analyze.byte_stable,
        "analysis reports must render byte-identically on every run"
    );

    let json = render_json(
        hardware,
        cells,
        reps,
        &results,
        seq_median,
        deterministic,
        &lengths,
        &soa,
        &ctx,
        &scratch,
        &batch,
        &driver,
        &legacy,
        &serve,
        &fault,
        &objective,
        &analyze,
    );
    match std::fs::write(&opts.out, json) {
        Ok(()) => println!("\nwrote {}", opts.out),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", opts.out);
            std::process::exit(1);
        }
    }
}

/// Runs the full Table-3 sweep; returns each cell's formatted row and
/// achieved schedule length.
fn sweep(graphs: &[(&str, Dfg)], jobs: usize) -> Vec<(String, u32)> {
    parallel_indexed(jobs, TABLE_3.len(), |i| {
        let row = &TABLE_3[i];
        let g = &graphs
            .iter()
            .find(|(name, _)| *name == row.benchmark)
            .expect("benchmark exists")
            .1;
        let measured = measure_rs(g, row.adders, row.multipliers, row.pipelined);
        let rs = measured.rs;
        (format_row(&measured, row.lb, row.rs, row.rs_depth), rs)
    })
}

fn rows_fingerprint(rows: &[(String, u32)]) -> u64 {
    let mut h = Fnv64::new();
    for (row, _) in rows {
        for b in row.bytes() {
            h.write_u8(b);
        }
        h.write_u8(b'\n');
    }
    h.finish()
}

#[derive(Clone, Copy)]
struct StepPercentiles {
    p50: u64,
    p90: u64,
    p99: u64,
    samples: usize,
}

fn percentiles(ns: &mut [u64]) -> StepPercentiles {
    ns.sort_unstable();
    let at = |p: usize| ns[(ns.len() - 1) * p / 100];
    StepPercentiles {
        p50: at(50),
        p90: at(90),
        p99: at(99),
        samples: ns.len(),
    }
}

/// Samples per-rotation-step latency for the persistent-context path and
/// the from-scratch operator over the paper benchmarks plus a 64-node
/// random graph.
fn step_percentiles(graphs: &[(&str, Dfg)]) -> (StepPercentiles, StepPercentiles) {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    let sched = ListScheduler::default();
    let random64 = random_dfg(
        &RandomDfgConfig {
            nodes: 64,
            ..RandomDfgConfig::default()
        },
        7,
    );
    let mut ctx_ns = Vec::new();
    let mut scratch_ns = Vec::new();
    let subjects = graphs
        .iter()
        .map(|(_, g)| g)
        .chain(std::iter::once(&random64));
    for g in subjects {
        let init = initial_state(g, &sched, &res).expect("schedulable");
        // One continuous sequence per arm — the context and the caches
        // warm up exactly as they do inside a rotation phase.
        let mut state = init.clone();
        let mut ctx = RotationContext::new(g, &sched, &res, &state).expect("schedulable");
        for _ in 0..STEP_REPS * STEP_SEQ {
            if state.length(g) <= 1 {
                break;
            }
            let start = Instant::now();
            ctx.down_rotate(g, &sched, &res, &mut state, 1)
                .expect("legal");
            ctx_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let mut state = init.clone();
        for _ in 0..STEP_REPS * STEP_SEQ {
            if state.length(g) <= 1 {
                break;
            }
            let start = Instant::now();
            down_rotate(g, &sched, &res, &mut state, 1).expect("legal");
            scratch_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    (percentiles(&mut ctx_ns), percentiles(&mut scratch_ns))
}

/// Steps in the steady-state SoA benchmark's measured window.
const SOA_SAMPLES: usize = 800;

/// Samples the engine's true steady-state rotation step: a ring that
/// rotates indefinitely, pooled buffers and the weight memo fully warm,
/// each step a `down_rotate_in_place` on the reused buffer plus the
/// allocation-free `WrapScratch` wrapped-length probe — exactly the
/// work `SearchDriver` performs per rotation once warm-up is over (the
/// `alloc_discipline` suite proves this window is allocation-free).
/// Unlike [`step_percentiles`], which pools five graphs of very
/// different sizes and shapes, every step here does like-for-like work,
/// so the percentile spread reflects the hot loop itself.
fn soa_steady_percentiles() -> StepPercentiles {
    let n = 24_usize;
    let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let g = rotsched_dfg::DfgBuilder::new("steady-ring")
        .nodes("v", n, rotsched_dfg::OpKind::Add, 1)
        .chain(&refs)
        .edge(&format!("v{}", n - 1), "v0", 3)
        .build()
        .expect("valid ring");
    let sched = ListScheduler::default();
    let res = ResourceSet::adders_multipliers(4, 0, false);
    let mut state = initial_state(&g, &sched, &res).expect("ring schedules");
    let mut ctx = RotationContext::new(&g, &sched, &res, &state).expect("schedulable");
    let mut wrap = WrapScratch::new(&g, &res).expect("ops bind");
    // Warm-up: the rotation sequence of a uniform ring is periodic, so
    // 4n steps see every distinct zero-delay set and grow every buffer.
    // The untimed wrapped-length probe between steps keeps the scratch
    // warm without charging the probe to the rotation arm (the
    // `context` and `scratch` arms time the rotation operator alone).
    for _ in 0..4 * n {
        ctx.down_rotate_in_place(&g, &sched, &res, &mut state, 1)
            .expect("steady ring keeps rotating");
        wrap.wrapped_length(&g, Some(&state.retiming), &state.schedule, &res)
            .expect("rotation states wrap");
    }
    let mut ns = Vec::with_capacity(SOA_SAMPLES);
    for _ in 0..SOA_SAMPLES {
        let start = Instant::now();
        ctx.down_rotate_in_place(&g, &sched, &res, &mut state, 1)
            .expect("steady ring keeps rotating");
        ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        wrap.wrapped_length(&g, Some(&state.retiming), &state.schedule, &res)
            .expect("rotation states wrap");
    }
    percentiles(&mut ns)
}

/// The batch-throughput corpus: `BATCH_ITEMS` specs over `BATCH_UNIQUE`
/// seeds, so the tail repeats earlier graphs and exercises the
/// deduplication path exactly as a real sweep with repeated cells would.
fn batch_corpus() -> Vec<ProblemSpec> {
    (0..BATCH_ITEMS)
        .map(|i| {
            let seed = i % BATCH_UNIQUE;
            let dfg = random_dfg(
                &RandomDfgConfig {
                    nodes: 8 + (seed as usize % 9),
                    ..RandomDfgConfig::default()
                },
                seed,
            );
            let adders = 1 + (seed % 2) as u32;
            let mults = 1 + (seed / 2 % 2) as u32;
            ProblemSpec::new(dfg, ResourceSet::adders_multipliers(adders, mults, false))
                .with_config(HeuristicConfig {
                    rotations_per_phase: 8,
                    max_size: Some(4),
                    keep_best: 4,
                    rounds: 1,
                })
        })
        .collect()
}

/// Times `RotationScheduler::solve_batch` over the corpus. Returns
/// per-repetition wall-time percentiles; p99 is the slowest repetition,
/// so `items / p99` is the tail throughput floor.
fn batch_throughput(specs: &[ProblemSpec]) -> StepPercentiles {
    // Untimed warm-up rep.
    let _ = RotationScheduler::solve_batch(specs).expect("corpus solves");
    let mut wall_ns = Vec::with_capacity(BATCH_REPS);
    for _ in 0..BATCH_REPS {
        let start = Instant::now();
        let outcomes = RotationScheduler::solve_batch(specs).expect("corpus solves");
        assert_eq!(outcomes.len(), specs.len());
        wall_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    percentiles(&mut wall_ns)
}

/// Solves per second implied by a per-repetition wall time.
fn solves_per_sec(items: u64, wall_ns: u64) -> f64 {
    items as f64 * 1e9 / wall_ns.max(1) as f64
}

/// Measures the engine's dispatch overhead: a full size-1 rotation
/// phase through [`SearchDriver`] (the monomorphized `NoopObserver`
/// path) against a hand-rolled replica of the pre-engine phase loop
/// driving the same incremental kernel. Returns per-sequence wall-time
/// percentiles `(driver, legacy)`.
fn driver_overhead(graphs: &[(&str, Dfg)]) -> (StepPercentiles, StepPercentiles) {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    let sched = ListScheduler::default();
    let random64 = random_dfg(
        &RandomDfgConfig {
            nodes: 64,
            ..RandomDfgConfig::default()
        },
        7,
    );
    let mut driver_ns = Vec::new();
    let mut legacy_ns = Vec::new();
    let subjects = graphs
        .iter()
        .map(|(_, g)| g)
        .chain(std::iter::once(&random64));
    for g in subjects {
        let init = initial_state(g, &sched, &res).expect("schedulable");
        // Warm-up: one untimed sequence per arm.
        run_driver_sequence(g, &sched, &res, &init);
        run_legacy_sequence(g, &sched, &res, &init);
        for _ in 0..STEP_REPS {
            let start = Instant::now();
            run_driver_sequence(g, &sched, &res, &init);
            driver_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let start = Instant::now();
            run_legacy_sequence(g, &sched, &res, &init);
            legacy_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    (percentiles(&mut driver_ns), percentiles(&mut legacy_ns))
}

/// One phase of `STEP_SEQ` size-1 rotations through the engine.
fn run_driver_sequence(
    g: &Dfg,
    sched: &ListScheduler,
    res: &ResourceSet,
    init: &rotsched_core::RotationState,
) {
    let mut state = init.clone();
    let mut best = BestSet::new(4);
    let mut driver = SearchDriver::incremental(g, sched, res);
    driver
        .run_phase(&mut state, &mut best, 1, STEP_SEQ)
        .expect("legal");
}

/// The engine's phase loop, hand-rolled: the same context kernel,
/// halving rule, wrapped-length probe, stats bookkeeping, and best-set
/// offer that `SearchDriver::run_phase` performs — minus the engine's
/// dispatch (step-mode enum, budget polling, observer calls). Kept as
/// the baseline the engine's dispatch is measured against, and it MUST
/// track the engine's hot path: when the engine gains a faster kernel
/// (as the SoA rework did with `down_rotate_in_place` + `WrapScratch`),
/// a stale replica turns the overhead number into a bogus "engine is
/// far faster than the bare loop" reading. The two-sided `--check` band
/// exists to catch exactly that drift.
fn run_legacy_sequence(
    g: &Dfg,
    sched: &ListScheduler,
    res: &ResourceSet,
    init: &rotsched_core::RotationState,
) {
    let mut state = init.clone();
    let mut best = BestSet::new(4);
    let mut ctx = RotationContext::new(g, sched, res, &state).expect("schedulable");
    let mut wrap = WrapScratch::new(g, res).expect("ops bind");
    let mut rotations = 0_usize;
    let mut lengths = Vec::new();
    let mut first_optimum_at = None;
    let mut min_seen = u32::MAX;
    for j in 0..STEP_SEQ {
        let length = state.length(g);
        if length <= 1 {
            break;
        }
        let mut effective = 1_u32;
        while effective >= length {
            effective = effective.div_ceil(2);
        }
        if effective == 0 {
            break;
        }
        ctx.down_rotate_in_place(g, sched, res, &mut state, effective)
            .expect("legal");
        let wrapped = wrap
            .wrapped_length(g, Some(&state.retiming), &state.schedule, res)
            .expect("wraps");
        rotations += 1;
        lengths.push(wrapped);
        if wrapped < min_seen {
            min_seen = wrapped;
            first_optimum_at = Some(j + 1);
        }
        let _ = best.offer(Score::from_length(wrapped), &state);
    }
    // Keep the bookkeeping observable so the optimizer cannot discard
    // the replica's stats work that the real loop also performed.
    std::hint::black_box((rotations, lengths, first_optimum_at));
}

/// Everything the serve arms measure and assert.
struct ServeReport {
    cold: StepPercentiles,
    warm: StepPercentiles,
    /// Solver invocations during warm-hit sampling — must be 0: the
    /// warm path never touches the solver.
    warm_extra_invocations: u64,
    warm_hits: u64,
    /// Solver invocations across the identical burst — must be 1.
    burst_solves: u64,
    /// Burst requests served without solving (coalesced + cache hits).
    burst_followers: u64,
    sustained_rps: f64,
    /// Every response byte-identical to the reference, across fresh
    /// services, warm caches, and concurrent clients.
    deterministic: bool,
}

/// Measures the warm-path serve layer in-process: cold-solve latency
/// over fresh services, warm-hit latency with the solver provably
/// idle, single-flight deduplication under an identical burst, and
/// closed-loop sustained throughput — asserting byte-identical
/// responses throughout.
fn serve_report() -> ServeReport {
    let payloads: Vec<String> = seeded_corpus(SERVE_SEED, SERVE_UNIQUE)
        .into_iter()
        .map(|doc| format!("solve\n{doc}"))
        .collect();
    let mut deterministic = true;

    // Cold solves: a fresh service per repetition, so every request
    // misses. Responses across instances must agree byte-for-byte —
    // this is the "regardless of cache state" half of the determinism
    // contract.
    let mut cold_ns = Vec::with_capacity(SERVE_COLD_REPS * payloads.len());
    let mut reference: Vec<String> = Vec::with_capacity(payloads.len());
    for rep in 0..SERVE_COLD_REPS {
        let service = SolveService::new(ServeConfig::default());
        for (i, payload) in payloads.iter().enumerate() {
            let start = Instant::now();
            let handled = service.handle(payload);
            cold_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let response = handled.response();
            assert!(
                response.contains("\"status\": \"ok\""),
                "serve corpus item {i} did not solve: {response}"
            );
            if rep == 0 {
                reference.push(response.to_owned());
            } else {
                deterministic &= response == reference[i];
            }
        }
        assert_eq!(
            service.counters().solver_invocations,
            payloads.len() as u64,
            "every cold request must invoke the solver exactly once"
        );
    }

    // Warm hits: one service, fully warmed, then a long timed run of
    // pure cache hits. The counters prove the solver never ran.
    let service = SolveService::new(ServeConfig::default());
    for (i, payload) in payloads.iter().enumerate() {
        deterministic &= service.handle(payload).response() == reference[i];
    }
    let warmed = service.counters().solver_invocations;
    let mut warm_ns = Vec::with_capacity(SERVE_WARM_SAMPLES);
    for k in 0..SERVE_WARM_SAMPLES {
        let i = k % payloads.len();
        let start = Instant::now();
        let handled = service.handle(&payloads[i]);
        warm_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        deterministic &= handled.response() == reference[i];
    }
    let after = service.counters();
    let warm_extra_invocations = after.solver_invocations - warmed;
    let warm_hits = after.cache_hits;

    // Coalescing: SERVE_BURST threads fire the identical request at a
    // cold service through a barrier. Exactly one solve; every thread
    // gets the same bytes (followers via the flight, late arrivals via
    // the cache the leader filled before retiring the flight).
    let burst_service = Arc::new(SolveService::new(ServeConfig::default()));
    let burst_payload = Arc::new(payloads[1].clone());
    let barrier = Arc::new(Barrier::new(SERVE_BURST));
    let workers: Vec<_> = (0..SERVE_BURST)
        .map(|_| {
            let service = Arc::clone(&burst_service);
            let payload = Arc::clone(&burst_payload);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.handle(&payload).response().to_owned()
            })
        })
        .collect();
    for worker in workers {
        deterministic &= worker.join().expect("burst worker") == reference[1];
    }
    let burst = burst_service.counters();
    let burst_solves = burst.solver_invocations;
    let burst_followers = burst.coalesced + burst.cache_hits;

    // Sustained closed loop: seeded clients hammering the corpus mix
    // against one service — the "regardless of thread count or arrival
    // order" half of the determinism contract, plus a requests/s
    // number dominated by the warm path, as production traffic is.
    let sustain_service = Arc::new(SolveService::new(ServeConfig::default()));
    let sustain_payloads = Arc::new(payloads);
    let sustain_reference = Arc::new(reference);
    let started = Instant::now();
    let clients: Vec<_> = (0..SERVE_SUSTAIN_THREADS)
        .map(|t| {
            let service = Arc::clone(&sustain_service);
            let payloads = Arc::clone(&sustain_payloads);
            let reference = Arc::clone(&sustain_reference);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(SERVE_SEED ^ (0x5EED + t as u64));
                let mut ok = true;
                for _ in 0..SERVE_SUSTAIN_REQUESTS {
                    let i = rng.index(payloads.len());
                    ok &= service.handle(&payloads[i]).response() == reference[i];
                }
                ok
            })
        })
        .collect();
    for client in clients {
        deterministic &= client.join().expect("sustain client");
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let total = (SERVE_SUSTAIN_THREADS * SERVE_SUSTAIN_REQUESTS) as f64;

    ServeReport {
        cold: percentiles(&mut cold_ns),
        warm: percentiles(&mut warm_ns),
        warm_extra_invocations,
        warm_hits,
        burst_solves,
        burst_followers,
        sustained_rps: total / elapsed,
        deterministic,
    }
}

/// What the fault-overhead arm measures.
struct FaultOverheadReport {
    noop_p50: u64,
    armed_p50: u64,
    /// `(noop - armed) / armed`, in percent. Negative or near zero
    /// when `NoopFaults` is truly free (the armed arm does strictly
    /// more work: rate checks against an all-quiet plan).
    overhead_pct: f64,
    samples: usize,
}

/// Times one call for the fault-overhead comparison.
fn time_one(call: impl FnOnce()) -> u64 {
    let start = Instant::now();
    call();
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Measures the cost of threading the fault plane through the serve
/// hot path: interleaved warm-hit sampling of the default
/// (`NoopFaults`, monomorphized no-ops) service against a service
/// armed with [`FaultPlan::quiet`] — every injection point consulted,
/// every rate zero, nothing fires. Interleaving cancels clock and
/// cache drift between the arms.
fn fault_overhead() -> FaultOverheadReport {
    let payloads: Vec<String> = seeded_corpus(SERVE_SEED, SERVE_UNIQUE)
        .into_iter()
        .map(|doc| format!("solve\n{doc}"))
        .collect();
    let noop = SolveService::new(ServeConfig::default());
    let armed = SolveService::with_faults(
        ServeConfig::default(),
        InjectedFaults::new(FaultPlan::quiet(1)),
    );
    // Warm both caches fully, plus one untimed hit lap per arm.
    for payload in &payloads {
        assert_eq!(
            noop.handle(payload).response(),
            armed.handle(payload).response(),
            "a quiet plan must not change response bytes"
        );
    }
    for payload in &payloads {
        let _ = noop.handle(payload);
        let _ = armed.handle(payload);
    }
    let mut noop_ns = Vec::with_capacity(FAULT_OVERHEAD_SAMPLES);
    let mut armed_ns = Vec::with_capacity(FAULT_OVERHEAD_SAMPLES);
    for k in 0..FAULT_OVERHEAD_SAMPLES {
        let payload = &payloads[k % payloads.len()];
        // Alternate which arm goes first: back-to-back calls on the
        // same payload leave the second arm with warmer caches, and a
        // fixed order would bias the comparison toward whichever arm
        // always ran second.
        if k % 2 == 0 {
            noop_ns.push(time_one(|| drop(noop.handle(payload))));
            armed_ns.push(time_one(|| drop(armed.handle(payload))));
        } else {
            armed_ns.push(time_one(|| drop(armed.handle(payload))));
            noop_ns.push(time_one(|| drop(noop.handle(payload))));
        }
    }
    assert_eq!(
        noop.counters().solver_invocations,
        payloads.len() as u64,
        "sampling must stay on the warm path"
    );
    let noop_p50 = percentiles(&mut noop_ns).p50;
    let armed_p50 = percentiles(&mut armed_ns).p50;
    FaultOverheadReport {
        noop_p50,
        armed_p50,
        overhead_pct: (noop_p50 as f64 - armed_p50 as f64) / armed_p50.max(1) as f64 * 100.0,
        samples: FAULT_OVERHEAD_SAMPLES,
    }
}

/// What the objective-overhead arm measures.
struct ObjectiveOverheadReport {
    /// p50 of one rotation sequence against the scalar-`u32` replica.
    scalar_p50: u64,
    /// p50 of the same sequence against the packed-score best set,
    /// scored through the `Objective::Length` dispatch the engine uses.
    packed_p50: u64,
    /// `(packed - scalar) / scalar`, in percent.
    overhead_pct: f64,
    samples: usize,
}

/// A `u32`-keyed replica of the pre-objective best set, for the
/// overhead comparison only: same admission rule, same fingerprint,
/// same cloning discipline — scalar length compare instead of the
/// packed score.
struct ScalarBestSet {
    length: u32,
    schedules: Vec<rotsched_core::RotationState>,
    fingerprints: Vec<u64>,
    capacity: usize,
}

impl ScalarBestSet {
    fn new(capacity: usize) -> Self {
        ScalarBestSet {
            length: u32::MAX,
            schedules: Vec::new(),
            fingerprints: Vec::new(),
            capacity,
        }
    }

    fn fingerprint(state: &rotsched_core::RotationState) -> u64 {
        let mut h = Fnv64::new();
        for (v, cs) in state.schedule.iter() {
            h.write_u32(u32::try_from(v.index()).unwrap_or(u32::MAX));
            h.write_u32(cs);
        }
        h.finish()
    }

    fn offer(&mut self, length: u32, state: &rotsched_core::RotationState) -> bool {
        if length > self.length {
            return false;
        }
        if length < self.length {
            let fp = Self::fingerprint(state);
            self.length = length;
            self.schedules.clear();
            self.fingerprints.clear();
            self.schedules.push(state.clone());
            self.fingerprints.push(fp);
            return true;
        }
        if self.schedules.len() >= self.capacity {
            return false;
        }
        let fp = Self::fingerprint(state);
        let duplicate = self
            .fingerprints
            .iter()
            .zip(&self.schedules)
            .any(|(&f, s)| f == fp && s.schedule == state.schedule);
        if !duplicate {
            self.schedules.push(state.clone());
            self.fingerprints.push(fp);
        }
        false
    }
}

/// The scalar arm: the legacy loop tracking its best with plain `u32`
/// lengths, exactly as the engine did before the objective core.
fn run_scalar_sequence(
    g: &Dfg,
    sched: &ListScheduler,
    res: &ResourceSet,
    init: &rotsched_core::RotationState,
) {
    let mut state = init.clone();
    let mut best = ScalarBestSet::new(4);
    let mut ctx = RotationContext::new(g, sched, res, &state).expect("schedulable");
    let mut wrap = WrapScratch::new(g, res).expect("ops bind");
    for _ in 0..STEP_SEQ {
        let length = state.length(g);
        if length <= 1 {
            break;
        }
        let mut effective = 1_u32;
        while effective >= length {
            effective = effective.div_ceil(2);
        }
        if effective == 0 {
            break;
        }
        ctx.down_rotate_in_place(g, sched, res, &mut state, effective)
            .expect("legal");
        let wrapped = wrap
            .wrapped_length(g, Some(&state.retiming), &state.schedule, res)
            .expect("wraps");
        let _ = best.offer(wrapped, &state);
    }
    std::hint::black_box((best.length, best.schedules.len()));
}

/// The packed arm: the identical loop, but scoring through the
/// `Objective::Length` dispatch and the packed best set — the exact
/// representation the engine's default path runs today.
fn run_packed_sequence(
    g: &Dfg,
    sched: &ListScheduler,
    res: &ResourceSet,
    init: &rotsched_core::RotationState,
) {
    let mut state = init.clone();
    let mut best = BestSet::new(4);
    let mut ctx = RotationContext::new(g, sched, res, &state).expect("schedulable");
    let mut wrap = WrapScratch::new(g, res).expect("ops bind");
    for _ in 0..STEP_SEQ {
        let length = state.length(g);
        if length <= 1 {
            break;
        }
        let mut effective = 1_u32;
        while effective >= length {
            effective = effective.div_ceil(2);
        }
        if effective == 0 {
            break;
        }
        ctx.down_rotate_in_place(g, sched, res, &mut state, effective)
            .expect("legal");
        let wrapped = wrap
            .wrapped_length(g, Some(&state.retiming), &state.schedule, res)
            .expect("wraps");
        let score = Objective::Length.score(g, &state.retiming, wrapped);
        let _ = best.offer(score, &state);
    }
    std::hint::black_box((best.length(), best.count()));
}

/// Measures what the pluggable objective core costs the default
/// length-only path: interleaved timing of identical rotation
/// sequences against the scalar-`u32` replica of the pre-objective
/// best set vs the packed-score best set behind the `Objective`
/// dispatch. Interleaving cancels clock and cache drift between arms.
fn objective_overhead(graphs: &[(&str, Dfg)]) -> ObjectiveOverheadReport {
    let res = ResourceSet::adders_multipliers(2, 2, false);
    let sched = ListScheduler::default();
    let subjects: Vec<(&Dfg, rotsched_core::RotationState)> = graphs
        .iter()
        .map(|(_, g)| (g, initial_state(g, &sched, &res).expect("schedulable")))
        .collect();
    // Warm-up: one untimed sequence per arm per subject.
    for (g, init) in &subjects {
        run_scalar_sequence(g, &sched, &res, init);
        run_packed_sequence(g, &sched, &res, init);
    }
    let mut scalar_ns = Vec::with_capacity(OBJECTIVE_OVERHEAD_SAMPLES);
    let mut packed_ns = Vec::with_capacity(OBJECTIVE_OVERHEAD_SAMPLES);
    for k in 0..OBJECTIVE_OVERHEAD_SAMPLES {
        let (g, init) = &subjects[k % subjects.len()];
        // Alternate which arm goes first so neither always runs with
        // the warmer caches the first arm leaves behind.
        if k % 2 == 0 {
            scalar_ns.push(time_one(|| run_scalar_sequence(g, &sched, &res, init)));
            packed_ns.push(time_one(|| run_packed_sequence(g, &sched, &res, init)));
        } else {
            packed_ns.push(time_one(|| run_packed_sequence(g, &sched, &res, init)));
            scalar_ns.push(time_one(|| run_scalar_sequence(g, &sched, &res, init)));
        }
    }
    let scalar_p50 = percentiles(&mut scalar_ns).p50;
    let packed_p50 = percentiles(&mut packed_ns).p50;
    ObjectiveOverheadReport {
        scalar_p50,
        packed_p50,
        overhead_pct: (packed_p50 as f64 - scalar_p50 as f64) / scalar_p50.max(1) as f64 * 100.0,
        samples: OBJECTIVE_OVERHEAD_SAMPLES,
    }
}

/// What the static-analysis arm measures.
struct AnalyzeArmReport {
    /// Full-analysis latency over the 64-node suite.
    suite: StepPercentiles,
    /// Full-analysis latency on the single large graph.
    large: StepPercentiles,
    /// Every repetition rendered byte-identical JSON.
    byte_stable: bool,
}

/// Times one full schedule-mode analysis — all four registered passes
/// plus the lint sweep — against `graphs` of `nodes` nodes each, and
/// byte-compares every repetition's JSON rendering against the first.
/// The schedule view comes from the list scheduler's initial schedule,
/// so the saturation and register-pressure passes run in their
/// schedule-aware mode (static-only analysis does strictly less work).
fn analyze_percentiles(nodes: usize, graphs: u64, byte_stable: &mut bool) -> StepPercentiles {
    use rotsched_sched::{verify_spec, verify_starts};
    use rotsched_verify::{analyze, ScheduleView};
    let res = ResourceSet::adders_multipliers(2, 2, false);
    let spec = verify_spec(&res);
    let sched = ListScheduler::default();
    // The generator's densities are per-pair, so edge counts grow
    // quadratically with n; real DFGs keep bounded fan-in. Scale the
    // densities to hold the 64-node suite's per-node degree constant,
    // so the large gate graph is a bigger instance of the same shape,
    // not a categorically denser one.
    let density_scale = (ANALYZE_SUITE_NODES as f64 / nodes as f64).min(1.0);
    let defaults = RandomDfgConfig::default();
    let mut ns = Vec::with_capacity(graphs as usize * ANALYZE_REPS);
    for seed in 0..graphs {
        let g = random_dfg(
            &RandomDfgConfig {
                nodes,
                forward_density: defaults.forward_density * density_scale,
                feedback_density: defaults.feedback_density * density_scale,
                ..defaults
            },
            seed,
        );
        let state = initial_state(&g, &sched, &res).expect("schedulable");
        let starts = verify_starts(&g, &state.schedule);
        let view = ScheduleView {
            starts: &starts,
            retiming: &state.retiming,
            kernel_length: state.length(&g),
        };
        // Untimed warm-up rep doubles as the byte-stability reference.
        let reference = analyze(&g, &spec, Some(&view)).render_json(&g);
        for _ in 0..ANALYZE_REPS {
            let start = Instant::now();
            let report = analyze(&g, &spec, Some(&view));
            ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            *byte_stable &= report.render_json(&g) == reference;
        }
    }
    percentiles(&mut ns)
}

/// Measures the static-analysis framework: per-run latency over the
/// 64-node suite and over the single 256-node gate graph. The solve
/// path itself pays nothing for any of this — analysis runs only
/// behind `--analyze` (`opts.analyze.then(..)` in the CLI), which the
/// sweep fingerprints above would expose if it ever changed.
fn analyze_arm() -> AnalyzeArmReport {
    let mut byte_stable = true;
    let suite = analyze_percentiles(ANALYZE_SUITE_NODES, ANALYZE_SUITE_GRAPHS, &mut byte_stable);
    let large = analyze_percentiles(ANALYZE_LARGE_NODES, 1, &mut byte_stable);
    AnalyzeArmReport {
        suite,
        large,
        byte_stable,
    }
}

/// Anytime-degradation mode: incumbent best length as a function of the
/// rotation budget, per benchmark. Rotation budgets stop the search at
/// exact down-rotation counts, so this table is fully deterministic and
/// directly reproducible.
///
/// One traced, unlimited run per benchmark replays the whole budget
/// column: `TaskTrace::best_at_rotation(k)` is exactly the best length
/// a fresh solve under `Budget::with_max_rotations(k)` returns (the
/// `trace_determinism` suite enforces the equality).
fn degradation_report(graphs: &[(&str, Dfg)]) {
    let res = ResourceSet::adders_multipliers(2, 1, false);
    let sched = ListScheduler::default();
    let config = HeuristicConfig {
        rotations_per_phase: 32,
        max_size: None,
        keep_best: 16,
        rounds: 1,
    };
    println!("anytime degradation (Heuristic 2, {}):\n", res.label());
    println!("| benchmark | budget (rotations) | best length |");
    println!("|---|---|---|");
    for (name, g) in graphs {
        // Capacity 0: the trajectory lives outside the event ring, so
        // the recorder stays allocation-light while staying exact.
        let mut driver =
            SearchDriver::incremental(g, &sched, &res).with_observer(TraceRecorder::new(0));
        let full = driver.heuristic2(&config).expect("schedulable");
        let trace = driver.observer.finish();
        // Powers of two up to the unlimited run's rotation count, plus
        // the exact endpoint.
        let mut budgets = vec![0_usize];
        let mut k = 1;
        while k < full.total_rotations {
            budgets.push(k);
            k *= 2;
        }
        budgets.push(full.total_rotations);
        for k in budgets {
            let best = trace
                .best_at_rotation(k as u64)
                .expect("the initial schedule is always admitted");
            let mark = if best == full.best_length {
                " (converged)"
            } else {
                ""
            };
            println!("| {name} | {k} | {best}{mark} |");
        }
    }
    println!("\nbudgets are exact down-rotation counts; every row is deterministic");
}

/// Smoke mode: one sequential sweep compared against a checked-in
/// baseline. Returns the process exit code.
fn check_against_baseline(graphs: &[(&str, Dfg)], baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let rows = sweep(graphs, 1);
    let fingerprint = rows_fingerprint(&rows);
    let mut failures = 0_u32;

    match extract_hex_field(&baseline, "rows_fingerprint") {
        Some(expected) if expected == fingerprint => {
            println!("rows fingerprint: {fingerprint:#018x} (matches baseline)");
        }
        Some(expected) => {
            eprintln!("FAIL: rows fingerprint {fingerprint:#018x} != baseline {expected:#018x}");
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no rows_fingerprint field");
            failures += 1;
        }
    }

    match extract_u32_array(&baseline, "schedule_lengths") {
        Some(expected) if expected.len() == rows.len() => {
            for (i, ((_, rs), want)) in rows.iter().zip(&expected).enumerate() {
                if rs > want {
                    eprintln!(
                        "FAIL: cell {i} ({}, {}): schedule length {rs} regressed past \
                         baseline {want}",
                        TABLE_3[i].benchmark, TABLE_3[i].adders
                    );
                    failures += 1;
                }
            }
            if failures == 0 {
                println!(
                    "schedule lengths: all {} cells at or below baseline",
                    rows.len()
                );
            }
        }
        Some(expected) => {
            eprintln!(
                "FAIL: baseline has {} schedule lengths, sweep produced {}",
                expected.len(),
                rows.len()
            );
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no schedule_lengths field");
            failures += 1;
        }
    }

    // Latency-shape gate: a steady-state SoA rotation step must keep
    // its tail bounded — a p99 blowing past 10x the median means a
    // hidden slow path (reallocation, cache rebuild) crept back into
    // the hot loop even if medians look fine.
    let soa = soa_steady_percentiles();
    let ratio = soa.p99 / soa.p50.max(1);
    if ratio > STEP_TAIL_RATIO {
        eprintln!(
            "FAIL: soa step p99 {} ns is {ratio}x its p50 {} ns (limit {STEP_TAIL_RATIO}x)",
            soa.p99, soa.p50
        );
        failures += 1;
    } else {
        println!(
            "soa step tail: p99 {} ns within {STEP_TAIL_RATIO}x of p50 {} ns",
            soa.p99, soa.p50
        );
    }

    // Batch-throughput floor: measured p50 must stay within a generous
    // divisor of the baseline's recorded rate. Catches order-of-
    // magnitude regressions in the batch core without tripping on
    // machine-to-machine variance.
    let batch = batch_throughput(&batch_corpus());
    let measured_sps = solves_per_sec(BATCH_ITEMS, batch.p50);
    match extract_f64_field(&baseline, "solves_per_sec_p50") {
        Some(recorded) if measured_sps >= recorded / BATCH_THROUGHPUT_DIVISOR => {
            println!(
                "batch throughput: {measured_sps:.0} solves/s at p50 \
                 (baseline {recorded:.0}, floor /{BATCH_THROUGHPUT_DIVISOR})"
            );
        }
        Some(recorded) => {
            eprintln!(
                "FAIL: batch throughput {measured_sps:.0} solves/s fell below \
                 baseline {recorded:.0} / {BATCH_THROUGHPUT_DIVISOR}"
            );
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no solves_per_sec_p50 field");
            failures += 1;
        }
    }

    // Driver-overhead band, two-sided and applied to both the fresh
    // measurement and the baseline's recorded number. Large positive
    // means the engine's dispatch got expensive; large negative (the
    // PR-6 drift: a recorded -43% against a real -2.65%) means the
    // hand-rolled replica went stale against the engine's hot path —
    // either way the overhead reading is fiction and must fail.
    let (driver, legacy) = driver_overhead(graphs);
    let measured_pct = (driver.p50 as f64 - legacy.p50 as f64) / legacy.p50.max(1) as f64 * 100.0;
    if measured_pct.abs() > DRIVER_OVERHEAD_BAND_PCT {
        eprintln!(
            "FAIL: driver overhead {measured_pct:+.2}% outside \
             ±{DRIVER_OVERHEAD_BAND_PCT}% (replica and engine hot paths diverged)"
        );
        failures += 1;
    } else {
        println!("driver overhead: {measured_pct:+.2}% within ±{DRIVER_OVERHEAD_BAND_PCT}%");
    }
    match extract_f64_field(&baseline, "overhead_pct") {
        Some(recorded) if recorded.abs() <= DRIVER_OVERHEAD_BAND_PCT => {
            println!(
                "baseline driver overhead: {recorded:+.2}% within \
                 ±{DRIVER_OVERHEAD_BAND_PCT}%"
            );
        }
        Some(recorded) => {
            eprintln!(
                "FAIL: baseline records driver overhead {recorded:+.2}% outside \
                 ±{DRIVER_OVERHEAD_BAND_PCT}% — stale baseline, regenerate it"
            );
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no overhead_pct field");
            failures += 1;
        }
    }

    // Serve gates: the warm path must actually be warm (no solver, a
    // real multiple faster than solving), an identical burst must
    // collapse to one solve, and every response must be byte-stable.
    let serve = serve_report();
    let speedup = serve.cold.p50 / serve.warm.p50.max(1);
    if speedup < SERVE_WARM_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: serve warm hit p50 {} ns is only {speedup}x faster than cold \
             p50 {} ns (floor {SERVE_WARM_SPEEDUP_FLOOR}x)",
            serve.warm.p50, serve.cold.p50
        );
        failures += 1;
    } else {
        println!("serve warm speedup: {speedup}x at p50 (floor {SERVE_WARM_SPEEDUP_FLOOR}x)");
    }
    if serve.warm_extra_invocations != 0 {
        eprintln!(
            "FAIL: {} solver invocation(s) during warm-hit sampling — the warm \
             path must never solve",
            serve.warm_extra_invocations
        );
        failures += 1;
    } else {
        println!(
            "serve warm path: 0 solver invocations across {} hits",
            serve.warm.samples
        );
    }
    if serve.burst_solves == 1 {
        println!(
            "serve coalescing: {SERVE_BURST} identical requests -> 1 solve, \
             {} followers",
            serve.burst_followers
        );
    } else {
        eprintln!(
            "FAIL: {SERVE_BURST} identical concurrent requests took {} solves \
             (single-flight must collapse them to 1)",
            serve.burst_solves
        );
        failures += 1;
    }
    if serve.deterministic {
        println!("serve determinism: byte-identical responses across services and threads");
    } else {
        eprintln!("FAIL: serve responses diverged across cache states or threads");
        failures += 1;
    }

    // Fault-plane gate, one-sided: the default NoopFaults warm path
    // may not cost more than the limit over a quiet-armed service
    // (which does strictly more work). Applied to the fresh
    // measurement AND the baseline's recorded number, so a stale
    // baseline can't hide a regression.
    let fault = fault_overhead();
    if fault.overhead_pct <= FAULT_OVERHEAD_LIMIT_PCT {
        println!(
            "fault-plane overhead: {:+.2}% within {FAULT_OVERHEAD_LIMIT_PCT}% \
             (noop p50 {} ns, quiet-armed p50 {} ns)",
            fault.overhead_pct, fault.noop_p50, fault.armed_p50
        );
    } else {
        eprintln!(
            "FAIL: NoopFaults warm path is {:+.2}% slower than a quiet-armed \
             service (limit {FAULT_OVERHEAD_LIMIT_PCT}%) — the zero-cost default broke",
            fault.overhead_pct
        );
        failures += 1;
    }
    match extract_f64_field(&baseline, "fault_overhead_pct") {
        Some(recorded) if recorded <= FAULT_OVERHEAD_LIMIT_PCT => {
            println!(
                "baseline fault-plane overhead: {recorded:+.2}% within \
                 {FAULT_OVERHEAD_LIMIT_PCT}%"
            );
        }
        Some(recorded) => {
            eprintln!(
                "FAIL: baseline records fault-plane overhead {recorded:+.2}% past \
                 {FAULT_OVERHEAD_LIMIT_PCT}% — stale baseline, regenerate it"
            );
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no fault_overhead_pct field");
            failures += 1;
        }
    }

    // Objective-core gate, one-sided like the fault plane's: the
    // packed-score default path may not cost more than the limit over
    // the scalar-`u32` replica of the pre-objective best set. Applied
    // to the fresh measurement AND the baseline's recorded number.
    let objective = objective_overhead(graphs);
    if objective.overhead_pct <= OBJECTIVE_OVERHEAD_LIMIT_PCT {
        println!(
            "objective-core overhead: {:+.2}% within {OBJECTIVE_OVERHEAD_LIMIT_PCT}% \
             (scalar p50 {} ns, packed p50 {} ns)",
            objective.overhead_pct, objective.scalar_p50, objective.packed_p50
        );
    } else {
        eprintln!(
            "FAIL: the packed-score default path is {:+.2}% slower than the scalar \
             replica (limit {OBJECTIVE_OVERHEAD_LIMIT_PCT}%) — the zero-cost objective broke",
            objective.overhead_pct
        );
        failures += 1;
    }
    match extract_f64_field(&baseline, "objective_overhead_pct") {
        Some(recorded) if recorded <= OBJECTIVE_OVERHEAD_LIMIT_PCT => {
            println!(
                "baseline objective-core overhead: {recorded:+.2}% within \
                 {OBJECTIVE_OVERHEAD_LIMIT_PCT}%"
            );
        }
        Some(recorded) => {
            eprintln!(
                "FAIL: baseline records objective-core overhead {recorded:+.2}% past \
                 {OBJECTIVE_OVERHEAD_LIMIT_PCT}% — stale baseline, regenerate it"
            );
            failures += 1;
        }
        None => {
            eprintln!("FAIL: baseline has no objective_overhead_pct field");
            failures += 1;
        }
    }

    // Analysis gates: one full schedule-mode analysis of the 256-node
    // graph must stay under its latency budget, and every repetition
    // must render byte-identical JSON. The solve path itself is gated
    // separately (fingerprint + lengths above): analysis runs only
    // behind `--analyze`, so those gates would expose any cost leaking
    // into a plain solve.
    let analyze = analyze_arm();
    if analyze.large.p50 <= ANALYZE_LARGE_LIMIT_NS {
        println!(
            "analysis latency: {ANALYZE_LARGE_NODES}-node full analysis p50 {} ns \
             within {ANALYZE_LARGE_LIMIT_NS} ns (suite p50 {} ns, p99 {} ns)",
            analyze.large.p50, analyze.suite.p50, analyze.suite.p99
        );
    } else {
        eprintln!(
            "FAIL: {ANALYZE_LARGE_NODES}-node full analysis p50 {} ns over the \
             {ANALYZE_LARGE_LIMIT_NS} ns budget",
            analyze.large.p50
        );
        failures += 1;
    }
    if analyze.byte_stable {
        println!(
            "analysis determinism: byte-identical reports across {} runs",
            analyze.suite.samples + analyze.large.samples
        );
    } else {
        eprintln!("FAIL: analysis reports diverged between repetitions");
        failures += 1;
    }

    if failures == 0 {
        println!("check passed");
        0
    } else {
        eprintln!("check failed with {failures} regression(s)");
        1
    }
}

/// Certification mode: solve every Table-3 cell and have the
/// independent verifier re-prove each winning kernel — and the
/// solver's own quality verdict — legal. This is what stands between
/// "the perf numbers regressed nowhere" and "the perf numbers are
/// backed by schedules that are actually correct".
fn certify_sweep(graphs: &[(&str, Dfg)]) -> i32 {
    use rotsched_core::SolveQuality;
    use rotsched_sched::{verify_spec, verify_starts};
    use rotsched_verify::{certify_claim, Claim};

    let mut failures = 0_u32;
    for row in TABLE_3 {
        let g = &graphs
            .iter()
            .find(|(name, _)| *name == row.benchmark)
            .expect("benchmark exists")
            .1;
        let resources = ResourceSet::adders_multipliers(row.adders, row.multipliers, row.pipelined);
        let scheduler = RotationScheduler::new(g, resources.clone());
        let solved = scheduler.solve().expect("benchmark solves");
        let kernel = scheduler
            .loop_schedule(&solved.state)
            .expect("winner expands");
        let spec = verify_spec(&resources);
        let starts = verify_starts(g, kernel.schedule());
        let claim = Claim {
            kernel_length: kernel.kernel_length(),
            depth: Some(kernel.retiming().depth()),
            optimal: matches!(solved.quality, SolveQuality::Optimal),
            registers: Some(rotsched_core::objective::static_registers(
                g,
                kernel.retiming(),
            )),
            code_size: Some(rotsched_core::objective::code_size(g, kernel.retiming())),
        };
        match certify_claim(g, &spec, Some(kernel.retiming()), &starts, &claim) {
            Ok(cert) => println!(
                "  ok  {:<24} {:<6} {}",
                row.benchmark,
                resources.label(),
                cert.summary()
            ),
            Err(bad) => {
                failures += 1;
                eprintln!(
                    "FAIL {:<24} {:<6} rejected by the verifier:",
                    row.benchmark,
                    resources.label()
                );
                for d in &bad {
                    eprintln!("       {}", d.render_text(g));
                }
            }
        }
    }
    if failures == 0 {
        println!("certified: all {} Table-3 cells", TABLE_3.len());
        0
    } else {
        eprintln!("certification failed on {failures} cell(s)");
        1
    }
}

/// Pulls `"name": "0x..."` out of a baseline report without a JSON
/// parser (the workspace is dependency-free).
fn extract_hex_field(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\": \"0x");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find('"')?;
    u64::from_str_radix(&rest[..end], 16).ok()
}

/// Pulls a bare numeric `"name": -2.65` (or integer) field out of a
/// baseline report.
fn extract_f64_field(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"name": [1, 2, ...]` out of a baseline report.
fn extract_u32_array(json: &str, name: &str) -> Option<Vec<u32>> {
    let key = format!("\"{name}\": [");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find(']')?;
    rest[..end]
        .split(',')
        .map(|s| s.trim().parse::<u32>().ok())
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    hardware: usize,
    cells: usize,
    reps: usize,
    results: &[(usize, usize, u64, u64, u64)],
    seq_median: u64,
    deterministic: bool,
    lengths: &[u32],
    soa: &StepPercentiles,
    ctx: &StepPercentiles,
    scratch: &StepPercentiles,
    batch: &StepPercentiles,
    driver: &StepPercentiles,
    legacy: &StepPercentiles,
    serve: &ServeReport,
    fault: &FaultOverheadReport,
    objective: &ObjectiveOverheadReport,
    analyze: &AnalyzeArmReport,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"table3_sweep\",\n");
    s.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    s.push_str(&format!("  \"cells\": {cells},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!(
        "  \"deterministic_across_jobs\": {deterministic},\n"
    ));
    let lengths_csv = lengths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!("  \"schedule_lengths\": [{lengths_csv}],\n"));
    s.push_str("  \"rotation_step_ns\": {\n");
    for (label, p) in [("soa", soa), ("context", ctx), ("scratch", scratch)] {
        s.push_str(&format!(
            "    \"{label}\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"samples\": {}}},\n",
            p.p50, p.p90, p.p99, p.samples
        ));
    }
    s.push_str(&format!(
        "    \"speedup_p50\": {:.2},\n",
        scratch.p50 as f64 / ctx.p50.max(1) as f64
    ));
    s.push_str(&format!(
        "    \"soa_speedup_p50_vs_context\": {:.2},\n",
        ctx.p50 as f64 / soa.p50.max(1) as f64
    ));
    s.push_str(&format!(
        "    \"soa_tail_p99_over_p50\": {:.2}\n",
        soa.p99 as f64 / soa.p50.max(1) as f64
    ));
    s.push_str("  },\n");
    s.push_str("  \"batch_throughput\": {\n");
    s.push_str(&format!(
        "    \"items\": {BATCH_ITEMS}, \"unique\": {BATCH_UNIQUE}, \"reps\": {BATCH_REPS},\n"
    ));
    s.push_str(&format!(
        "    \"wall_ns_p50\": {}, \"wall_ns_p99\": {},\n",
        batch.p50, batch.p99
    ));
    s.push_str(&format!(
        "    \"solves_per_sec_p50\": {:.0}, \"solves_per_sec_p99\": {:.0}\n",
        solves_per_sec(BATCH_ITEMS, batch.p50),
        solves_per_sec(BATCH_ITEMS, batch.p99)
    ));
    s.push_str("  },\n");
    s.push_str("  \"driver_overhead\": {\n");
    s.push_str(&format!(
        "    \"driver_seq_ns_p50\": {}, \"legacy_seq_ns_p50\": {}, \"samples\": {},\n",
        driver.p50, legacy.p50, driver.samples
    ));
    s.push_str(&format!(
        "    \"overhead_pct\": {:.2}\n",
        (driver.p50 as f64 - legacy.p50 as f64) / legacy.p50.max(1) as f64 * 100.0
    ));
    s.push_str("  },\n");
    s.push_str("  \"serve\": {\n");
    s.push_str(&format!(
        "    \"unique\": {SERVE_UNIQUE}, \"seed\": {SERVE_SEED},\n"
    ));
    s.push_str(&format!(
        "    \"cold_solve_ns_p50\": {}, \"cold_solve_ns_p99\": {},\n",
        serve.cold.p50, serve.cold.p99
    ));
    s.push_str(&format!(
        "    \"warm_hit_ns_p50\": {}, \"warm_hit_ns_p99\": {}, \"warm_samples\": {},\n",
        serve.warm.p50, serve.warm.p99, serve.warm.samples
    ));
    s.push_str(&format!(
        "    \"warm_speedup_p50\": {:.1}, \"warm_extra_invocations\": {}, \
         \"warm_hits\": {},\n",
        serve.cold.p50 as f64 / serve.warm.p50.max(1) as f64,
        serve.warm_extra_invocations,
        serve.warm_hits
    ));
    s.push_str(&format!(
        "    \"coalescing\": {{\"burst\": {SERVE_BURST}, \"solves\": {}, \
         \"followers\": {}, \"dedup_ratio\": {:.2}}},\n",
        serve.burst_solves,
        serve.burst_followers,
        SERVE_BURST as f64 / serve.burst_solves.max(1) as f64
    ));
    s.push_str(&format!(
        "    \"sustained\": {{\"threads\": {SERVE_SUSTAIN_THREADS}, \
         \"requests\": {}, \"requests_per_sec\": {:.0}}},\n",
        SERVE_SUSTAIN_THREADS * SERVE_SUSTAIN_REQUESTS,
        serve.sustained_rps
    ));
    s.push_str(&format!("    \"deterministic\": {}\n", serve.deterministic));
    s.push_str("  },\n");
    s.push_str("  \"fault_overhead\": {\n");
    s.push_str(&format!(
        "    \"noop_warm_ns_p50\": {}, \"armed_quiet_warm_ns_p50\": {}, \
         \"samples\": {},\n",
        fault.noop_p50, fault.armed_p50, fault.samples
    ));
    s.push_str(&format!(
        "    \"fault_overhead_pct\": {:.2}, \"limit_pct\": {FAULT_OVERHEAD_LIMIT_PCT}\n",
        fault.overhead_pct
    ));
    s.push_str("  },\n");
    s.push_str("  \"objective_overhead\": {\n");
    s.push_str(&format!(
        "    \"scalar_seq_ns_p50\": {}, \"packed_seq_ns_p50\": {}, \"samples\": {},\n",
        objective.scalar_p50, objective.packed_p50, objective.samples
    ));
    s.push_str(&format!(
        "    \"objective_overhead_pct\": {:.2}, \"limit_pct\": {OBJECTIVE_OVERHEAD_LIMIT_PCT}\n",
        objective.overhead_pct
    ));
    s.push_str("  },\n");
    s.push_str("  \"analyze\": {\n");
    s.push_str(&format!(
        "    \"suite_nodes\": {ANALYZE_SUITE_NODES}, \"suite_graphs\": {ANALYZE_SUITE_GRAPHS},\n"
    ));
    s.push_str(&format!(
        "    \"suite_ns_p50\": {}, \"suite_ns_p90\": {}, \"suite_ns_p99\": {}, \
         \"suite_samples\": {},\n",
        analyze.suite.p50, analyze.suite.p90, analyze.suite.p99, analyze.suite.samples
    ));
    s.push_str(&format!(
        "    \"large_nodes\": {ANALYZE_LARGE_NODES}, \"large_ns_p50\": {}, \
         \"large_limit_ns\": {ANALYZE_LARGE_LIMIT_NS},\n",
        analyze.large.p50
    ));
    s.push_str(&format!("    \"byte_stable\": {}\n", analyze.byte_stable));
    s.push_str("  },\n");
    s.push_str("  \"results\": [\n");
    for (k, (jobs, effective, median, min, fingerprint)) in results.iter().enumerate() {
        let speedup = seq_median as f64 / *median as f64;
        s.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"jobs_effective\": {effective}, \
             \"wall_ns_median\": {median}, \"wall_ns_min\": {min}, \
             \"speedup_vs_sequential\": {speedup:.3}, \
             \"rows_fingerprint\": \"{fingerprint:#018x}\"}}{}\n",
            if k + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn options_from_args() -> Options {
    let mut opts = Options {
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ROTATION.json").to_string(),
        check: None,
        reps: 3,
        degradation: false,
        certify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            if let Some(p) = args.next() {
                opts.out = p;
            }
        } else if let Some(p) = arg.strip_prefix("--out=") {
            opts.out = p.to_string();
        } else if arg == "--check" {
            if let Some(p) = args.next() {
                opts.check = Some(p);
            }
        } else if let Some(p) = arg.strip_prefix("--check=") {
            opts.check = Some(p.to_string());
        } else if arg == "--reps" {
            if let Some(n) = args.next() {
                opts.reps = n.parse().unwrap_or(opts.reps).max(1);
            }
        } else if let Some(n) = arg.strip_prefix("--reps=") {
            opts.reps = n.parse().unwrap_or(opts.reps).max(1);
        } else if arg == "--degradation" {
            opts.degradation = true;
        } else if arg == "--certify" {
            opts.certify = true;
        }
    }
    opts
}
