//! Wall-clock performance report for the parallel portfolio engine.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin perf_report [-- --out PATH]
//! ```
//!
//! Times the full Table-3 sweep (every benchmark × resource-config
//! cell) sequentially and under several `--jobs` values, checks that
//! every jobs value yields byte-identical rows, and writes a
//! machine-readable JSON report (default: `BENCH_ROTATION.json` at the
//! repository root).

use std::time::Instant;

use rotsched_baselines::TABLE_3;
use rotsched_bench::{format_row, measure_rs};
use rotsched_benchmarks::{allpole, biquad, diffeq, lattice4, TimingModel};
use rotsched_core::parallel_indexed;
use rotsched_dfg::rng::Fnv64;
use rotsched_dfg::Dfg;

const JOBS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn main() {
    let out_path = out_path_from_args();
    let t = TimingModel::paper();
    let graphs: Vec<(&str, Dfg)> = vec![
        ("Differential Equation", diffeq(&t)),
        ("4-stage Lattice Filter", lattice4(&t)),
        ("All-pole Lattice Filter", allpole(&t)),
        ("2-cascaded Biquad Filter", biquad(&t)),
    ];
    let cells = TABLE_3.len();
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!("perf_report: table3 sweep ({cells} cells), {REPS} reps per jobs value");
    println!("hardware threads: {hardware}\n");

    // One untimed warm-up pass so allocator and page-cache effects hit
    // every configuration equally.
    let _ = sweep(&graphs, 1);

    let mut results = Vec::new();
    for jobs in JOBS {
        let mut wall_ns = Vec::new();
        let mut fingerprint = 0_u64;
        for _ in 0..REPS {
            let start = Instant::now();
            let rows = sweep(&graphs, jobs);
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            wall_ns.push(elapsed);
            fingerprint = rows_fingerprint(&rows);
        }
        wall_ns.sort_unstable();
        let median = wall_ns[wall_ns.len() / 2];
        let min = wall_ns[0];
        println!(
            "jobs {jobs}: median {:.1} ms, min {:.1} ms (fingerprint {fingerprint:#018x})",
            median as f64 / 1e6,
            min as f64 / 1e6
        );
        results.push((jobs, median, min, fingerprint));
    }

    let seq_median = results[0].1;
    let deterministic = results.iter().all(|r| r.3 == results[0].3);
    assert!(
        deterministic,
        "table3 rows must be byte-identical for every jobs value"
    );
    println!("\nrows byte-identical across all jobs values: yes");
    for (jobs, median, _, _) in &results {
        println!(
            "speedup vs sequential at jobs {jobs}: {:.2}x",
            seq_median as f64 / *median as f64
        );
    }

    let json = render_json(hardware, cells, &results, seq_median, deterministic);
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the full Table-3 sweep and returns the formatted rows.
fn sweep(graphs: &[(&str, Dfg)], jobs: usize) -> Vec<String> {
    parallel_indexed(jobs, TABLE_3.len(), |i| {
        let row = &TABLE_3[i];
        let g = &graphs
            .iter()
            .find(|(name, _)| *name == row.benchmark)
            .expect("benchmark exists")
            .1;
        let measured = measure_rs(g, row.adders, row.multipliers, row.pipelined);
        format_row(&measured, row.lb, row.rs, row.rs_depth)
    })
}

fn rows_fingerprint(rows: &[String]) -> u64 {
    let mut h = Fnv64::new();
    for row in rows {
        for b in row.bytes() {
            h.write_u8(b);
        }
        h.write_u8(b'\n');
    }
    h.finish()
}

fn render_json(
    hardware: usize,
    cells: usize,
    results: &[(usize, u64, u64, u64)],
    seq_median: u64,
    deterministic: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"table3_sweep\",\n");
    s.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    s.push_str(&format!("  \"cells\": {cells},\n"));
    s.push_str(&format!("  \"reps\": {REPS},\n"));
    s.push_str(&format!(
        "  \"deterministic_across_jobs\": {deterministic},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (k, (jobs, median, min, fingerprint)) in results.iter().enumerate() {
        let speedup = seq_median as f64 / *median as f64;
        s.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"wall_ns_median\": {median}, \"wall_ns_min\": {min}, \
             \"speedup_vs_sequential\": {speedup:.3}, \
             \"rows_fingerprint\": \"{fingerprint:#018x}\"}}{}\n",
            if k + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn out_path_from_args() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        }
        if let Some(p) = arg.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    // crates/bench -> repository root.
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ROTATION.json").to_string()
}
