//! Regenerates the paper's worked figures as text.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin figures
//! ```
//!
//! * **Figure 2** — two (plus one) down-rotations of size 1 on the
//!   unit-time diffeq with 1 multiplier and 1 adder: 8 → 7 → … → 6.
//! * **Figure 3** — the corresponding rotation functions.
//! * **Figure 4** — the expanded loop: prologue / kernel / epilogue.
//! * **Figure 5** — depth of the accumulated rotation function after 7
//!   size-2 rotations vs. the minimized realizing retiming.
//! * **Figures 6–8** — multi-cycle multipliers: rotations lengthen the
//!   unwrapped schedule, wrapping recovers it.

use rotsched_benchmarks::{diffeq, TimingModel};
use rotsched_core::depth::{accumulated_depth, minimize_depth};
use rotsched_core::RotationScheduler;
use rotsched_sched::{minimal_wrap, ResourceSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure_2_3_4()?;
    figure_5()?;
    figures_6_to_8()?;
    Ok(())
}

fn figure_2_3_4() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figures 2-4: size-1 rotations, unit-time diffeq, 1M + 1A ===\n");
    let g = diffeq(&TimingModel::unit());
    let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(1, 1, false));
    let table = |state: &rotsched_core::RotationState| {
        state.schedule.format_table(&g, &["Mult", "Adder"], |v| {
            usize::from(!g.node(v).op().is_multiplicative())
        })
    };
    let mut state = rs.initial()?;
    println!(
        "(a) optimal DAG schedule, length {}:\n{}",
        state.length(&g),
        table(&state)
    );
    for step in 1..=3 {
        rs.down_rotate(&mut state, 1)?;
        println!(
            "after rotation {step}: length {}, rotation function {} (Figure 3)\n{}",
            state.length(&g),
            state.retiming,
            table(&state)
        );
        if state.length(&g) == 6 {
            break;
        }
    }
    println!("Figure 4: the expanded loop over 4 iterations:");
    let ls = rs.loop_schedule(&state)?;
    println!("{}", ls.format_expansion(&g, 4));
    Ok(())
}

fn figure_5() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 5: depth reduction after 7 rotations of size 2 ===\n");
    let g = diffeq(&TimingModel::unit());
    let rs = RotationScheduler::new(&g, ResourceSet::adders_multipliers(1, 1, false));
    let mut state = rs.initial()?;
    for _ in 0..7 {
        rs.down_rotate(&mut state, 2)?;
    }
    let min = minimize_depth(&g, &state.schedule)?;
    println!(
        "schedule length {}; accumulated R = {} (depth {})",
        state.length(&g),
        state.retiming,
        accumulated_depth(&state)
    );
    println!("minimized r = {} (depth {})\n", min, min.depth());
    Ok(())
}

fn figures_6_to_8() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figures 6-8: multi-cycle multipliers and wrapping (1M + 1A) ===\n");
    let g = diffeq(&TimingModel::paper());
    let res = ResourceSet::adders_multipliers(1, 1, false);
    let rs = RotationScheduler::new(&g, res.clone());
    let mut state = rs.initial()?;
    println!("initial: unwrapped length {}", state.length(&g));
    for step in 1..=8 {
        rs.down_rotate(&mut state, 1)?;
        let w = minimal_wrap(&g, Some(&state.retiming), &state.schedule, &res)?;
        println!(
            "rotation {step}: unwrapped {:>2}, wrapped {:>2}{}",
            state.length(&g),
            w.kernel_length,
            if w.has_wraps() {
                format!(
                    " (wrapped tails: {})",
                    w.wrapped_nodes
                        .iter()
                        .map(|&v| g.node(v).name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            } else {
                String::new()
            }
        );
    }
    let w = minimal_wrap(&g, Some(&state.retiming), &state.schedule, &res)?;
    println!(
        "\nfinal wrapped kernel of length {} (tails marked '):\n{}",
        w.kernel_length,
        w.schedule.format_table(&g, &["Mult", "Adder"], |v| {
            usize::from(!g.node(v).op().is_multiplicative())
        })
    );
    Ok(())
}
