//! Regenerates **Table 1**: characteristics of the benchmarks.
//!
//! ```text
//! cargo run -p rotsched-bench --bin table1
//! ```

use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_dfg::analysis::{critical_path_length, iteration_bound};
use rotsched_dfg::OpKind;

fn main() {
    println!("Table 1: Characteristics of the benchmarks");
    println!("(add = 1 CS, mult = 2 CS — the paper's 50 ns control-step model)\n");
    println!(
        "{:<28} {:>6} {:>6} {:>4} {:>4}",
        "Benchmark", "#Mults", "#Adds", "CP", "IB"
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        let cp = critical_path_length(&g, None).expect("valid benchmark");
        let ib = iteration_bound(&g).expect("valid benchmark").unwrap_or(0);
        println!("{name:<28} {mults:>6} {adds:>6} {cp:>4} {ib:>4}");
        let _ = OpKind::Add;
    }
    println!("\nPaper values:            Mults  Adds   CP   IB");
    println!("Elliptic                     8    26   17   16");
    println!("Differential Equation        6     5    7    6");
    println!("4-stage Lattice             15    11   10    2");
    println!("All-pole Lattice             4    11   16    8");
    println!("2-cascaded Biquad            8     8    7    4");
}
