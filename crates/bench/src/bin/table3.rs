//! Regenerates **Table 3**: results for the other four benchmarks.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin table3
//! ```

use rotsched_baselines::TABLE_3;
use rotsched_bench::{format_row, measure_rs};
use rotsched_benchmarks::{allpole, biquad, diffeq, lattice4, TimingModel};
use rotsched_dfg::Dfg;

fn main() {
    let t = TimingModel::paper();
    let graphs: Vec<(&str, Dfg)> = vec![
        ("Differential Equation", diffeq(&t)),
        ("4-stage Lattice Filter", lattice4(&t)),
        ("All-pole Lattice Filter", allpole(&t)),
        ("2-cascaded Biquad Filter", biquad(&t)),
    ];

    println!("Table 3: Results for the other four benchmarks");
    println!("(measured with this implementation vs. the paper's published numbers)\n");
    let mut current = "";
    for row in TABLE_3 {
        if row.benchmark != current {
            current = row.benchmark;
            println!("\n== {current} ==");
        }
        let g = &graphs
            .iter()
            .find(|(name, _)| *name == row.benchmark)
            .expect("benchmark exists")
            .1;
        let measured = measure_rs(g, row.adders, row.multipliers, row.pipelined);
        println!("{}", format_row(&measured, row.lb, row.rs, row.rs_depth));
    }
}
