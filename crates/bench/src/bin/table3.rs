//! Regenerates **Table 3**: results for the other four benchmarks.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin table3 [-- --jobs N]
//! ```
//!
//! With `--jobs N` the benchmark × resource-configuration cells are
//! measured on `N` worker threads; rows are printed in table order
//! either way, so the output is identical for every jobs value.

use rotsched_baselines::TABLE_3;
use rotsched_bench::{format_row, jobs_from_args, measure_rs};
use rotsched_benchmarks::{allpole, biquad, diffeq, lattice4, TimingModel};
use rotsched_core::parallel_indexed;
use rotsched_dfg::Dfg;

fn main() {
    let jobs = jobs_from_args();
    let t = TimingModel::paper();
    let graphs: Vec<(&str, Dfg)> = vec![
        ("Differential Equation", diffeq(&t)),
        ("4-stage Lattice Filter", lattice4(&t)),
        ("All-pole Lattice Filter", allpole(&t)),
        ("2-cascaded Biquad Filter", biquad(&t)),
    ];

    println!("Table 3: Results for the other four benchmarks");
    println!("(measured with this implementation vs. the paper's published numbers)\n");
    let measured = parallel_indexed(jobs, TABLE_3.len(), |i| {
        let row = &TABLE_3[i];
        let g = &graphs
            .iter()
            .find(|(name, _)| *name == row.benchmark)
            .expect("benchmark exists")
            .1;
        measure_rs(g, row.adders, row.multipliers, row.pipelined)
    });
    let mut current = "";
    for (row, cell) in TABLE_3.iter().zip(&measured) {
        if row.benchmark != current {
            current = row.benchmark;
            println!("\n== {current} ==");
        }
        println!("{}", format_row(cell, row.lb, row.rs, row.rs_depth));
    }
}
