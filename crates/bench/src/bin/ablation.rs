//! Ablation study over the rotation heuristics' knobs: priority policy,
//! heuristic variant, and sweep rounds.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin ablation [-- --jobs N]
//! ```
//!
//! With `--jobs N` the per-benchmark rows of each study run on `N`
//! worker threads; rows print in a fixed order for every jobs value.

use rotsched_baselines::lower_bound;
use rotsched_bench::jobs_from_args;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, parallel_indexed, HeuristicConfig};
use rotsched_dfg::Dfg;
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

fn main() {
    let jobs = jobs_from_args();
    for (adders, mults, pipelined) in [(2, 2, false), (6, 8, true)] {
        println!(
            "\n#### resource configuration {}A {}M{} ####",
            adders,
            mults,
            if pipelined { "p" } else { "" }
        );
        run(
            &ResourceSet::adders_multipliers(adders, mults, pipelined),
            jobs,
        );
    }
}

fn run(res: &ResourceSet, jobs: usize) {
    let policies = [
        ("descendants", PriorityPolicy::DescendantCount),
        ("path-height", PriorityPolicy::PathHeight),
        ("mobility", PriorityPolicy::Mobility),
        ("input-order", PriorityPolicy::InputOrder),
    ];
    let benchmarks = all_benchmarks(&TimingModel::paper());
    let rows = |f: &(dyn Fn(&str, &Dfg) -> String + Sync)| {
        parallel_indexed(jobs, benchmarks.len(), |i| {
            let (name, g) = &benchmarks[i];
            f(name, g)
        })
    };

    println!("== Priority-policy ablation (Heuristic 2, 1 round) ==");
    println!(
        "{:<28} {:>3} {:>12} {:>12} {:>10} {:>12}",
        "Benchmark", "LB", "descendants", "path-height", "mobility", "input-order"
    );
    for row in rows(&|name, g| {
        let lb = lower_bound(g, res).expect("valid");
        let mut cells = Vec::new();
        for (_, policy) in policies {
            let cfg = HeuristicConfig {
                rotations_per_phase: 32,
                max_size: None,
                keep_best: 4,
                rounds: 1,
            };
            let out = heuristic2(g, &ListScheduler::new(policy), res, &cfg).expect("schedulable");
            cells.push(out.best_length);
        }
        format!(
            "{:<28} {:>3} {:>12} {:>12} {:>10} {:>12}",
            name, lb, cells[0], cells[1], cells[2], cells[3]
        )
    }) {
        println!("{row}");
    }

    println!("\n== Heuristic 1 vs Heuristic 2 (descendants, 1 round) ==");
    println!(
        "{:<28} {:>3} {:>4} {:>4} | rotations H1 / H2",
        "Benchmark", "LB", "H1", "H2"
    );
    for row in rows(&|name, g| {
        let lb = lower_bound(g, res).expect("valid");
        let cfg = HeuristicConfig {
            rotations_per_phase: 32,
            max_size: None,
            keep_best: 4,
            rounds: 1,
        };
        let sched = ListScheduler::default();
        let h1 = heuristic1(g, &sched, res, &cfg).expect("schedulable");
        let h2 = heuristic2(g, &sched, res, &cfg).expect("schedulable");
        format!(
            "{:<28} {:>3} {:>4} {:>4} | {:>5} / {:>5}",
            name, lb, h1.best_length, h2.best_length, h1.total_rotations, h2.total_rotations
        )
    }) {
        println!("{row}");
    }

    println!("\n== Rounds ablation (Heuristic 2, descendants) ==");
    println!(
        "{:<28} {:>3} {:>4} {:>4} {:>4} {:>4}",
        "Benchmark", "LB", "r1", "r2", "r4", "r8"
    );
    for row in rows(&|name, g| {
        let lb = lower_bound(g, res).expect("valid");
        let mut cells = Vec::new();
        for rounds in [1, 2, 4, 8] {
            let cfg = HeuristicConfig {
                rotations_per_phase: 32,
                max_size: None,
                keep_best: 4,
                rounds,
            };
            let out = heuristic2(g, &ListScheduler::default(), res, &cfg).expect("schedulable");
            cells.push(out.best_length);
        }
        format!(
            "{:<28} {:>3} {:>4} {:>4} {:>4} {:>4}",
            name, lb, cells[0], cells[1], cells[2], cells[3]
        )
    }) {
        println!("{row}");
    }
}
