//! Ablation study over the rotation heuristics' knobs: priority policy,
//! heuristic variant, and sweep rounds.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin ablation
//! ```

use rotsched_baselines::lower_bound;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{heuristic1, heuristic2, HeuristicConfig};
use rotsched_sched::{ListScheduler, PriorityPolicy, ResourceSet};

fn main() {
    for (adders, mults, pipelined) in [(2, 2, false), (6, 8, true)] {
        println!("\n#### resource configuration {}A {}M{} ####",
                 adders, mults, if pipelined { "p" } else { "" });
        run(ResourceSet::adders_multipliers(adders, mults, pipelined));
    }
}

fn run(res: ResourceSet) {
    let policies = [
        ("descendants", PriorityPolicy::DescendantCount),
        ("path-height", PriorityPolicy::PathHeight),
        ("mobility", PriorityPolicy::Mobility),
        ("input-order", PriorityPolicy::InputOrder),
    ];

    println!("== Priority-policy ablation (Heuristic 2, 1 round) ==");
    println!(
        "{:<28} {:>3} {:>12} {:>12} {:>10} {:>12}",
        "Benchmark", "LB", "descendants", "path-height", "mobility", "input-order"
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let lb = lower_bound(&g, &res).expect("valid");
        let mut cells = Vec::new();
        for (_, policy) in policies {
            let cfg = HeuristicConfig {
                rotations_per_phase: 32,
                max_size: None,
                keep_best: 4,
                rounds: 1,
            };
            let out = heuristic2(&g, &ListScheduler::new(policy), &res, &cfg)
                .expect("schedulable");
            cells.push(out.best_length);
        }
        println!(
            "{:<28} {:>3} {:>12} {:>12} {:>10} {:>12}",
            name, lb, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\n== Heuristic 1 vs Heuristic 2 (descendants, 1 round) ==");
    println!(
        "{:<28} {:>3} {:>4} {:>4} | rotations H1 / H2",
        "Benchmark", "LB", "H1", "H2"
    );
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let lb = lower_bound(&g, &res).expect("valid");
        let cfg = HeuristicConfig {
            rotations_per_phase: 32,
            max_size: None,
            keep_best: 4,
            rounds: 1,
        };
        let sched = ListScheduler::default();
        let h1 = heuristic1(&g, &sched, &res, &cfg).expect("schedulable");
        let h2 = heuristic2(&g, &sched, &res, &cfg).expect("schedulable");
        println!(
            "{:<28} {:>3} {:>4} {:>4} | {:>5} / {:>5}",
            name, lb, h1.best_length, h2.best_length, h1.total_rotations, h2.total_rotations
        );
    }

    println!("\n== Rounds ablation (Heuristic 2, descendants) ==");
    println!("{:<28} {:>3} {:>4} {:>4} {:>4} {:>4}", "Benchmark", "LB", "r1", "r2", "r4", "r8");
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let lb = lower_bound(&g, &res).expect("valid");
        let mut cells = Vec::new();
        for rounds in [1, 2, 4, 8] {
            let cfg = HeuristicConfig {
                rotations_per_phase: 32,
                max_size: None,
                keep_best: 4,
                rounds,
            };
            let out = heuristic2(&g, &ListScheduler::default(), &res, &cfg)
                .expect("schedulable");
            cells.push(out.best_length);
        }
        println!(
            "{:<28} {:>3} {:>4} {:>4} {:>4} {:>4}",
            name, lb, cells[0], cells[1], cells[2], cells[3]
        );
    }
}
