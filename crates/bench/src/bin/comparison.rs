//! Executable Section-7 comparison: rotation scheduling against every
//! baseline this repository implements, on every benchmark.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin comparison [-- --jobs N]
//! ```
//!
//! With `--jobs N` the benchmark × resource-configuration cells run on
//! `N` worker threads; rows print in a fixed order for every jobs
//! value.
//!
//! Columns:
//!
//! * `LB`      — max(iteration bound, resource bound);
//! * `DAG`     — list scheduling without pipelining (per-iteration steps);
//! * `RETIME`  — FEAS-retime first, then schedule (Cathedral-II style);
//! * `UNF x4`  — unfold by 4, schedule, divide (loop-winding style);
//! * `IMS`     — iterative modulo scheduling (Rau);
//! * `RS`      — rotation scheduling (Heuristic 2).

use rotsched_baselines::{
    dag_only, lower_bound, modulo_schedule, retime_then_schedule, unfold_and_schedule, ModuloConfig,
};
use rotsched_bench::jobs_from_args;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{parallel_indexed, RotationScheduler};
use rotsched_sched::{PriorityPolicy, ResourceSet};

fn main() {
    let jobs = jobs_from_args();
    let configs = [(2, 2, false), (3, 2, true), (1, 1, false)];
    let benchmarks = all_benchmarks(&TimingModel::paper());
    println!(
        "{:<28} {:<7} {:>3} {:>5} {:>7} {:>7} {:>5} {:>5}",
        "Benchmark", "Res", "LB", "DAG", "RETIME", "UNFx4", "IMS", "RS"
    );
    let rows = parallel_indexed(jobs, benchmarks.len() * configs.len(), |i| {
        let (name, g) = &benchmarks[i / configs.len()];
        let (a, m, p) = configs[i % configs.len()];
        let res = ResourceSet::adders_multipliers(a, m, p);
        let lb = lower_bound(g, &res).expect("valid");
        let dag = dag_only(g, &res, PriorityPolicy::DescendantCount)
            .expect("schedulable")
            .length;
        let retime = retime_then_schedule(g, &res, PriorityPolicy::DescendantCount)
            .expect("schedulable")
            .length;
        let unf = unfold_and_schedule(g, &res, PriorityPolicy::DescendantCount, 4)
            .expect("schedulable")
            .per_iteration;
        let ims = modulo_schedule(g, &res, &ModuloConfig::default())
            .expect("schedulable")
            .ii;
        let rs = RotationScheduler::new(g, res.clone())
            .solve()
            .expect("schedulable")
            .length;
        format!(
            "{:<28} {:<7} {:>3} {:>5} {:>7} {:>7.2} {:>5} {:>5}",
            name,
            res.label(),
            lb,
            dag,
            retime,
            unf,
            ims,
            rs
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\n(all lengths in control steps per iteration; lower is better)");
}
