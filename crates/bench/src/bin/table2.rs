//! Regenerates **Table 2**: results for the elliptic filters.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin table2 [-- --jobs N]
//! ```
//!
//! With `--jobs N` the resource-configuration cells are measured on `N`
//! worker threads; rows are printed in table order either way, so the
//! output is identical for every jobs value.

use rotsched_baselines::{resource_label, TABLE_2};
use rotsched_bench::{format_row, jobs_from_args, measure_rs};
use rotsched_benchmarks::{elliptic, TimingModel};
use rotsched_core::parallel_indexed;

fn main() {
    let jobs = jobs_from_args();
    let g = elliptic(&TimingModel::paper());
    println!("Table 2: Results for the elliptic filters");
    println!("(measured with this implementation vs. the paper's published numbers)\n");
    let rows = parallel_indexed(jobs, TABLE_2.len(), |i| {
        let row = &TABLE_2[i];
        measure_rs(&g, row.adders, row.multipliers, row.pipelined)
    });
    for (row, measured) in TABLE_2.iter().zip(&rows) {
        println!("{}", format_row(measured, row.lb, row.rs, row.rs_depth));
        let mut competitors = Vec::new();
        if let Some(p) = row.pbs {
            competitors.push(format!("PBS {p}"));
        }
        if let Some(m) = row.mars {
            competitors.push(format!("MARS {m}"));
        }
        if let Some(l) = row.lee {
            competitors.push(format!("Lee {l}"));
        }
        if !competitors.is_empty() {
            println!(
                "         | published competitors ({}): {}",
                resource_label(row),
                competitors.join(", ")
            );
        }
    }
}
