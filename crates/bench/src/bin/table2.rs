//! Regenerates **Table 2**: results for the elliptic filters.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin table2
//! ```

use rotsched_baselines::{resource_label, TABLE_2};
use rotsched_bench::{format_row, measure_rs};
use rotsched_benchmarks::{elliptic, TimingModel};

fn main() {
    let g = elliptic(&TimingModel::paper());
    println!("Table 2: Results for the elliptic filters");
    println!("(measured with this implementation vs. the paper's published numbers)\n");
    for row in TABLE_2 {
        let measured = measure_rs(&g, row.adders, row.multipliers, row.pipelined);
        println!(
            "{}",
            format_row(&measured, row.lb, row.rs, row.rs_depth)
        );
        let mut competitors = Vec::new();
        if let Some(p) = row.pbs {
            competitors.push(format!("PBS {p}"));
        }
        if let Some(m) = row.mars {
            competitors.push(format!("MARS {m}"));
        }
        if let Some(l) = row.lee {
            competitors.push(format!("Lee {l}"));
        }
        if !competitors.is_empty() {
            println!(
                "         | published competitors ({}): {}",
                resource_label(row),
                competitors.join(", ")
            );
        }
    }
}
