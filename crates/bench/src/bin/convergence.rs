//! The Section 5 convergence study: effect of rotation size and
//! resource availability on how fast phases reach the optimum.
//!
//! ```text
//! cargo run --release -p rotsched-bench --bin convergence [-- --jobs N]
//! ```
//!
//! With `--jobs N` the benchmark × resource-configuration cells run on
//! `N` worker threads; lines print in a fixed order for every jobs
//! value.
//!
//! For every benchmark and a few resource configurations, runs one
//! independent rotation phase per size (Heuristic 1's structure)
//! through the instrumented [`SearchDriver`], reading per-rotation
//! lengths off the recorded [`TraceEvent::Rotated`] stream, and
//! reports, per size, how many rotations it took to first reach the
//! phase's best length — the paper's observations to check:
//!
//! * convergence is generally faster for larger sizes, with
//!   irregularities;
//! * too-small sizes may never converge to the optimal length;
//! * more resources converge faster.

use rotsched_baselines::lower_bound;
use rotsched_bench::jobs_from_args;
use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_core::{
    initial_state, parallel_indexed, BestSet, SearchDriver, TraceEvent, TraceRecorder,
};
use rotsched_sched::{ListScheduler, ResourceSet};

fn main() {
    let jobs = jobs_from_args();
    let alpha = 64;
    let configs = [(2, 2, false), (3, 3, false), (2, 1, true)];
    let benchmarks = all_benchmarks(&TimingModel::paper());

    let lines = parallel_indexed(jobs, benchmarks.len() * configs.len(), |i| {
        let (_, g) = &benchmarks[i / configs.len()];
        let (adders, mults, pipelined) = configs[i % configs.len()];
        let res = ResourceSet::adders_multipliers(adders, mults, pipelined);
        let lb = lower_bound(g, &res).expect("valid benchmark");
        let sched = ListScheduler::default();
        let init = initial_state(g, &sched, &res).expect("schedulable");
        let init_len = init.length(g);
        let mut cells = Vec::new();
        for size in 1..init_len.max(2) {
            let mut state = init.clone();
            let mut best = BestSet::new(1);
            // Two events per rotation plus phase bookkeeping fits well
            // inside this ring, so nothing the study reads is dropped.
            let mut driver =
                SearchDriver::incremental(g, &sched, &res).with_observer(TraceRecorder::new(256));
            let wrapped = state.wrapped_length(g, &res).expect("wraps");
            driver.offer(&mut best, wrapped, &state);
            driver
                .run_phase(&mut state, &mut best, size, alpha)
                .expect("phases run");
            let trace = driver.observer.finish();
            let reached = best.length();
            let when = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Rotated { length, .. } => Some(*length),
                    _ => None,
                })
                .position(|l| u64::from(l) == u64::from(reached))
                .map(|i| i + 1);
            cells.push(match when {
                Some(k) if u64::from(reached) == lb => format!("s{size}:{k}r"),
                _ if u64::from(reached) == lb => format!("s{size}:-"),
                _ => format!("s{size}:x{reached}"),
            });
        }
        format!(
            "{:<7} (initial {init_len}, LB {lb:>2}): {}",
            res.label(),
            cells.join(" ")
        )
    });

    for (b, (name, _)) in benchmarks.iter().enumerate() {
        println!("\n== {name} ==");
        for c in 0..configs.len() {
            println!("{}", lines[b * configs.len() + c]);
        }
    }
    println!("\nlegend: sK:Nr = phase of size K first reached the lower bound after N rotations;");
    println!("        sK:xL = phase of size K plateaued at length L above the bound.");
}
