//! Experiment harness for the rotation-scheduling reproduction.
//!
//! The binaries in `src/bin/` regenerate each table and figure of the
//! paper; the benches in `benches/` measure runtime claims with the
//! self-contained [`harness`]. This library hosts the shared measurement
//! helpers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;

use rotsched_baselines::lower_bound;
use rotsched_core::{HeuristicConfig, RotationScheduler};
use rotsched_dfg::Dfg;
use rotsched_sched::{PriorityPolicy, ResourceSet};

/// One measured row: rotation scheduling on a benchmark under a
/// resource configuration.
#[derive(Clone, Debug)]
pub struct MeasuredRow {
    /// Resource label, e.g. `"3A 2Mp"`.
    pub resources: String,
    /// Our computed lower bound (max of iteration and resource bounds).
    pub lb: u64,
    /// The schedule length rotation scheduling achieved.
    pub rs: u32,
    /// The minimized pipeline depth of the winning schedule.
    pub depth: u32,
    /// Number of distinct best schedules retained.
    pub optima: usize,
    /// Whether the end-to-end simulation of the winning pipeline passed.
    pub verified: bool,
    /// Steady-state register requirement (MAXLIVE) of the winning
    /// pipeline.
    pub registers: u32,
}

/// Runs rotation scheduling (Heuristic 2, paper defaults) on `dfg` under
/// `adders`/`multipliers` and returns the measured row.
///
/// The winning pipeline is additionally expanded and simulated for 25
/// iterations against sequential semantics; `verified` records the
/// outcome.
///
/// # Panics
///
/// Panics if the benchmark graph cannot be scheduled at all (never
/// happens for the suite's graphs).
#[must_use]
pub fn measure_rs(dfg: &Dfg, adders: u32, multipliers: u32, pipelined: bool) -> MeasuredRow {
    measure_rs_with(
        dfg,
        adders,
        multipliers,
        pipelined,
        &HeuristicConfig::default(),
        PriorityPolicy::DescendantCount,
    )
}

/// [`measure_rs`] with explicit heuristic configuration and priority
/// policy (used by the convergence and ablation studies).
///
/// # Panics
///
/// Panics if the benchmark graph cannot be scheduled at all.
#[must_use]
pub fn measure_rs_with(
    dfg: &Dfg,
    adders: u32,
    multipliers: u32,
    pipelined: bool,
    config: &HeuristicConfig,
    policy: PriorityPolicy,
) -> MeasuredRow {
    let resources = ResourceSet::adders_multipliers(adders, multipliers, pipelined);
    let lb = lower_bound(dfg, &resources).expect("valid benchmark graph");
    let scheduler = RotationScheduler::new(dfg, resources.clone())
        .with_config(*config)
        .with_policy(policy);
    let solved = scheduler.solve().expect("benchmarks are schedulable");
    let verified = scheduler.verify(&solved.state, 25).is_ok();
    let registers = scheduler
        .loop_schedule(&solved.state)
        .map_or(0, |ls| rotsched_sched::register_pressure(dfg, &ls).max_live);
    MeasuredRow {
        resources: resources.label(),
        lb,
        rs: solved.length,
        depth: solved.depth,
        optima: solved.outcome.best.len(),
        verified,
        registers,
    }
}

/// Parses `--jobs N` (or `--jobs=N`) from the process arguments;
/// defaults to 1. Every experiment binary accepts this flag and fans
/// its benchmark × resource-config cells out over
/// [`rotsched_core::parallel_indexed`] — output is collected and
/// printed in a fixed order, so the tables are byte-identical for every
/// `--jobs` value.
#[must_use]
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().unwrap_or(1);
        }
    }
    1
}

/// Formats a measured row against published numbers for table printing.
#[must_use]
pub fn format_row(row: &MeasuredRow, paper_lb: u32, paper_rs: u32, paper_depth: u32) -> String {
    format!(
        "{:<8} | LB {:>2} (paper {:>2}) | RS {:>2}({}) (paper {:>2}({})) | optima {:>2} | regs {:>2} | {}",
        row.resources,
        row.lb,
        paper_lb,
        row.rs,
        row.depth,
        paper_rs,
        paper_depth,
        row.optima,
        row.registers,
        if row.verified { "verified" } else { "VERIFY-FAILED" }
    )
}
