//! Golden-fixture regression tests: the benchmark graphs serialized in
//! the text format are checked in under `fixtures/`; any structural
//! change to a benchmark (which would silently invalidate the
//! paper-vs-measured record in EXPERIMENTS.md) fails here.

use rotsched_benchmarks::{all_benchmarks, TimingModel};
use rotsched_dfg::text;

fn fixture_path(name: &str) -> String {
    let slug = name.to_lowercase().replace(' ', "-");
    format!("{}/fixtures/{slug}.dfg", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn benchmarks_match_their_golden_fixtures() {
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let expected = std::fs::read_to_string(fixture_path(name))
            .unwrap_or_else(|e| panic!("missing fixture for {name}: {e}"));
        let actual = text::to_text(&g);
        assert_eq!(
            actual, expected,
            "{name}: benchmark structure changed; regenerate the fixture \
             and re-validate EXPERIMENTS.md if this is intentional"
        );
    }
}

#[test]
fn fixtures_parse_back_to_valid_graphs() {
    for (name, g) in all_benchmarks(&TimingModel::paper()) {
        let content = std::fs::read_to_string(fixture_path(name)).unwrap();
        let parsed = text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.node_count(), g.node_count(), "{name}");
        assert_eq!(parsed.edge_count(), g.edge_count(), "{name}");
        parsed.validate().unwrap();
    }
}
