//! The 4-stage (pipelined) lattice filter benchmark (reconstruction).
//!
//! Four cascaded lattice stages — each a pair of coefficient
//! multiplications updating a register state — plus an output section.
//! As with the elliptic filter, the paper's exact edge list is not
//! published, so the structure below is pinned to Table 1:
//!
//! * 15 multiplications, 11 adder-class operations;
//! * critical path **10** (add = 1 CS, mult = 2 CS) — the forward
//!   cascade `s1 → k3 → s1 → …` through the four stages;
//! * iteration bound **2** — the heavily registered stage recurrences
//!   keep every cycle at ratio ≤ 2 (the output recurrence binds at
//!   exactly 4/2).

use rotsched_dfg::{Dfg, DfgBuilder, OpKind};

use crate::timing::TimingModel;

/// Builds the 4-stage lattice filter DFG under `timing`.
#[must_use]
pub fn lattice4(timing: &TimingModel) -> Dfg {
    let a = timing.steps(OpKind::Add);
    let m = timing.steps(OpKind::Mul);
    let mut b = DfgBuilder::new("4-stage-lattice");

    // Per-stage nodes: forward adder s1, state adder s2, coefficient
    // multipliers k1 (reflection, registered) and k2 (state update).
    for i in 0..4 {
        b = b
            .node(format!("s1_{i}"), OpKind::Add, a)
            .node(format!("s2_{i}"), OpKind::Add, a)
            .node(format!("k1_{i}"), OpKind::Mul, m)
            .node(format!("k2_{i}"), OpKind::Mul, m);
    }
    // Forward multipliers between stages (3 of them).
    for i in 0..3 {
        b = b.node(format!("k3_{i}"), OpKind::Mul, m);
    }
    // Output section: scaling multipliers and combiners.
    b = b
        .node("mo1", OpKind::Mul, m)
        .node("mo2", OpKind::Mul, m)
        .node("mo3", OpKind::Mul, m)
        .node("mo4", OpKind::Mul, m)
        .node("ao1", OpKind::Add, a)
        .node("ao2", OpKind::Add, a)
        .node("ao3", OpKind::Add, a);

    for i in 0..4 {
        let (s1, s2, k1, k2) = (
            format!("s1_{i}"),
            format!("s2_{i}"),
            format!("k1_{i}"),
            format!("k2_{i}"),
        );
        // Reflection product from last iteration's state feeds the
        // forward adder through a register.
        b = b.edge(&s2, &k1, 1).edge(&k1, &s1, 1);
        // State update: s2 = k2 * (state two iterations back) + forward
        // value one iteration back.
        b = b.edge(&s2, &k2, 2).wire(&k2, &s2).edge(&s1, &s2, 1);
    }
    // Forward cascade through the k3 multipliers (the critical path).
    for i in 0..3 {
        b = b
            .wire(&format!("s1_{i}"), &format!("k3_{i}"))
            .wire(&format!("k3_{i}"), &format!("s1_{}", i + 1));
    }
    // Output section: taps through registers, plus the binding
    // recurrence ao1 -> ao2 -> mo1 -> (2 registers) -> ao1 of ratio 2.
    b = b
        .edge("s2_0", "mo2", 1)
        .edge("s2_1", "mo3", 1)
        .edge("s2_2", "mo4", 1)
        .wire("mo2", "ao3")
        .wire("mo3", "ao3")
        .wire("mo4", "ao3")
        .edge("s2_3", "ao1", 1)
        .wire("ao1", "ao2")
        .wire("ao2", "mo1")
        .edge("mo1", "ao1", 2);

    b.build().expect("the lattice DFG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::{critical_path_length, iteration_bound, max_cycle_ratio, Ratio};

    #[test]
    fn table_1_characteristics() {
        // Table 1: 4-stage lattice — 15 mults, 11 adds, CP 10, IB 2.
        let g = lattice4(&TimingModel::paper());
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        assert_eq!(mults, 15);
        assert_eq!(adds, 11);
        assert_eq!(critical_path_length(&g, None).unwrap(), 10);
        assert_eq!(iteration_bound(&g).unwrap(), Some(2));
    }

    #[test]
    fn binding_cycle_is_the_output_recurrence() {
        let g = lattice4(&TimingModel::paper());
        assert_eq!(max_cycle_ratio(&g).unwrap(), Some(Ratio::new(4, 2)));
    }

    #[test]
    fn graph_is_valid() {
        lattice4(&TimingModel::paper()).validate().unwrap();
        lattice4(&TimingModel::unit()).validate().unwrap();
    }
}
