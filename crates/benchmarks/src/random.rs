//! Random cyclic data-flow graphs for stress and property testing.
//!
//! Generated graphs are always valid: intra-iteration (zero-delay) edges
//! only run forward along a random topological order, so the zero-delay
//! subgraph is a DAG by construction; backward edges always carry at
//! least one delay.

use rotsched_dfg::rng::SplitMix64;
use rotsched_dfg::{Dfg, OpKind};

/// Parameters for random DFG generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomDfgConfig {
    /// Number of computation nodes.
    pub nodes: usize,
    /// Probability of a zero-delay (forward) edge between an ordered
    /// pair of nodes.
    pub forward_density: f64,
    /// Probability of a delayed (backward or forward) edge between an
    /// ordered pair.
    pub feedback_density: f64,
    /// Maximum delays on a delayed edge (uniform in `1..=max_delays`).
    pub max_delays: u32,
    /// Fraction of nodes that are multiplications.
    pub mult_fraction: f64,
    /// Control steps per multiplication (additions always take 1).
    pub mult_steps: u32,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            nodes: 20,
            forward_density: 0.15,
            feedback_density: 0.05,
            max_delays: 2,
            mult_fraction: 0.4,
            mult_steps: 2,
        }
    }
}

/// Generates a random valid DFG from `config`, deterministically from
/// `seed`.
///
/// The graph is connected enough for scheduling but its cyclic structure
/// varies: some seeds produce acyclic graphs (no feedback edge hits),
/// most produce several recurrences.
#[must_use]
pub fn random_dfg(config: &RandomDfgConfig, seed: u64) -> Dfg {
    let mut rng = SplitMix64::new(seed);
    let mut g = Dfg::new(format!("random-{seed}"));
    let mut ids = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let is_mult = rng.chance(config.mult_fraction);
        let (op, time) = if is_mult {
            (OpKind::Mul, config.mult_steps.max(1))
        } else {
            (OpKind::Add, 1)
        };
        ids.push(g.add_node(format!("n{i}"), op, time));
    }
    for i in 0..config.nodes {
        for j in 0..config.nodes {
            if i < j && rng.chance(config.forward_density) {
                g.add_edge(ids[i], ids[j], 0)
                    .expect("forward edge is valid");
            } else if i != j && rng.chance(config.feedback_density) {
                let d = rng.range_u32(1, config.max_delays.max(1));
                g.add_edge(ids[i], ids[j], d)
                    .expect("delayed edge is valid");
            }
        }
    }
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::iteration_bound;

    #[test]
    fn generated_graphs_are_valid() {
        for seed in 0..50 {
            let g = random_dfg(&RandomDfgConfig::default(), seed);
            g.validate().unwrap();
            // The iteration bound either exists (cyclic) or not; both
            // must compute without error.
            let _ = iteration_bound(&g).unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomDfgConfig::default();
        let a = random_dfg(&cfg, 42);
        let b = random_dfg(&cfg, 42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a
            .edges()
            .map(|(_, e)| (e.from(), e.to(), e.delays()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|(_, e)| (e.from(), e.to(), e.delays()))
            .collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn densities_scale_edge_counts() {
        let sparse = random_dfg(
            &RandomDfgConfig {
                forward_density: 0.05,
                ..RandomDfgConfig::default()
            },
            7,
        );
        let dense = random_dfg(
            &RandomDfgConfig {
                forward_density: 0.5,
                ..RandomDfgConfig::default()
            },
            7,
        );
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn mult_fraction_zero_means_all_adders() {
        let g = random_dfg(
            &RandomDfgConfig {
                mult_fraction: 0.0,
                ..RandomDfgConfig::default()
            },
            3,
        );
        assert_eq!(g.count_op(OpKind::Mul), 0);
    }
}
