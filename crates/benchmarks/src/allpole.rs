//! The all-pole lattice filter benchmark (reconstruction).
//!
//! An all-pole lattice is adder-heavy: a long chain of section adders
//! with only a handful of coefficient multiplications, and one deep
//! recurrence. Pinned to Table 1:
//!
//! * 4 multiplications, 11 adder-class operations;
//! * critical path **16** (add = 1 CS, mult = 2 CS);
//! * iteration bound **8** — the main recurrence carries one register
//!   around a 6-adder + 1-multiplier loop (6 + 2 = 8).

use rotsched_dfg::{Dfg, DfgBuilder, OpKind};

use crate::timing::TimingModel;

/// Builds the all-pole lattice filter DFG under `timing`.
#[must_use]
pub fn allpole(timing: &TimingModel) -> Dfg {
    let a = timing.steps(OpKind::Add);
    let m = timing.steps(OpKind::Mul);
    DfgBuilder::new("all-pole-lattice")
        // Input conditioning.
        .node("a1", OpKind::Add, a)
        .node("a2", OpKind::Add, a)
        .node("mpre", OpKind::Mul, m)
        // The recurrence: six section adders and the reflection
        // multiplier, closed through one register.
        .nodes("b", 6, OpKind::Add, a)
        .node("mc", OpKind::Mul, m)
        // Output scaling and combination.
        .node("mpost", OpKind::Mul, m)
        .node("ao1", OpKind::Add, a)
        .node("ao2", OpKind::Add, a)
        // Side tap (registered, off the critical path).
        .node("mside", OpKind::Mul, m)
        .node("aside", OpKind::Add, a)
        // Forward path.
        .chain(&["a1", "a2", "mpre", "b0", "b1", "b2", "b3", "b4", "b5", "mc"])
        .edge("mc", "b0", 1) // the IB-binding recurrence
        .chain(&["mc", "mpost", "ao1", "ao2"])
        // Side tap.
        .edge("b2", "mside", 1)
        .wire("mside", "aside")
        .build()
        .expect("the all-pole lattice DFG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::{critical_path_length, iteration_bound, simple_cycles};

    #[test]
    fn table_1_characteristics() {
        // Table 1: all-pole lattice — 4 mults, 11 adds, CP 16, IB 8.
        let g = allpole(&TimingModel::paper());
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        assert_eq!(mults, 4);
        assert_eq!(adds, 11);
        assert_eq!(critical_path_length(&g, None).unwrap(), 16);
        assert_eq!(iteration_bound(&g).unwrap(), Some(8));
    }

    #[test]
    fn there_is_exactly_one_cycle() {
        let g = allpole(&TimingModel::paper());
        let en = simple_cycles(&g, 100);
        assert_eq!(en.cycles.len(), 1);
        assert_eq!(en.cycles[0].total_time(&g), 8);
        assert_eq!(en.cycles[0].min_total_delays(&g), 1);
    }

    #[test]
    fn graph_is_valid() {
        allpole(&TimingModel::paper()).validate().unwrap();
        allpole(&TimingModel::unit()).validate().unwrap();
    }
}
