//! The 5th-order elliptic wave digital filter benchmark
//! (reconstruction).
//!
//! The paper (and most of the HLS literature) uses the elliptic filter
//! of Kung, Whitehouse & Kailath, correcting errors in the book's DFG
//! from the underlying signal-flow graph; the corrected edge list is not
//! printed. We therefore **reconstruct** a wave-digital-filter-shaped
//! graph and pin it to every characteristic Table 1 reports:
//!
//! * 8 multiplications, 26 adder-class operations (34 nodes);
//! * critical path **17** control steps (add = 1 CS, mult = 2 CS);
//! * iteration bound **16**.
//!
//! Shape: a long serial adder chain with two coefficient multipliers —
//! the classic WDF adaptor cascade — closed through one register (the
//! binding T/D = 16/1 recurrence), plus three two-multiplier adaptor
//! sections tapping the chain through registers, and an output adder.
//! The tests below enforce the Table 1 invariants exactly, so scheduling
//! behavior (operation mix, recurrence structure, CP, IB) matches the
//! original benchmark even though individual edges may differ.

use rotsched_dfg::{Dfg, DfgBuilder, OpKind};

use crate::timing::TimingModel;

/// Builds the elliptic-filter DFG under `timing`.
#[must_use]
pub fn elliptic(timing: &TimingModel) -> Dfg {
    let a = timing.steps(OpKind::Add);
    let m = timing.steps(OpKind::Mul);
    let mut b = DfgBuilder::new("elliptic-wave-filter")
        // Input adder feeding the main adaptor chain.
        .node("a0", OpKind::Add, a)
        // Main chain: 12 adders and 2 multipliers in series, closed by
        // one register -> the iteration-bound cycle (12 + 2*2 = 16).
        .nodes("c", 12, OpKind::Add, a)
        .node("m1", OpKind::Mul, m)
        .node("m2", OpKind::Mul, m)
        // Output adder, fed through registers (off the critical path).
        .node("aout", OpKind::Add, a);
    // Three adaptor sections: 4 adders + 2 multipliers each.
    for i in 1..=3 {
        for j in 1..=4 {
            b = b.node(format!("x{i}{j}"), OpKind::Add, a);
        }
        b = b
            .node(format!("p{i}1"), OpKind::Mul, m)
            .node(format!("p{i}2"), OpKind::Mul, m);
    }

    // Main chain with the two multipliers inline:
    // a0 -> c0 c1 m1 c2 .. c7 m2 c8 .. c11, register back to c0.
    b = b
        .chain(&["a0", "c0", "c1", "m1", "c2", "c3", "c4", "c5", "c6", "c7"])
        .chain(&["c7", "m2", "c8", "c9", "c10", "c11"])
        .edge("c11", "c0", 1);

    // Sections tap the chain through a register, compute through their
    // multipliers, and feed back through another register; a local
    // recurrence keeps each section's state.
    let taps = [("c3", "c0"), ("c7", "c4"), ("c10", "c8")];
    for (i, (tap, back)) in taps.iter().enumerate() {
        let i = i + 1;
        let (x1, x2, x3, x4) = (
            format!("x{i}1"),
            format!("x{i}2"),
            format!("x{i}3"),
            format!("x{i}4"),
        );
        let (p1, p2) = (format!("p{i}1"), format!("p{i}2"));
        b = b
            .edge(tap, &x1, 1)
            .wire(&x1, &p1)
            .wire(&p1, &x2)
            .edge(&x2, back, 1)
            .wire(&x2, &x3)
            .wire(&x3, &p2)
            .wire(&p2, &x4)
            .edge(&x4, &x3, 1);
    }

    // Output taps.
    b = b.edge("c11", "aout", 1).edge("x34", "aout", 1);

    b.build().expect("the elliptic-filter DFG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::{critical_path_length, iteration_bound, simple_cycles};

    #[test]
    fn table_1_characteristics() {
        // Table 1: elliptic filter — 8 mults, 26 adds, CP 17, IB 16.
        let g = elliptic(&TimingModel::paper());
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        assert_eq!(mults, 8);
        assert_eq!(adds, 26);
        assert_eq!(g.node_count(), 34);
        assert_eq!(critical_path_length(&g, None).unwrap(), 17);
        assert_eq!(iteration_bound(&g).unwrap(), Some(16));
    }

    #[test]
    fn the_binding_cycle_is_the_main_chain() {
        let g = elliptic(&TimingModel::paper());
        let en = simple_cycles(&g, 10_000);
        assert!(!en.truncated);
        let binding = en
            .cycles
            .iter()
            .max_by(|x, y| {
                let rx = x.total_time(&g) as f64 / x.min_total_delays(&g) as f64;
                let ry = y.total_time(&g) as f64 / y.min_total_delays(&g) as f64;
                rx.partial_cmp(&ry).unwrap()
            })
            .unwrap();
        assert_eq!(binding.total_time(&g), 16);
        assert_eq!(binding.min_total_delays(&g), 1);
        assert_eq!(binding.nodes.len(), 14, "12 adders + 2 multipliers");
    }

    #[test]
    fn unit_time_characteristics() {
        let g = elliptic(&TimingModel::unit());
        // Unit time: the main cycle has 14 ops over 1 delay.
        assert_eq!(iteration_bound(&g).unwrap(), Some(14));
        assert_eq!(critical_path_length(&g, None).unwrap(), 15);
    }

    #[test]
    fn graph_is_valid() {
        let g = elliptic(&TimingModel::paper());
        g.validate().unwrap();
    }
}
