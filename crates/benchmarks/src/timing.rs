//! Timing models for the benchmark graphs.
//!
//! The paper's experiments assume an adder takes 40 ns, a multiplier
//! 80 ns, and a control step is 50 ns (40 ns compute + 10 ns latch):
//! an addition fits in **1** control step and a multiplication needs
//! **2**. The worked examples of Figures 1–5 instead use *unit-time*
//! operations. Both models are provided; benchmark constructors take one
//! as a parameter.

use rotsched_dfg::OpKind;

/// Maps operation kinds to computation times in control steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimingModel {
    /// Control steps for adder-class operations (add/sub/cmp/shift).
    pub add_steps: u32,
    /// Control steps for multiplier-class operations (mul/div).
    pub mult_steps: u32,
}

impl TimingModel {
    /// Unit-time operations, as in the paper's worked examples
    /// (Figures 1–5): every operation takes one control step.
    #[must_use]
    pub const fn unit() -> Self {
        TimingModel {
            add_steps: 1,
            mult_steps: 1,
        }
    }

    /// The paper's experimental model (Section 6): 40 ns adds and 80 ns
    /// multiplies in 50 ns control steps — 1 and 2 steps respectively.
    #[must_use]
    pub const fn paper() -> Self {
        TimingModel {
            add_steps: 1,
            mult_steps: 2,
        }
    }

    /// The computation time of one operation kind under this model.
    #[must_use]
    pub const fn steps(&self, op: OpKind) -> u32 {
        if op.is_multiplicative() {
            self.mult_steps
        } else {
            self.add_steps
        }
    }
}

impl Default for TimingModel {
    /// Defaults to [`TimingModel::paper`], the model behind Tables 1–3.
    fn default() -> Self {
        TimingModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_section_6() {
        let t = TimingModel::paper();
        assert_eq!(t.steps(OpKind::Add), 1);
        assert_eq!(t.steps(OpKind::Sub), 1);
        assert_eq!(t.steps(OpKind::Cmp), 1);
        assert_eq!(t.steps(OpKind::Mul), 2);
        assert_eq!(t.steps(OpKind::Div), 2);
    }

    #[test]
    fn unit_model_is_uniform() {
        let t = TimingModel::unit();
        for op in OpKind::ALL {
            assert_eq!(t.steps(op), 1);
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(TimingModel::default(), TimingModel::paper());
    }
}
