//! The 2-cascaded biquad filter benchmark.
//!
//! Two direct-form-II biquad sections in cascade, with normalized
//! feed-forward gain (4 coefficient multiplications per section:
//! `a1·w[n−1]`, `a2·w[n−2]`, `b1·w[n−1]`, `b2·w[n−2]`):
//!
//! ```text
//! w   = in − a1·w[n−1] − a2·w[n−2]
//! out = w + (b1·w[n−1] + b2·w[n−2])
//! ```
//!
//! Table 1: 8 multiplications, 8 adder-class operations, critical path
//! **7** (add = 1 CS, mult = 2 CS), iteration bound **4** (the
//! `w → a1·w → −` recurrence: 2 + 1 + 1 over one register).

use rotsched_dfg::{Dfg, DfgBuilder, OpKind};

use crate::timing::TimingModel;

/// Builds the 2-cascaded biquad DFG under `timing`.
#[must_use]
pub fn biquad(timing: &TimingModel) -> Dfg {
    let a = timing.steps(OpKind::Add);
    let m = timing.steps(OpKind::Mul);
    let mut b = DfgBuilder::new("2-cascaded-biquad");
    for j in 1..=2 {
        b = b
            .node(format!("ma{j}"), OpKind::Mul, m) // a1 * w[n-1]
            .node(format!("mb{j}"), OpKind::Mul, m) // a2 * w[n-2]
            .node(format!("mc{j}"), OpKind::Mul, m) // b1 * w[n-1]
            .node(format!("md{j}"), OpKind::Mul, m) // b2 * w[n-2]
            .node(format!("s1_{j}"), OpKind::Sub, a) // in - ma
            .node(format!("s2_{j}"), OpKind::Sub, a) // s1 - mb (= w)
            .node(format!("o1_{j}"), OpKind::Add, a) // mc + md
            .node(format!("o2_{j}"), OpKind::Add, a); // w + o1 (= out)
        let (ma, mb, mc, md) = (
            format!("ma{j}"),
            format!("mb{j}"),
            format!("mc{j}"),
            format!("md{j}"),
        );
        let (s1, s2, o1, o2) = (
            format!("s1_{j}"),
            format!("s2_{j}"),
            format!("o1_{j}"),
            format!("o2_{j}"),
        );
        b = b
            .wire(&ma, &s1)
            .wire(&s1, &s2)
            .wire(&mb, &s2)
            .wire(&mc, &o1)
            .wire(&md, &o1)
            .wire(&o1, &o2)
            .wire(&s2, &o2)
            // State registers: w[n-1] and w[n-2].
            .edge(&s2, &ma, 1)
            .edge(&s2, &mb, 2)
            .edge(&s2, &mc, 1)
            .edge(&s2, &md, 2);
    }
    // Cascade: the second section's input is the first section's state
    // path output.
    b = b.wire("s2_1", "s1_2");
    b.build().expect("the biquad DFG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::{critical_path_length, iteration_bound, max_cycle_ratio, Ratio};

    #[test]
    fn table_1_characteristics() {
        // Table 1: 2-cascaded biquad — 8 mults, 8 adds, CP 7, IB 4.
        let g = biquad(&TimingModel::paper());
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        assert_eq!(mults, 8);
        assert_eq!(adds, 8);
        assert_eq!(critical_path_length(&g, None).unwrap(), 7);
        assert_eq!(iteration_bound(&g).unwrap(), Some(4));
    }

    #[test]
    fn binding_recurrence_is_the_w_loop() {
        let g = biquad(&TimingModel::paper());
        assert_eq!(max_cycle_ratio(&g).unwrap(), Some(Ratio::new(4, 1)));
    }

    #[test]
    fn sections_are_cascaded_through_w() {
        let g = biquad(&TimingModel::paper());
        let w1 = g.node_by_name("s2_1").unwrap();
        let s12 = g.node_by_name("s1_2").unwrap();
        assert!(g.zero_delay_successors(w1).any(|v| v == s12));
    }

    #[test]
    fn graph_is_valid() {
        biquad(&TimingModel::paper()).validate().unwrap();
        biquad(&TimingModel::unit()).validate().unwrap();
    }
}
