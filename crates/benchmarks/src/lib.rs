//! # rotsched-benchmarks — the paper's benchmark suite
//!
//! The five DSP benchmarks of Table 1, plus random-graph generators for
//! stress testing. Each benchmark constructor takes a [`TimingModel`]
//! (unit-time for the worked examples, the paper's 50 ns control-step
//! model for the evaluation tables) and every graph is pinned by tests
//! to the exact characteristics the paper reports:
//!
//! | Benchmark | #Mults | #Adds | CP | IB |
//! |---|---|---|---|---|
//! | 5th-order elliptic filter | 8 | 26 | 17 | 16 |
//! | differential equation | 6 | 5 | 7 | 6 |
//! | 4-stage lattice filter | 15 | 11 | 10 | 2 |
//! | all-pole lattice filter | 4 | 11 | 16 | 8 |
//! | 2-cascaded biquad filter | 8 | 8 | 7 | 4 |
//!
//! The differential equation and biquad graphs are derived directly
//! from their published definitions; the elliptic and lattice filters
//! are reconstructions (the paper's corrected edge lists were never
//! published) pinned to the same invariants — see `DESIGN.md` for the
//! substitution rationale.
//!
//! ```
//! use rotsched_benchmarks::{diffeq, TimingModel};
//! use rotsched_dfg::analysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = diffeq(&TimingModel::paper());
//! assert_eq!(analysis::iteration_bound(&g)?, Some(6));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod allpole;
mod biquad;
mod diffeq;
mod elliptic;
mod lattice4;
pub mod random;
mod timing;

pub use allpole::allpole;
pub use biquad::biquad;
pub use diffeq::diffeq;
pub use elliptic::elliptic;
pub use lattice4::lattice4;
pub use random::{random_dfg, RandomDfgConfig};
pub use timing::TimingModel;

use rotsched_dfg::Dfg;

/// All five benchmarks in Table 1 order, with their table names.
#[must_use]
pub fn all_benchmarks(timing: &TimingModel) -> Vec<(&'static str, Dfg)> {
    vec![
        ("5th-Order Elliptic Filter", elliptic(timing)),
        ("Differential Equation", diffeq(timing)),
        ("4-stage Lattice Filter", lattice4(timing)),
        ("All-pole Lattice Filter", allpole(timing)),
        ("2-cascaded Biquad Filter", biquad(timing)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_are_valid() {
        for (name, g) in all_benchmarks(&TimingModel::paper()) {
            g.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn table_1_is_reproduced_exactly() {
        use rotsched_dfg::analysis::{critical_path_length, iteration_bound};
        // (mults, adds, CP, IB) per Table 1.
        let expected = [
            (8, 26, 17, 16),
            (6, 5, 7, 6),
            (15, 11, 10, 2),
            (4, 11, 16, 8),
            (8, 8, 7, 4),
        ];
        for ((name, g), (mults, adds, cp, ib)) in all_benchmarks(&TimingModel::paper())
            .into_iter()
            .zip(expected)
        {
            let got_m = g
                .nodes()
                .filter(|(_, n)| n.op().is_multiplicative())
                .count();
            let got_a = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
            assert_eq!(got_m, mults, "{name}: multiplier count");
            assert_eq!(got_a, adds, "{name}: adder count");
            assert_eq!(
                critical_path_length(&g, None).unwrap(),
                cp,
                "{name}: critical path"
            );
            assert_eq!(
                iteration_bound(&g).unwrap(),
                Some(ib),
                "{name}: iteration bound"
            );
        }
    }
}
