//! The differential-equation solver (Figure 1 of the paper; the HAL
//! example of Paulin & Knight).
//!
//! The loop solves `y'' + 3xy' + 3y = 0` by forward Euler:
//!
//! ```text
//! while (x < a) {
//!     x1 = x + dx;
//!     u1 = u − (3·x·u·dx) − (3·y·dx);
//!     y1 = y + u·dx;
//!     x = x1; u = u1; y = y1;
//! }
//! ```
//!
//! The DFG has 6 multiplications and 5 adder-class operations (two
//! subtractions, two additions, the loop-test comparison). The loop test
//! is a **root** of the zero-delay DAG — it reads the previous
//! iteration's `x1` through a delay and gates the body with zero-delay
//! control edges — exactly the structure that makes rotating it down the
//! profitable first move in Figure 2.

use rotsched_dfg::{Dfg, DfgBuilder, OpKind};

use crate::timing::TimingModel;

/// Builds the differential-equation DFG under `timing`.
///
/// Node names follow the derivation: `m1 = 3·x`, `m2 = u·dx`,
/// `m3 = m1·m2`, `m4 = 3·y`, `m5 = m4·dx`, `m6 = u·dx` (for `y1`),
/// `s1 = u − m3`, `s2 = s1 − m5` (= `u1`), `ys = y + m6` (= `y1`),
/// `xs = x + dx` (= `x1`), `test = (x1 < a)`.
///
/// # Panics
///
/// Never panics: the graph is statically known to be valid.
#[must_use]
pub fn diffeq(timing: &TimingModel) -> Dfg {
    let a = timing.steps(OpKind::Add);
    let m = timing.steps(OpKind::Mul);
    DfgBuilder::new("differential-equation")
        // Multipliers.
        .node("m1", OpKind::Mul, m) // 3 * x
        .node("m2", OpKind::Mul, m) // u * dx
        .node("m3", OpKind::Mul, m) // (3x) * (u dx)
        .node("m4", OpKind::Mul, m) // 3 * y
        .node("m5", OpKind::Mul, m) // (3y) * dx
        .node("m6", OpKind::Mul, m) // u * dx  (for y1)
        // Adder-class operations.
        .node("s1", OpKind::Sub, a) // u - m3
        .node("s2", OpKind::Sub, a) // s1 - m5  (= u1)
        .node("ys", OpKind::Add, a) // y + m6   (= y1)
        .node("xs", OpKind::Add, a) // x + dx   (= x1)
        .node("test", OpKind::Cmp, a) // x1 < a
        // Intra-iteration data flow.
        .wire("m1", "m3")
        .wire("m2", "m3")
        .wire("m3", "s1")
        .wire("m4", "m5")
        .wire("m5", "s2")
        .wire("s1", "s2")
        .wire("m6", "ys")
        // The loop test gates the body: zero-delay control edges to the
        // roots of the data flow.
        .wire("test", "m1")
        .wire("test", "m2")
        .wire("test", "m4")
        .wire("test", "m6")
        .wire("test", "xs")
        // Loop-carried state: u = s2, y = ys, x = xs, each through one
        // register; the test reads the previous iteration's x1.
        .edge("s2", "m2", 1)
        .edge("s2", "s1", 1)
        .edge("s2", "m6", 1)
        .edge("ys", "m4", 1)
        .edge("ys", "ys", 1)
        .edge("xs", "m1", 1)
        .edge("xs", "xs", 1)
        .edge("xs", "test", 1)
        .build()
        .expect("the differential-equation DFG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::analysis::{critical_path_length, iteration_bound};

    #[test]
    fn table_1_characteristics() {
        // Table 1: Differential Equation — 6 mults, 5 adds, CP 7, IB 6.
        let g = diffeq(&TimingModel::paper());
        let mults = g
            .nodes()
            .filter(|(_, n)| n.op().is_multiplicative())
            .count();
        let adds = g.nodes().filter(|(_, n)| n.op().is_additive()).count();
        assert_eq!(mults, 6);
        assert_eq!(adds, 5);
        assert_eq!(critical_path_length(&g, None).unwrap(), 7);
        assert_eq!(iteration_bound(&g).unwrap(), Some(6));
    }

    #[test]
    fn unit_time_critical_path() {
        // With unit-time operations the critical chain
        // test -> m1 -> m3 -> s1 -> s2 takes 5 steps.
        let g = diffeq(&TimingModel::unit());
        assert_eq!(critical_path_length(&g, None).unwrap(), 5);
    }

    #[test]
    fn the_loop_test_is_a_root() {
        let g = diffeq(&TimingModel::paper());
        let test = g.node_by_name("test").unwrap();
        assert_eq!(
            g.zero_delay_predecessors(test).count(),
            0,
            "all incoming edges of the loop test carry delays"
        );
        assert!(g.zero_delay_successors(test).count() >= 4);
    }

    #[test]
    fn graph_is_valid_and_cyclic() {
        let g = diffeq(&TimingModel::paper());
        g.validate().unwrap();
        assert!(iteration_bound(&g).unwrap().is_some());
        assert_eq!(g.node_count(), 11);
    }
}
