//! The DFG lint engine: a fixed registry of analysis passes over a
//! graph, an optional resource spec, and an optional retiming.
//!
//! Every pass is **total** — it returns diagnostics for arbitrary
//! inputs (including hostile ones straight out of the text parser) and
//! never panics. The engine runs all passes in registry order and
//! returns the findings in [canonical order](crate::diag::sort_canonical),
//! so equal inputs produce byte-identical reports.

use rotsched_dfg::{Dfg, NodeId, OpKind, Retiming};

use crate::bound::{recurrence_bound, recurrence_forces};
use crate::diag::{sort_canonical, Code, Diagnostic, Locus};
use crate::spec::ResourceSpec;

/// Values at or above this trip the `E003` overflow lint: schedule
/// arithmetic on `u32` steps stays exact below `2³⁰` even across the
/// `2·L` tail bound and prologue expansion.
pub const OVERFLOW_LIMIT: u32 = 1 << 30;

/// Tunable thresholds for the warning passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintOptions {
    /// `W003` fires when the longest zero-delay chain (in computation
    /// time) exceeds this many control steps.
    pub max_chain_depth: u64,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_chain_depth: 64,
        }
    }
}

/// Everything a lint pass may look at besides the graph itself.
#[derive(Clone, Copy, Debug)]
pub struct LintContext<'a> {
    /// The resource allocation to check bindings against, if any.
    pub spec: Option<&'a ResourceSpec>,
    /// The retiming to check for legality/normalization, if any.
    pub retiming: Option<&'a Retiming>,
    /// Warning thresholds.
    pub options: &'a LintOptions,
    /// A precomputed recurrence bound, when the caller already ran the
    /// computation (the analysis framework shares one across passes).
    /// `None` means "compute it here"; the inner `Option` carries
    /// [`recurrence_bound`]'s own verdict. A hint must equal what
    /// [`recurrence_bound`] would return — it is a cache, not a knob.
    pub recurrence_hint: Option<Option<u32>>,
}

impl<'a> LintContext<'a> {
    /// A context with no spec, no retiming, default options.
    #[must_use]
    pub fn bare(options: &'a LintOptions) -> Self {
        LintContext {
            spec: None,
            retiming: None,
            options,
            recurrence_hint: None,
        }
    }
}

/// One registered lint pass.
pub struct LintPass {
    /// Stable pass name (kebab-case), listed by `rotsched lint --passes`.
    pub name: &'static str,
    /// The diagnostic codes this pass can emit.
    pub codes: &'static [Code],
    run: fn(&Dfg, &LintContext<'_>, &mut Vec<Diagnostic>),
}

/// The pass registry, in execution order.
pub const PASSES: &[LintPass] = &[
    LintPass {
        name: "node-times",
        codes: &[Code::ZeroTimeNode, Code::OverflowHazard],
        run: pass_node_times,
    },
    LintPass {
        name: "edge-delays",
        codes: &[Code::OverflowHazard],
        run: pass_edge_delays,
    },
    LintPass {
        name: "zero-delay-cycles",
        codes: &[Code::ZeroDelayCycle],
        run: pass_zero_delay_cycles,
    },
    LintPass {
        name: "connectivity",
        codes: &[Code::IsolatedNode, Code::DeadEndNode],
        run: pass_connectivity,
    },
    LintPass {
        name: "resource-binding",
        codes: &[Code::UnboundOp, Code::EmptyClass, Code::UnusedClass],
        run: pass_resource_binding,
    },
    LintPass {
        name: "retiming",
        codes: &[Code::IllegalRetiming, Code::UnnormalizedRetiming],
        run: pass_retiming,
    },
    LintPass {
        name: "chain-depth",
        codes: &[Code::ChainDepthHazard],
        run: pass_chain_depth,
    },
    LintPass {
        name: "iteration-boundary",
        codes: &[Code::BoundaryCrossingOp],
        run: pass_iteration_boundary,
    },
];

/// Runs every registered pass and returns the findings in canonical
/// order. Total: never panics, whatever the input.
#[must_use]
pub fn lint(dfg: &Dfg, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
    let order: Vec<usize> = (0..PASSES.len()).collect();
    lint_in_order(dfg, ctx, &order)
}

/// [`lint`] with an explicit pass execution order (a permutation of
/// `0..PASSES.len()`; out-of-range entries are skipped). The canonical
/// sort makes the result identical for every permutation — the hook
/// exists so the determinism suite can prove that.
#[must_use]
pub fn lint_in_order(dfg: &Dfg, ctx: &LintContext<'_>, order: &[usize]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &i in order {
        if let Some(pass) = PASSES.get(i) {
            (pass.run)(dfg, ctx, &mut diags);
        }
    }
    sort_canonical(&mut diags);
    diags
}

/// Whether any finding in `diags` is an error (as opposed to a warning).
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags
        .iter()
        .any(|d| d.severity() == crate::diag::Severity::Error)
}

fn pass_node_times(dfg: &Dfg, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for (v, node) in dfg.nodes() {
        if node.time() == 0 {
            out.push(
                Diagnostic::new(
                    Code::ZeroTimeNode,
                    Locus::Node(v),
                    "computation time is 0; every node must occupy at least one control step",
                )
                .with_hint("set the node's time to at least 1"),
            );
        } else if node.time() >= OVERFLOW_LIMIT {
            out.push(Diagnostic::new(
                Code::OverflowHazard,
                Locus::Node(v),
                format!(
                    "computation time {} is at or above 2^30; schedule arithmetic may saturate",
                    node.time()
                ),
            ));
        }
    }
}

fn pass_edge_delays(dfg: &Dfg, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for (_, edge) in dfg.edges() {
        if edge.delays() >= OVERFLOW_LIMIT {
            out.push(Diagnostic::new(
                Code::OverflowHazard,
                Locus::Edge {
                    from: edge.from(),
                    to: edge.to(),
                },
                format!(
                    "delay count {} is at or above 2^30; retiming arithmetic may saturate",
                    edge.delays()
                ),
            ));
        }
    }
}

/// Kahn's algorithm over the zero-delay subgraph in the given direction;
/// returns which nodes were ordered (the rest lie on or behind a cycle).
fn kahn_zero_delay(dfg: &Dfg, forward: bool) -> Vec<bool> {
    let n = dfg.node_count();
    let mut degree = vec![0_usize; n];
    for (_, edge) in dfg.edges() {
        if edge.is_zero_delay() {
            let sink = if forward { edge.to() } else { edge.from() };
            degree[sink.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
    let mut ordered = vec![false; n];
    while let Some(i) = queue.pop() {
        ordered[i] = true;
        let v = NodeId::from_index(i);
        let edges = if forward {
            dfg.out_edges(v)
        } else {
            dfg.in_edges(v)
        };
        for &e in edges {
            let edge = dfg.edge(e);
            if edge.is_zero_delay() {
                let next = if forward { edge.to() } else { edge.from() };
                degree[next.index()] -= 1;
                if degree[next.index()] == 0 {
                    queue.push(next.index());
                }
            }
        }
    }
    ordered
}

fn pass_zero_delay_cycles(dfg: &Dfg, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let fwd = kahn_zero_delay(dfg, true);
    if fwd.iter().all(|&done| done) {
        return;
    }
    // A node lies on a zero-delay cycle iff it is stuck in both
    // directions (forward leftovers include cycle *descendants*,
    // backward leftovers cycle *ancestors*).
    let bwd = kahn_zero_delay(dfg, false);
    let cyclic: Vec<NodeId> = (0..dfg.node_count())
        .filter(|&i| !fwd[i] && !bwd[i])
        .map(NodeId::from_index)
        .collect();
    let witness = cyclic.first().copied().unwrap_or(NodeId::from_index(0));
    out.push(
        Diagnostic::new(
            Code::ZeroDelayCycle,
            Locus::Node(witness),
            format!(
                "{} node(s) lie on cycles of zero-delay edges; no static schedule can order them",
                cyclic.len()
            ),
        )
        .with_hint("every cycle must carry at least one delay (register)"),
    );
}

fn pass_connectivity(dfg: &Dfg, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for v in dfg.node_ids() {
        let (ins, outs) = (dfg.in_edges(v).len(), dfg.out_edges(v).len());
        if ins == 0 && outs == 0 {
            out.push(
                Diagnostic::new(
                    Code::IsolatedNode,
                    Locus::Node(v),
                    "node has no edges; it constrains nothing and consumes a unit every iteration",
                )
                .with_hint("remove the node or wire it into the graph"),
            );
        } else if outs == 0 {
            out.push(Diagnostic::new(
                Code::DeadEndNode,
                Locus::Node(v),
                "node's result is never consumed (no outgoing edges)",
            ));
        }
    }
}

fn pass_resource_binding(dfg: &Dfg, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Some(spec) = ctx.spec else { return };
    // One finding per operation *kind*, at its first offending node.
    for op in OpKind::ALL {
        let mut nodes = dfg.nodes().filter(|(_, n)| n.op() == op);
        let Some((first, _)) = nodes.next() else {
            continue;
        };
        let count = 1 + nodes.count();
        match spec.class_of(op) {
            None => out.push(
                Diagnostic::new(
                    Code::UnboundOp,
                    Locus::Node(first),
                    format!(
                        "no resource class executes `{op:?}` ({count} node(s) affected)"
                    ),
                )
                .with_hint("add the operation kind to a unit class"),
            ),
            Some(c) if spec.classes()[c].units == 0 => out.push(
                Diagnostic::new(
                    Code::EmptyClass,
                    Locus::Class(spec.classes()[c].name.clone()),
                    format!(
                        "class has 0 units but {count} `{op:?}` node(s) demand it; no schedule exists"
                    ),
                )
                .with_hint("allocate at least one unit"),
            ),
            Some(_) => {}
        }
    }
    for (ci, class) in spec.classes().iter().enumerate() {
        let demanded = dfg.nodes().any(|(_, n)| spec.class_of(n.op()) == Some(ci));
        if !demanded && dfg.node_count() > 0 {
            out.push(Diagnostic::new(
                Code::UnusedClass,
                Locus::Class(class.name.clone()),
                "class executes no operation present in the graph",
            ));
        }
    }
}

fn pass_retiming(dfg: &Dfg, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Some(r) = ctx.retiming else { return };
    if r.len() != dfg.node_count() {
        // A mismatched retiming cannot be evaluated edge-by-edge
        // without indexing out of bounds; report it as illegal.
        out.push(Diagnostic::new(
            Code::IllegalRetiming,
            Locus::Graph,
            format!(
                "retiming covers {} node(s) but the graph has {}",
                r.len(),
                dfg.node_count()
            ),
        ));
        return;
    }
    for (id, edge) in dfg.edges() {
        let dr = r.retimed_delay(dfg, id);
        if dr < 0 {
            out.push(
                Diagnostic::new(
                    Code::IllegalRetiming,
                    Locus::Edge {
                        from: edge.from(),
                        to: edge.to(),
                    },
                    format!("retimed delay d_r = {dr} is negative"),
                )
                .with_hint("a legal retiming keeps every retimed delay non-negative"),
            );
        }
    }
    if !r.is_normalized() {
        out.push(
            Diagnostic::new(
                Code::UnnormalizedRetiming,
                Locus::Graph,
                format!(
                    "retiming minimum is {}, not 0; prologue/epilogue expansion assumes a normalized retiming",
                    r.min_value()
                ),
            )
            .with_hint("call Retiming::to_normalized before expansion"),
        );
    }
}

fn pass_chain_depth(dfg: &Dfg, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    // Longest zero-delay path in total computation time, via one sweep
    // over a Kahn order. Skipped when a zero-delay cycle exists (E001
    // already fired; there is no finite chain depth).
    let n = dfg.node_count();
    let mut degree = vec![0_usize; n];
    for (_, edge) in dfg.edges() {
        if edge.is_zero_delay() {
            degree[edge.to().index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
    let mut depth: Vec<u64> = (0..n)
        .map(|i| u64::from(dfg.node(NodeId::from_index(i)).time()))
        .collect();
    let mut processed = 0_usize;
    while let Some(i) = queue.pop() {
        processed += 1;
        let v = NodeId::from_index(i);
        for &e in dfg.out_edges(v) {
            let edge = dfg.edge(e);
            if edge.is_zero_delay() {
                let j = edge.to().index();
                let candidate = depth[i] + u64::from(dfg.node(edge.to()).time());
                if candidate > depth[j] {
                    depth[j] = candidate;
                }
                degree[j] -= 1;
                if degree[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    if processed < n {
        return; // zero-delay cycle: covered by E001
    }
    if let Some((i, &d)) = depth
        .iter()
        .enumerate()
        .max_by_key(|&(i, &d)| (d, core::cmp::Reverse(i)))
    {
        if d > ctx.options.max_chain_depth {
            out.push(
                Diagnostic::new(
                    Code::ChainDepthHazard,
                    Locus::Node(NodeId::from_index(i)),
                    format!(
                        "a zero-delay chain of {d} control steps ends here (limit {}); every kernel is at least that long",
                        ctx.options.max_chain_depth
                    ),
                )
                .with_hint("break the chain with a delay or pipeline the operations"),
            );
        }
    }
}

fn pass_iteration_boundary(dfg: &Dfg, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    // Only meaningful on cyclic graphs: on a DAG the recurrence bound is
    // 1 and "crossing the boundary" is the common case, not a hazard.
    if !has_cycle(dfg) {
        return;
    }
    let Some(bound) = ctx.recurrence_hint.unwrap_or_else(|| recurrence_bound(dfg)) else {
        return; // zero-delay cycle: covered by E001
    };
    debug_assert!(recurrence_forces(dfg, bound));
    for (v, node) in dfg.nodes() {
        if u64::from(node.time()) > u64::from(bound) {
            out.push(Diagnostic::new(
                Code::BoundaryCrossingOp,
                Locus::Node(v),
                format!(
                    "computation time {} exceeds the recurrence bound {bound}; in any bound-achieving kernel this operation must wrap across the iteration boundary",
                    node.time()
                ),
            ));
        }
    }
}

/// Whether the full graph (all edges, delays included) has any cycle.
fn has_cycle(dfg: &Dfg) -> bool {
    let n = dfg.node_count();
    let mut degree = vec![0_usize; n];
    for (_, edge) in dfg.edges() {
        degree[edge.to().index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
    let mut processed = 0_usize;
    while let Some(i) = queue.pop() {
        processed += 1;
        for &e in dfg.out_edges(NodeId::from_index(i)) {
            let j = dfg.edge(e).to().index();
            degree[j] -= 1;
            if degree[j] == 0 {
                queue.push(j);
            }
        }
    }
    processed < n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(options: &LintOptions) -> LintContext<'_> {
        LintContext::bare(options)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_loop_lints_clean() {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        let options = LintOptions::default();
        let spec = ResourceSpec::adders_multipliers(1, 1, false);
        let diags = lint(
            &g,
            &LintContext {
                spec: Some(&spec),
                retiming: None,
                options: &options,
                recurrence_hint: None,
            },
        );
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn zero_delay_cycle_is_e001() {
        let mut g = Dfg::new("bad");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let options = LintOptions::default();
        let diags = lint(&g, &ctx(&options));
        assert!(codes(&diags).contains(&Code::ZeroDelayCycle));
        assert!(has_errors(&diags));
    }

    #[test]
    fn cycle_witness_is_on_the_cycle_not_downstream() {
        let mut g = Dfg::new("bad");
        let sink = g.add_node("sink", OpKind::Add, 1); // downstream only
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        g.add_edge(a, sink, 0).unwrap();
        let options = LintOptions::default();
        let diags = lint(&g, &ctx(&options));
        let e001 = diags
            .iter()
            .find(|d| d.code == Code::ZeroDelayCycle)
            .unwrap();
        assert!(matches!(e001.locus, Locus::Node(v) if v == a || v == b));
    }

    #[test]
    fn zero_time_and_overflow_are_flagged() {
        let mut g = Dfg::new("weird");
        let z = g.add_node("z", OpKind::Add, 0);
        let big = g.add_node("big", OpKind::Add, OVERFLOW_LIMIT);
        g.add_edge(z, big, OVERFLOW_LIMIT).unwrap();
        let options = LintOptions::default();
        let diags = lint(&g, &ctx(&options));
        let cs = codes(&diags);
        assert!(cs.contains(&Code::ZeroTimeNode));
        assert_eq!(
            cs.iter().filter(|&&c| c == Code::OverflowHazard).count(),
            2,
            "node time and edge delay each flagged"
        );
    }

    #[test]
    fn isolated_and_dead_end_nodes_warn() {
        let mut g = Dfg::new("g");
        let _lone = g.add_node("lone", OpKind::Add, 1);
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 1).unwrap();
        let options = LintOptions::default();
        let diags = lint(&g, &ctx(&options));
        let cs = codes(&diags);
        assert!(cs.contains(&Code::IsolatedNode));
        assert!(cs.contains(&Code::DeadEndNode));
        assert!(!has_errors(&diags), "connectivity findings are warnings");
    }

    #[test]
    fn unbound_and_empty_class_are_errors() {
        let mut g = Dfg::new("g");
        let m = g.add_node("m", OpKind::Mul, 1);
        let d = g.add_node("d", OpKind::Div, 1);
        g.add_edge(m, d, 1).unwrap();
        g.add_edge(d, m, 1).unwrap();
        let spec = ResourceSpec::new(vec![UnitClassNoMul::class()]);
        let options = LintOptions::default();
        let diags = lint(
            &g,
            &LintContext {
                spec: Some(&spec),
                retiming: None,
                options: &options,
                recurrence_hint: None,
            },
        );
        assert!(codes(&diags).contains(&Code::UnboundOp));
        // Zero-unit class demanded:
        let spec0 = ResourceSpec::adders_multipliers(1, 0, false);
        let diags = lint(
            &g,
            &LintContext {
                spec: Some(&spec0),
                retiming: None,
                options: &options,
                recurrence_hint: None,
            },
        );
        let cs = codes(&diags);
        assert!(cs.contains(&Code::EmptyClass));
        assert!(cs.contains(&Code::UnusedClass), "adder class is unused");
    }

    /// Helper: a spec whose single class skips multiplicative ops.
    struct UnitClassNoMul;
    impl UnitClassNoMul {
        fn class() -> crate::spec::UnitClass {
            crate::spec::UnitClass::new("adder", 1, false, vec![OpKind::Add, OpKind::Div])
        }
    }

    #[test]
    fn retiming_findings() {
        let mut g = Dfg::new("g");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 1).unwrap();
        let options = LintOptions::default();
        // Rotating b first is illegal (a -> b has no delay to take).
        let r = Retiming::from_set(&g, [b]);
        let diags = lint(
            &g,
            &LintContext {
                spec: None,
                retiming: Some(&r),
                options: &options,
                recurrence_hint: None,
            },
        );
        assert!(codes(&diags).contains(&Code::IllegalRetiming));
        // A shifted-but-legal retiming is only unnormalized.
        let mut r2 = Retiming::from_set(&g, [a]);
        r2.add(a, 1);
        r2.add(b, 1);
        let diags = lint(
            &g,
            &LintContext {
                spec: None,
                retiming: Some(&r2),
                options: &options,
                recurrence_hint: None,
            },
        );
        assert_eq!(codes(&diags), vec![Code::UnnormalizedRetiming]);
    }

    #[test]
    fn chain_depth_warns_past_the_limit() {
        let mut g = Dfg::new("chain");
        let mut prev = g.add_node("n0", OpKind::Add, 1);
        for i in 1..5 {
            let next = g.add_node(format!("n{i}"), OpKind::Add, 1);
            g.add_edge(prev, next, 0).unwrap();
            prev = next;
        }
        let options = LintOptions { max_chain_depth: 4 };
        let diags = lint(&g, &ctx(&options));
        let w003 = diags
            .iter()
            .find(|d| d.code == Code::ChainDepthHazard)
            .expect("5-step chain over limit 4");
        assert!(matches!(w003.locus, Locus::Node(v) if v == prev));
    }

    #[test]
    fn boundary_crossing_op_warns_only_on_cyclic_graphs() {
        let options = LintOptions::default();
        // Cyclic: bound 2 (4 time units over 2 delays), mult of time 3 wraps.
        let mut g = Dfg::new("cyc");
        let m = g.add_node("m", OpKind::Mul, 3);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 1).unwrap();
        g.add_edge(a, m, 1).unwrap();
        let diags = lint(&g, &ctx(&options));
        assert!(codes(&diags).contains(&Code::BoundaryCrossingOp));
        // Acyclic: same node times, no warning.
        let mut g2 = Dfg::new("dag");
        let m2 = g2.add_node("m", OpKind::Mul, 3);
        let a2 = g2.add_node("a", OpKind::Add, 1);
        g2.add_edge(m2, a2, 0).unwrap();
        let diags = lint(&g2, &ctx(&options));
        assert!(!codes(&diags).contains(&Code::BoundaryCrossingOp));
    }

    #[test]
    fn output_is_canonically_sorted_and_stable() {
        let mut g = Dfg::new("g");
        g.add_node("z", OpKind::Add, 0); // E002
        g.add_node("lone", OpKind::Add, 1); // W001
        let options = LintOptions::default();
        let a = lint(&g, &ctx(&options));
        let b = lint(&g, &ctx(&options));
        assert_eq!(a, b);
        assert_eq!(
            codes(&a),
            vec![Code::ZeroTimeNode, Code::IsolatedNode, Code::IsolatedNode],
            "both nodes are edge-less; errors sort before warnings"
        );
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = PASSES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PASSES.len());
        assert!(PASSES.iter().all(|p| !p.codes.is_empty()));
    }
}
