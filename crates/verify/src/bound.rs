//! Independent lower bounds on the kernel length.
//!
//! The certificate checker must be able to *confirm* an optimality
//! verdict without trusting the solver's bound computation, so this
//! module re-derives both bounds from scratch with a different
//! algorithm than the scheduler side uses (plain Bellman–Ford
//! positive-cycle probes instead of iterated parametric maximum cycle
//! ratio):
//!
//! * **recurrence**: a cycle `C` forces `L · Σ_{e∈C} d(e) ≥ Σ_{v∈C}
//!   t(v)` on every initiation interval `L` (sum the per-edge
//!   precedence constraints `s(v) + d_r·L ≥ s(u) + t(u)` around the
//!   cycle: starts cancel and `Σ d_r = Σ d`). So length `L − 1` is
//!   impossible exactly when some cycle has `Σt > (L−1)·Σd`.
//! * **resource**: [`crate::ResourceSpec::resource_bound`].

use rotsched_dfg::Dfg;

/// Whether some cycle proves every legal kernel is at least `min_length`
/// steps long — i.e. there is a cycle with `Σt > (min_length − 1)·Σd`.
///
/// `recurrence_forces(g, 1)` is trivially true for a non-empty graph
/// and `recurrence_forces(g, 0)` is false; a graph with a zero-delay
/// cycle forces every length (no legal kernel exists at all, which the
/// lint engine reports separately as `E001`).
#[must_use]
pub fn recurrence_forces(dfg: &Dfg, min_length: u32) -> bool {
    if min_length == 0 {
        return false;
    }
    if min_length == 1 {
        return dfg.node_count() > 0;
    }
    exists_positive_cycle(dfg, i128::from(min_length) - 1)
}

/// The recurrence lower bound: the smallest `L ≥ 1` not excluded by any
/// cycle, or `None` when no length up to `u32::MAX − 1` survives —
/// either a zero-delay cycle excludes every length, or the critical
/// ratio itself exceeds what `u32` can carry (possible only with
/// near-`u32::MAX` computation times).
///
/// On a graph without cycles this is 1. Binary search over
/// [`recurrence_forces`], which is monotone in its threshold.
#[must_use]
pub fn recurrence_bound(dfg: &Dfg) -> Option<u32> {
    if dfg.node_count() == 0 {
        return Some(1);
    }
    // Any cycle's ratio Σt/Σd is at most Σ_V t(v) (delays are ≥ 1 on
    // every cycle that has any), so the bound, if it exists, is ≤ that.
    let hi = u32::try_from(dfg.total_time().min(u64::from(u32::MAX) - 1)).unwrap_or(u32::MAX - 1);
    let (mut lo, mut hi) = (1_u32, hi.max(1));
    if recurrence_forces(dfg, hi + 1) {
        return None; // zero-delay cycle: every length excluded
    }
    // Invariant: !forces(hi + 1), forces(lo).
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if recurrence_forces(dfg, mid + 1) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Bellman–Ford probe: is there a cycle with positive total weight under
/// `w(e) = t(from(e)) − k·d(e)`?
///
/// Longest-path relaxation from an implicit super-source (all distances
/// start at 0); if the |V|-th pass still relaxes, a positive cycle
/// exists. A single weight `t − k·d` fits in `i128` for any `u32`-sized
/// inputs, but distances *accumulate* one weight per relaxation, so the
/// sums saturate rather than trust a size argument; saturation cannot
/// mask a positive cycle, because a distance pinned at `i128::MAX`
/// merely stops relaxing (the `n`-th-pass test needs only one strict
/// improvement anywhere, and ~2⁶² chained relaxations would have to
/// precede a pin).
fn exists_positive_cycle(dfg: &Dfg, k: i128) -> bool {
    let n = dfg.node_count();
    if n == 0 {
        return false;
    }
    // Weights once, not once per pass: up to n+1 sweeps re-read them.
    let weights: Vec<(usize, usize, i128)> = dfg
        .edges()
        .map(|(_, edge)| {
            let w = i128::from(dfg.node(edge.from()).time())
                .saturating_sub(k.saturating_mul(i128::from(edge.delays())));
            (edge.from().index(), edge.to().index(), w)
        })
        .collect();
    // A positive cycle needs a positive-weight edge.
    let Some(max_w) = weights.iter().map(|&(_, _, w)| w).filter(|&w| w > 0).max() else {
        return false;
    };
    // Distances start at 0 and a simple path carries at most
    // (n−1)·max_w; any distance beyond that already proves a positive
    // cycle, so the sweep can answer without finishing its pass budget.
    let threshold = i128::from(n as u64 - 1).saturating_mul(max_w);
    let mut dist = vec![0_i128; n];
    for pass in 0..=n {
        let mut relaxed = false;
        for &(from, to, w) in &weights {
            let candidate = dist[from].saturating_add(w);
            if candidate > dist[to] {
                if candidate > threshold {
                    return true;
                }
                dist[to] = candidate;
                relaxed = true;
            }
        }
        if !relaxed {
            return false;
        }
        if pass == n {
            return true;
        }
    }
    unreachable!("loop returns on the (n+1)-th pass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    /// A recurrence of total time 3 through one delay: bound 3.
    fn iir() -> Dfg {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        g
    }

    #[test]
    fn bound_matches_cycle_ratio() {
        let g = iir();
        assert_eq!(recurrence_bound(&g), Some(3));
        assert!(recurrence_forces(&g, 3));
        assert!(!recurrence_forces(&g, 4));
    }

    #[test]
    fn acyclic_graph_has_bound_one() {
        let mut g = Dfg::new("chain");
        let a = g.add_node("a", OpKind::Add, 5);
        let b = g.add_node("b", OpKind::Add, 5);
        g.add_edge(a, b, 0).unwrap();
        assert_eq!(recurrence_bound(&g), Some(1));
        assert!(recurrence_forces(&g, 1));
        assert!(!recurrence_forces(&g, 2));
    }

    #[test]
    fn zero_delay_cycle_excludes_everything() {
        let mut g = Dfg::new("bad");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        assert_eq!(recurrence_bound(&g), None);
        assert!(recurrence_forces(&g, 1_000_000));
    }

    #[test]
    fn fractional_ratio_rounds_up() {
        // 5 time units through 2 delays: ratio 2.5, bound 3.
        let mut g = Dfg::new("frac");
        let a = g.add_node("a", OpKind::Add, 2);
        let b = g.add_node("b", OpKind::Add, 3);
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert_eq!(recurrence_bound(&g), Some(3));
        assert!(recurrence_forces(&g, 3));
        assert!(!recurrence_forces(&g, 4));
    }

    #[test]
    fn empty_graph_is_harmless() {
        let g = Dfg::new("empty");
        assert_eq!(recurrence_bound(&g), Some(1));
        assert!(!recurrence_forces(&g, 1));
    }

    #[test]
    fn near_overflow_delays_do_not_panic() {
        let mut g = Dfg::new("big");
        let a = g.add_node("a", OpKind::Add, u32::MAX);
        g.add_edge(a, a, u32::MAX).unwrap();
        assert_eq!(recurrence_bound(&g), Some(1));
    }

    #[test]
    fn near_overflow_times_saturate_instead_of_wrapping() {
        // Two u32::MAX-time nodes around one delay: the true ratio
        // (2^33 − 2) no longer fits in u32, so the bound degrades to
        // None rather than a wrapped nonsense value.
        let mut g = Dfg::new("huge");
        let a = g.add_node("a", OpKind::Add, u32::MAX);
        let b = g.add_node("b", OpKind::Add, u32::MAX);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert_eq!(recurrence_bound(&g), None);
        // The probe itself stays exact at any representable threshold.
        assert!(recurrence_forces(&g, u32::MAX));
    }

    #[test]
    fn near_overflow_mixed_cycle_keeps_the_exact_bound() {
        // A u32::MAX-time node through u32::MAX delays alongside a
        // small recurrence: the huge cycle's ratio rounds up to 2 and
        // the small one forces 3, so the exact answer survives the
        // extreme weights.
        let mut g = Dfg::new("mixed");
        let big = g.add_node("big", OpKind::Mul, u32::MAX);
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(big, big, u32::MAX).unwrap();
        g.add_edge(big, m, 1).unwrap();
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        assert_eq!(recurrence_bound(&g), Some(3));
        assert!(!recurrence_forces(&g, 4));
    }
}
