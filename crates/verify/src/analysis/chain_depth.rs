//! Zero-delay chain depth histogram: the retimed graph's combinational
//! profile.
//!
//! A node's depth is the total computation time of the longest chain
//! of zero-(retimed-)delay edges ending at it — the earliest control
//! step it could finish in with unlimited resources. The maximum depth
//! is the critical path of the retimed graph and a lower bound on the
//! flat-schedule length; the histogram shows how much of the graph
//! sits at each depth, i.e. how much slack rotation has left to
//! exploit.
//!
//! Depths are a longest-path fact, computed with the shared
//! [`engine`](super::engine) fixed-point solver under a Bellman–Ford
//! round budget. Non-convergence means a zero-delay cycle (`E001`
//! territory — depth would be infinite), and the section degrades to
//! absent instead of reporting nonsense.

use crate::analysis::engine::{fixed_point, Direction};
use crate::analysis::report::{AnalysisReport, ChainSection};
use crate::analysis::AnalysisContext;
use crate::diag::{Code, Diagnostic, Locus};
use rotsched_dfg::NodeId;
use std::collections::BTreeMap;

pub(crate) fn run(ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
    let csr = ctx.cache.csr();
    let retimed = ctx.cache.retimed_delays();
    let n = csr.node_count();

    // Every node starts at its own (clamped) time; zero-delay edges
    // propagate the producer's finish time to the consumer.
    let init: Vec<u64> = csr.times().iter().map(|&t| u64::from(t)).collect();
    let fp = fixed_point(
        csr,
        Direction::Forward,
        init,
        n as u32 + 1,
        |e, src, dst| {
            if retimed[e] != 0 {
                return None;
            }
            let to = csr.edge_to()[e] as usize;
            let cand = src.saturating_add(u64::from(csr.times()[to]));
            (cand > *dst).then_some(cand)
        },
    );
    if !fp.converged {
        return; // zero-delay cycle: infinite depth, E001 reports it
    }

    let mut histogram: BTreeMap<u64, u32> = BTreeMap::new();
    for &d in &fp.values {
        *histogram.entry(d).or_insert(0) += 1;
    }
    let max_depth = fp.values.iter().copied().max().unwrap_or(0);
    let tail = fp
        .values
        .iter()
        .position(|&d| d == max_depth)
        .map(|v| v as u32);

    if let Some(tail) = tail {
        report.findings.push(
            Diagnostic::new(
                Code::DeepestChain,
                Locus::Node(NodeId::from_index(tail as usize)),
                format!(
                    "deepest zero-delay chain ends here: {max_depth} control step(s) of combinational depth"
                ),
            )
            .with_hint("a rotation placing a delay on this chain shortens the flat schedule"),
        );
    }

    report.chains = Some(ChainSection {
        max_depth,
        tail,
        histogram: histogram.into_iter().collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, ScheduleView};
    use crate::certify::StartTimes;
    use crate::spec::ResourceSpec;
    use rotsched_dfg::{Dfg, OpKind, Retiming};

    #[test]
    fn depths_accumulate_along_zero_delay_chains() {
        let mut g = Dfg::new("chain");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 2);
        let c = g.add_node("c", OpKind::Add, 3);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let chains = report.chains.expect("acyclic");
        assert_eq!(chains.max_depth, 6);
        assert_eq!(chains.tail, Some(2));
        assert_eq!(chains.histogram, vec![(1, 1), (3, 1), (6, 1)]);
        assert!(report.findings.iter().any(|d| d.code == Code::DeepestChain));
    }

    #[test]
    fn delayed_edges_break_chains() {
        let mut g = Dfg::new("cut");
        let a = g.add_node("a", OpKind::Add, 2);
        let b = g.add_node("b", OpKind::Add, 2);
        g.add_edge(a, b, 1).unwrap();
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let chains = report.chains.expect("acyclic");
        assert_eq!(chains.max_depth, 2);
        assert_eq!(chains.tail, Some(0), "smallest index wins the tie");
        assert_eq!(chains.histogram, vec![(2, 2)]);
    }

    #[test]
    fn retiming_moves_the_chain_cut() {
        // a -> b -> c -> a with both delays on c -> a: the zero-delay
        // chain a -> b -> c has depth 3. Rotating a spreads the delays
        // (a -> b and c -> a get one each), cutting the chain to b -> c.
        let mut g = Dfg::new("ring");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        g.add_edge(c, a, 2).unwrap();
        let before = analyze(&g, &ResourceSpec::unlimited(), None);
        assert_eq!(before.chains.as_ref().unwrap().max_depth, 3);

        let r = Retiming::from_set(&g, [a]);
        let starts = StartTimes::from_fn(&g, |_| Some(1));
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 2,
        };
        let after = analyze(&g, &ResourceSpec::unlimited(), Some(&view));
        assert_eq!(after.chains.as_ref().unwrap().max_depth, 2);
        assert_eq!(after.chains.as_ref().unwrap().tail, Some(c.index() as u32));
    }

    #[test]
    fn empty_graph_has_an_empty_section() {
        let g = Dfg::new("empty");
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let chains = report.chains.expect("trivially converges");
        assert_eq!(chains.max_depth, 0);
        assert_eq!(chains.tail, None);
        assert!(chains.histogram.is_empty());
    }
}
