//! Resource-saturation profile: per-class occupancy against capacity,
//! and the recurrence-vs-resource verdict.
//!
//! Statically the pass reports each class's total demand and the lower
//! bound it puts on the kernel length (`⌈occupancy / units⌉`). With a
//! complete schedule it additionally replays the per-step reservations
//! modulo the kernel length — the same folding the certifier uses — to
//! report utilization (integer permille, no floats) and how many
//! kernel steps run every unit busy.
//!
//! Two findings come out of the comparison:
//! * `A002` on the **binding class** — the class whose bound is the
//!   resource floor; adding units anywhere else cannot help.
//! * `A005` on the graph — whether the recurrence bound or the
//!   resource bound is the binding constraint overall, i.e. whether
//!   further rotation or further hardware is the lever that can still
//!   shorten the kernel.

use crate::analysis::report::{AnalysisReport, ClassProfile, SaturationSection};
use crate::analysis::AnalysisContext;
use crate::diag::{Code, Diagnostic, Locus};

pub(crate) fn run(ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
    let dfg = ctx.dfg;
    let spec = ctx.spec;

    // Dynamic profiling needs a complete schedule with a real kernel.
    let view = ctx.schedule.filter(|s| {
        s.kernel_length >= 1
            && s.starts.len() == dfg.node_count()
            && dfg.node_ids().all(|v| s.starts.get(v).is_some())
    });

    let mut classes = Vec::with_capacity(spec.classes().len());
    for (c, class) in spec.classes().iter().enumerate() {
        let mut occupancy = 0_u64;
        let mut usage = view.map(|s| vec![0_u64; s.kernel_length as usize]);
        for (v, node) in dfg.nodes() {
            if spec.class_of(node.op()) != Some(c) {
                continue;
            }
            let busy = u64::from(class.busy_steps(node.time()));
            occupancy = occupancy.saturating_add(busy);
            if let (Some(usage), Some(s)) = (usage.as_mut(), view) {
                // Fold the reservation [start, start + busy) modulo L,
                // exactly like the certifier's occupancy replay.
                let l = u64::from(s.kernel_length);
                let start = u64::from(s.starts.get(v).unwrap_or(1));
                let whole = busy / l;
                for slot in usage.iter_mut() {
                    *slot = slot.saturating_add(whole);
                }
                for k in 0..busy % l {
                    let slot = ((start.saturating_sub(1)).saturating_add(k) % l) as usize;
                    usage[slot] = usage[slot].saturating_add(1);
                }
            }
        }
        let bound = if class.units > 0 {
            occupancy.div_ceil(u64::from(class.units))
        } else {
            0
        };
        let (utilization_permille, saturated_steps) = match (&usage, view) {
            (Some(usage), Some(s)) if class.units > 0 => {
                let capacity = u64::from(class.units) * u64::from(s.kernel_length);
                let permille = occupancy.saturating_mul(1000) / capacity.max(1);
                let saturated = usage
                    .iter()
                    .filter(|&&u| u >= u64::from(class.units))
                    .count();
                (
                    Some(u32::try_from(permille).unwrap_or(u32::MAX)),
                    Some(u32::try_from(saturated).unwrap_or(u32::MAX)),
                )
            }
            _ => (None, None),
        };
        classes.push(ClassProfile {
            name: class.name.clone(),
            units: class.units,
            occupancy,
            bound,
            utilization_permille,
            saturated_steps,
        });
    }

    // The binding class: largest lower bound, first by spec order on
    // ties; only classes that actually constrain (bound > 0) qualify.
    let binding = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.bound > 0)
        .max_by(|&(i, a), &(j, b)| a.bound.cmp(&b.bound).then(j.cmp(&i)))
        .map(|(i, _)| i);
    let resource_floor = classes.iter().map(|c| c.bound).max().unwrap_or(0);
    let rb = ctx.recurrence_bound();

    if let Some(i) = binding {
        let c = &classes[i];
        report.findings.push(
            Diagnostic::new(
                Code::SaturatedClass,
                Locus::Class(c.name.clone()),
                format!(
                    "class \"{}\" is the resource floor: occupancy {} over {} unit(s) forces every kernel to at least {} step(s)",
                    c.name, c.occupancy, c.units, c.bound
                ),
            )
            .with_hint("only more units in this class can lower the resource bound"),
        );
    }
    if dfg.node_count() > 0 {
        if let Some(rb) = rb {
            let (verdict, hint) = match u64::from(rb).cmp(&resource_floor) {
                std::cmp::Ordering::Greater => (
                    format!(
                        "the recurrence bound {rb} exceeds the resource bound {resource_floor}: rotation, not hardware, is the binding constraint"
                    ),
                    "only restructuring the critical cycle can shorten the kernel further",
                ),
                std::cmp::Ordering::Less => (
                    format!(
                        "the resource bound {resource_floor} exceeds the recurrence bound {rb}: hardware, not rotation, is the binding constraint"
                    ),
                    "adding units to the binding class can still shorten the kernel",
                ),
                std::cmp::Ordering::Equal => (
                    format!("recurrence and resource bounds tie at {rb}: the kernel is balanced"),
                    "shortening the kernel needs both more units and a restructured critical cycle",
                ),
            };
            report.findings.push(
                Diagnostic::new(Code::BindingConstraint, Locus::Graph, verdict).with_hint(hint),
            );
        }
    }

    report.saturation = Some(SaturationSection {
        kernel_length: view.map(|s| s.kernel_length),
        binding_class: binding.map(|i| classes[i].name.clone()),
        recurrence_bound: rb,
        classes,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, ScheduleView};
    use crate::certify::StartTimes;
    use crate::spec::ResourceSpec;
    use rotsched_dfg::{Dfg, OpKind, Retiming};

    fn biquad() -> Dfg {
        let mut g = Dfg::new("biquad");
        let m0 = g.add_node("m0", OpKind::Mul, 2);
        let m1 = g.add_node("m1", OpKind::Mul, 2);
        let a0 = g.add_node("a0", OpKind::Add, 1);
        g.add_edge(m0, a0, 0).unwrap();
        g.add_edge(m1, a0, 0).unwrap();
        g.add_edge(a0, m0, 1).unwrap();
        g
    }

    #[test]
    fn static_profile_reports_bounds_and_binding_class() {
        let g = biquad();
        let spec = ResourceSpec::adders_multipliers(1, 1, false);
        let report = analyze(&g, &spec, None);
        let sat = report.saturation.expect("always present");
        assert_eq!(sat.kernel_length, None);
        assert_eq!(sat.classes.len(), 2);
        assert_eq!(sat.classes[0].name, "adder");
        assert_eq!(sat.classes[0].occupancy, 1);
        assert_eq!(sat.classes[0].bound, 1);
        assert_eq!(sat.classes[1].occupancy, 4);
        assert_eq!(sat.classes[1].bound, 4);
        assert_eq!(sat.binding_class.as_deref(), Some("multiplier"));
        assert!(sat.classes.iter().all(|c| c.utilization_permille.is_none()));
        assert!(report
            .findings
            .iter()
            .any(|d| d.code == Code::SaturatedClass && d.message.contains("multiplier")));
    }

    #[test]
    fn binding_constraint_compares_recurrence_and_resource() {
        let g = biquad();
        // Recurrence: cycle m0 -> a0 -> m0, T = 3, D = 1 -> rb = 3.
        // Unlimited resources -> resource floor is tiny -> resource < rb.
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let a005 = report
            .findings
            .iter()
            .find(|d| d.code == Code::BindingConstraint)
            .expect("emitted on nonempty graphs");
        assert!(a005.message.contains("recurrence bound 3"));
        assert!(a005.message.contains("rotation, not hardware"));

        // One non-pipelined multiplier -> resource floor 4 > rb 3.
        let report = analyze(&g, &ResourceSpec::adders_multipliers(1, 1, false), None);
        let a005 = report
            .findings
            .iter()
            .find(|d| d.code == Code::BindingConstraint)
            .unwrap();
        assert!(a005.message.contains("hardware, not rotation"));
    }

    #[test]
    fn scheduled_profile_folds_reservations_modulo_kernel() {
        let g = biquad();
        let spec = ResourceSpec::adders_multipliers(1, 2, false);
        let r = Retiming::zero(&g);
        let mut starts = StartTimes::empty(&g);
        // L = 3: m0 and m1 both start at 1 (2 units), a0 at 3.
        for (name, s) in [("m0", 1), ("m1", 1), ("a0", 3)] {
            starts.set(g.node_by_name(name).unwrap(), s);
        }
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 3,
        };
        let report = analyze(&g, &spec, Some(&view));
        let sat = report.saturation.expect("always present");
        assert_eq!(sat.kernel_length, Some(3));
        let mult = &sat.classes[1];
        // Occupancy 4 over 2 units x 3 steps = 666 permille; both
        // multipliers overlap in steps 1-2, so 2 of 3 steps saturate.
        assert_eq!(mult.utilization_permille, Some(666));
        assert_eq!(mult.saturated_steps, Some(2));
        let add = &sat.classes[0];
        assert_eq!(add.utilization_permille, Some(333));
        assert_eq!(add.saturated_steps, Some(1));
    }

    #[test]
    fn incomplete_schedule_degrades_to_static_profile() {
        let g = biquad();
        let spec = ResourceSpec::adders_multipliers(1, 1, false);
        let r = Retiming::zero(&g);
        let starts = StartTimes::empty(&g); // nothing scheduled
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 3,
        };
        let report = analyze(&g, &spec, Some(&view));
        let sat = report.saturation.expect("always present");
        assert_eq!(sat.kernel_length, None);
        assert!(sat.classes.iter().all(|c| c.saturated_steps.is_none()));
    }

    #[test]
    fn zero_unit_class_has_no_bound_and_no_utilization() {
        let mut g = Dfg::new("g");
        g.add_node("m", OpKind::Mul, 2);
        let spec = ResourceSpec::adders_multipliers(1, 0, false);
        let report = analyze(&g, &spec, None);
        let sat = report.saturation.expect("always present");
        assert_eq!(sat.classes[1].bound, 0);
        assert_eq!(sat.binding_class, None);
    }
}
