//! The [`AnalysisReport`]: every pass's section plus the combined
//! findings, with text and byte-stable JSON renderings.
//!
//! The JSON discipline matches the trace layer (`rotsched-trace-v1`):
//! hand-rolled, fixed key order, no floats (ratios are exact
//! numerator/denominator pairs, utilizations are integer permille), so
//! equal inputs produce byte-identical output on every platform. The
//! schema string is `rotsched-analysis-v1`; key order is frozen —
//! fields are only ever appended.
//!
//! Sections always render in schema order regardless of the order the
//! passes ran in; absent sections render as `null` (a pass bailed on a
//! degenerate input) rather than being omitted, so consumers can
//! distinguish "not computed" from "schema too old".

use rotsched_dfg::{Dfg, NodeId};

use crate::diag::{json_string, render_json_array, Diagnostic, Severity};

/// An exact non-negative rational in lowest terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RatioU64 {
    /// Numerator.
    pub num: u64,
    /// Denominator (never 0).
    pub den: u64,
}

impl RatioU64 {
    /// Builds the reduced form of `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is 0.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        let g = gcd(num.max(1), den);
        RatioU64 {
            num: num / g,
            den: den / g,
        }
    }

    /// The ceiling `⌈num / den⌉`.
    #[must_use]
    pub fn ceil(self) -> u64 {
        self.num.div_ceil(self.den)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// The critical-cycle pass's section: the cycle achieving the maximum
/// time-to-delay ratio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalCycleSection {
    /// The cycle's nodes in traversal order, starting at its smallest
    /// node index.
    pub nodes: Vec<u32>,
    /// The cycle's edges as `(from, to)` node-index pairs, parallel to
    /// `nodes` (edge `i` leaves `nodes[i]`).
    pub edges: Vec<(u32, u32)>,
    /// Total computation time `T(C)` around the cycle.
    pub total_time: u64,
    /// Total (retimed) delay count `D(C)` around the cycle.
    pub total_delays: u64,
    /// The maximum cycle ratio `max_C T(C)/D(C)`, exact and reduced.
    pub ratio: RatioU64,
    /// `⌈ratio⌉` — the iteration bound.
    pub iteration_bound: u64,
}

/// One resource class's row in the saturation profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassProfile {
    /// Class name.
    pub name: String,
    /// Units allocated.
    pub units: u32,
    /// Total computation-time demand of the operations bound to the
    /// class (one step per operation for pipelined classes).
    pub occupancy: u64,
    /// The class's lower bound on the kernel length, `⌈occupancy /
    /// units⌉` (0 when the class has no units or no demand).
    pub bound: u64,
    /// Used-slot share of `kernel_length × units`, in permille
    /// (`None` without a schedule or for zero-unit classes).
    pub utilization_permille: Option<u32>,
    /// Kernel steps where every unit is busy (`None` without a
    /// schedule or for zero-unit classes).
    pub saturated_steps: Option<u32>,
}

/// The resource-saturation pass's section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaturationSection {
    /// The profiled kernel length (`None` when analyzing statically).
    pub kernel_length: Option<u32>,
    /// The binding class: the one with the largest lower bound (ties
    /// to the first by spec order), when any class binds at all.
    pub binding_class: Option<String>,
    /// The independent recurrence bound (`None` on zero-delay-cycle
    /// inputs), for the recurrence-vs-resource comparison.
    pub recurrence_bound: Option<u32>,
    /// Per-class profiles, in spec order.
    pub classes: Vec<ClassProfile>,
}

/// One candidate rotation and its register-pressure delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateDelta {
    /// The candidate node's index.
    pub node: u32,
    /// The change in the static register count (`Σ d_r`) rotating the
    /// node alone would cause: out-degree minus in-degree, self-loops
    /// excluded.
    pub delta: i64,
}

/// The lifetime / register-pressure pass's section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PressureSection {
    /// `Σ_e max(d_r(e), 0)` — the registers the current retiming
    /// implies, counting each fanout edge separately (an upper bound
    /// on shared-register implementations).
    pub static_registers: u64,
    /// Maximum simultaneously live values over the kernel steps
    /// (`None` without a complete schedule).
    pub max_live: Option<u64>,
    /// First kernel step (1-based) achieving `max_live`.
    pub peak_step: Option<u32>,
    /// The static-register delta of rotating the whole candidate set
    /// at once (`None` without a schedule).
    pub rotation_set_delta: Option<i64>,
    /// Candidate rotations in node-index order: the first control
    /// step's nodes when a schedule is given, otherwise every
    /// down-rotatable singleton.
    pub candidates: Vec<CandidateDelta>,
}

/// The zero-delay chain-depth pass's section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSection {
    /// The deepest zero-delay chain, in total computation time — the
    /// retimed graph's critical path.
    pub max_depth: u64,
    /// The node the deepest chain ends at (smallest index on ties);
    /// `None` only for empty graphs.
    pub tail: Option<u32>,
    /// `(depth, node count)` pairs, ascending by depth: how many nodes
    /// terminate a chain of each depth.
    pub histogram: Vec<(u64, u32)>,
}

/// The full analysis report: one optional section per pass, the lint
/// findings for the same input, and the analysis findings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The analyzed graph's name.
    pub graph: String,
    /// The analyzed graph's structure fingerprint.
    pub fingerprint: u64,
    /// Node count.
    pub nodes: u32,
    /// Edge count.
    pub edges: u32,
    /// Whether the graph has any cycle at all.
    pub acyclic: bool,
    /// The critical-cycle section (`None` when acyclic or degenerate).
    pub critical_cycle: Option<CriticalCycleSection>,
    /// The resource-saturation section.
    pub saturation: Option<SaturationSection>,
    /// The register-pressure section (`None` under an illegal
    /// retiming).
    pub pressure: Option<PressureSection>,
    /// The chain-depth section (`None` when a zero-delay cycle makes
    /// depth infinite).
    pub chains: Option<ChainSection>,
    /// The lint engine's findings for the same input.
    pub lints: Vec<Diagnostic>,
    /// The analysis findings (`A0xx`), in canonical order.
    pub findings: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report for `dfg`, to be filled by the passes.
    #[must_use]
    pub fn new(dfg: &Dfg) -> Self {
        AnalysisReport {
            graph: dfg.name().to_owned(),
            fingerprint: dfg.structure_fingerprint(),
            nodes: dfg.node_count() as u32,
            edges: dfg.edge_count() as u32,
            acyclic: true,
            critical_cycle: None,
            saturation: None,
            pressure: None,
            chains: None,
            lints: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Whether the lint findings include any error — the input is not
    /// a sane scheduling instance and the sections may be partial.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.lints.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The human-readable multi-line rendering.
    #[must_use]
    pub fn render_text(&self, dfg: &Dfg) -> String {
        let label = |i: u32| {
            let v = NodeId::from_index(i as usize);
            format!("{}#{}", dfg.node(v).name(), v.index())
        };
        let mut out = format!(
            "analysis: {} ({} nodes, {} edges)\n",
            self.graph, self.nodes, self.edges
        );
        if let Some(chains) = &self.chains {
            out.push_str(&format!(
                "  critical path: {} control steps{}\n",
                chains.max_depth,
                chains
                    .tail
                    .map_or_else(String::new, |t| format!(" (tail {})", label(t)))
            ));
        }
        match &self.critical_cycle {
            Some(cc) => {
                out.push_str(&format!(
                    "  iteration bound: {} (critical cycle ratio {}/{})\n",
                    cc.iteration_bound, cc.ratio.num, cc.ratio.den
                ));
                let path: Vec<String> = cc.nodes.iter().map(|&v| label(v)).collect();
                out.push_str(&format!(
                    "  critical cycle: {} (T={}, D={})\n",
                    path.join(" -> "),
                    cc.total_time,
                    cc.total_delays
                ));
            }
            None if self.acyclic => {
                out.push_str("  iteration bound: 1 (acyclic)\n");
            }
            None => {}
        }
        if let Some(sat) = &self.saturation {
            let resource_bound = sat.classes.iter().map(|c| c.bound).max().unwrap_or(0);
            let binding = match (&sat.binding_class, sat.recurrence_bound) {
                (Some(class), Some(rb)) => {
                    let verdict = match u64::from(rb).cmp(&resource_bound) {
                        std::cmp::Ordering::Greater => "recurrence".to_owned(),
                        std::cmp::Ordering::Less => format!("resource ({class})"),
                        std::cmp::Ordering::Equal => "tie".to_owned(),
                    };
                    format!(
                        "  recurrence bound: {rb}, resource bound: {resource_bound} -> binding: {verdict}\n"
                    )
                }
                _ => String::new(),
            };
            out.push_str(&binding);
            if !sat.classes.is_empty() {
                out.push_str("  classes:\n");
                for c in &sat.classes {
                    let mut line = format!(
                        "    {}: {} unit(s), occupancy {}, bound {}",
                        c.name, c.units, c.occupancy, c.bound
                    );
                    if let Some(p) = c.utilization_permille {
                        line.push_str(&format!(", utilization {}.{}%", p / 10, p % 10));
                    }
                    if let (Some(s), Some(l)) = (c.saturated_steps, sat.kernel_length) {
                        line.push_str(&format!(", saturated {s}/{l} step(s)"));
                    }
                    out.push_str(&line);
                    out.push('\n');
                }
            }
        }
        if let Some(p) = &self.pressure {
            let mut line = format!(
                "  register pressure: {} static register(s)",
                p.static_registers
            );
            if let (Some(max), Some(step)) = (p.max_live, p.peak_step) {
                line.push_str(&format!(", max {max} live at step {step}"));
            }
            out.push_str(&line);
            out.push('\n');
            if !p.candidates.is_empty() {
                let cands: Vec<String> = p
                    .candidates
                    .iter()
                    .map(|c| format!("{} (delta {:+})", label(c.node), c.delta))
                    .collect();
                out.push_str(&format!("  rotation candidates: {}\n", cands.join(", ")));
            }
        }
        if let Some(chains) = &self.chains {
            let hist: Vec<String> = chains
                .histogram
                .iter()
                .map(|(d, c)| format!("{d}:{c}"))
                .collect();
            out.push_str(&format!(
                "  zero-delay chains: max depth {}, histogram {}\n",
                chains.max_depth,
                if hist.is_empty() {
                    "-".to_owned()
                } else {
                    hist.join(" ")
                }
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("findings:\n");
            for d in &self.findings {
                out.push_str(&format!("  {}\n", d.render_text(dfg)));
            }
        }
        if !self.lints.is_empty() {
            out.push_str("lints:\n");
            for d in &self.lints {
                out.push_str(&format!("  {}\n", d.render_text(dfg)));
            }
        }
        out
    }

    /// The byte-stable JSON rendering (schema `rotsched-analysis-v1`).
    #[must_use]
    pub fn render_json(&self, dfg: &Dfg) -> String {
        let node_ref = |i: u32| {
            format!(
                "{{\"index\":{},\"name\":{}}}",
                i,
                json_string(dfg.node(NodeId::from_index(i as usize)).name())
            )
        };
        let mut out = String::from("{\"schema\":\"rotsched-analysis-v1\"");
        out.push_str(&format!(",\"graph\":{}", json_string(&self.graph)));
        out.push_str(&format!(",\"fingerprint\":\"{:016x}\"", self.fingerprint));
        out.push_str(&format!(
            ",\"nodes\":{},\"edges\":{}",
            self.nodes, self.edges
        ));
        out.push_str(&format!(",\"acyclic\":{}", self.acyclic));

        out.push_str(",\"critical_cycle\":");
        match &self.critical_cycle {
            None => out.push_str("null"),
            Some(cc) => {
                let nodes: Vec<String> = cc.nodes.iter().map(|&v| node_ref(v)).collect();
                let edges: Vec<String> = cc
                    .edges
                    .iter()
                    .map(|&(f, t)| format!("{{\"from\":{f},\"to\":{t}}}"))
                    .collect();
                out.push_str(&format!(
                    "{{\"nodes\":[{}],\"edges\":[{}],\"total_time\":{},\"total_delays\":{},\"ratio\":{{\"num\":{},\"den\":{}}},\"iteration_bound\":{}}}",
                    nodes.join(","),
                    edges.join(","),
                    cc.total_time,
                    cc.total_delays,
                    cc.ratio.num,
                    cc.ratio.den,
                    cc.iteration_bound,
                ));
            }
        }

        out.push_str(",\"saturation\":");
        match &self.saturation {
            None => out.push_str("null"),
            Some(sat) => {
                let classes: Vec<String> = sat
                    .classes
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"name\":{},\"units\":{},\"occupancy\":{},\"bound\":{},\"utilization_permille\":{},\"saturated_steps\":{}}}",
                            json_string(&c.name),
                            c.units,
                            c.occupancy,
                            c.bound,
                            opt_num(c.utilization_permille),
                            opt_num(c.saturated_steps),
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "{{\"kernel_length\":{},\"binding_class\":{},\"recurrence_bound\":{},\"classes\":[{}]}}",
                    opt_num(sat.kernel_length),
                    sat.binding_class
                        .as_deref()
                        .map_or_else(|| "null".to_owned(), json_string),
                    opt_num(sat.recurrence_bound),
                    classes.join(","),
                ));
            }
        }

        out.push_str(",\"register_pressure\":");
        match &self.pressure {
            None => out.push_str("null"),
            Some(p) => {
                let cands: Vec<String> = p
                    .candidates
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"index\":{},\"name\":{},\"delta\":{}}}",
                            c.node,
                            json_string(dfg.node(NodeId::from_index(c.node as usize)).name()),
                            c.delta
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "{{\"static_registers\":{},\"max_live\":{},\"peak_step\":{},\"rotation_set_delta\":{},\"candidates\":[{}]}}",
                    p.static_registers,
                    opt_num(p.max_live),
                    opt_num(p.peak_step),
                    p.rotation_set_delta
                        .map_or_else(|| "null".to_owned(), |d| d.to_string()),
                    cands.join(","),
                ));
            }
        }

        out.push_str(",\"zero_delay_chains\":");
        match &self.chains {
            None => out.push_str("null"),
            Some(chains) => {
                let hist: Vec<String> = chains
                    .histogram
                    .iter()
                    .map(|(d, c)| format!("{{\"depth\":{d},\"count\":{c}}}"))
                    .collect();
                out.push_str(&format!(
                    "{{\"max_depth\":{},\"tail\":{},\"histogram\":[{}]}}",
                    chains.max_depth,
                    chains.tail.map_or_else(|| "null".to_owned(), node_ref),
                    hist.join(","),
                ));
            }
        }

        out.push_str(",\"lints\":");
        out.push_str(&render_json_array(&self.lints, dfg));
        out.push_str(",\"findings\":");
        out.push_str(&render_json_array(&self.findings, dfg));
        out.push('}');
        out
    }
}

fn opt_num<T: core::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    #[test]
    fn ratio_reduces_and_ceils() {
        let r = RatioU64::new(16, 4);
        assert_eq!((r.num, r.den), (4, 1));
        assert_eq!(r.ceil(), 4);
        let r = RatioU64::new(16, 3);
        assert_eq!((r.num, r.den), (16, 3));
        assert_eq!(r.ceil(), 6);
        let r = RatioU64::new(0, 7);
        assert_eq!(r.ceil(), 0);
    }

    #[test]
    fn empty_report_renders_all_sections_null() {
        let g = Dfg::new("empty");
        let report = AnalysisReport::new(&g);
        let json = report.render_json(&g);
        assert!(json.starts_with("{\"schema\":\"rotsched-analysis-v1\""));
        assert!(json.contains("\"critical_cycle\":null"));
        assert!(json.contains("\"saturation\":null"));
        assert!(json.contains("\"register_pressure\":null"));
        assert!(json.contains("\"zero_delay_chains\":null"));
        assert!(json.ends_with("\"lints\":[],\"findings\":[]}"));
    }

    #[test]
    fn graph_name_is_escaped() {
        let g = Dfg::new("we\"ird");
        let report = AnalysisReport::new(&g);
        assert!(report.render_json(&g).contains("\"graph\":\"we\\\"ird\""));
    }

    #[test]
    fn text_rendering_includes_the_cycle_path() {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        let mut report = AnalysisReport::new(&g);
        report.acyclic = false;
        report.critical_cycle = Some(CriticalCycleSection {
            nodes: vec![m.index() as u32, a.index() as u32],
            edges: vec![(0, 1), (1, 0)],
            total_time: 3,
            total_delays: 1,
            ratio: RatioU64::new(3, 1),
            iteration_bound: 3,
        });
        let text = report.render_text(&g);
        assert!(text.contains("iteration bound: 3"));
        assert!(text.contains("critical cycle: m#0 -> a#1 (T=3, D=1)"));
    }
}
