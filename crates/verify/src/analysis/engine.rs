//! A small fixed-point dataflow engine over the SoA [`CsrGraph`].
//!
//! The passes that propagate per-node facts along edges (longest
//! zero-delay chains, parametric Bellman–Ford cycle probes) share this
//! one worklist-free round iterator instead of each hand-rolling a
//! traversal: every round sweeps the flat edge arrays **in edge-index
//! order**, applies the caller's transfer function, and stops when a
//! full round changes nothing or the round budget runs out. The sweep
//! order is deterministic, so every result (and therefore every
//! rendered report) is byte-stable.
//!
//! A round budget of `node_count + 1` gives Bellman–Ford semantics:
//! facts over cycle-free propagation stabilize within `n` rounds, so a
//! run that still changes in round `n + 1` has a reinforcing cycle —
//! the engine reports `converged = false` and the caller decides what
//! that means (a zero-delay cycle for chain depth, a
//! better-than-`λ` cycle for the ratio probe).

use rotsched_dfg::CsrGraph;

/// Which way facts flow along an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// From `edge_from` to `edge_to` (producer facts reach consumers).
    Forward,
    /// From `edge_to` to `edge_from` (consumer facts reach producers).
    Backward,
}

/// The result of a fixed-point run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedPoint<T> {
    /// The per-node values after the last completed round.
    pub values: Vec<T>,
    /// Completed sweep rounds (including the final no-change round).
    pub rounds: u32,
    /// Whether a round with no changes was reached within the budget.
    /// `false` means a reinforcing cycle kept the facts growing.
    pub converged: bool,
}

/// Iterates `transfer` over every edge until a fixed point.
///
/// Per edge, `transfer(e, source_value, dest_value)` returns
/// `Some(new_dest_value)` to update the destination (`edge_to` under
/// [`Direction::Forward`], `edge_from` under [`Direction::Backward`])
/// or `None` to leave it unchanged. Returning an unchanged value is
/// counted as a change, so transfer functions should return `None`
/// when nothing improves — that is what terminates the run.
///
/// `max_rounds` bounds the sweep count; `node_count + 1` is the usual
/// Bellman–Ford-style budget (see the module docs).
pub fn fixed_point<T: Clone>(
    csr: &CsrGraph,
    direction: Direction,
    init: Vec<T>,
    max_rounds: u32,
    mut transfer: impl FnMut(usize, &T, &T) -> Option<T>,
) -> FixedPoint<T> {
    debug_assert_eq!(init.len(), csr.node_count());
    let mut values = init;
    let m = csr.edge_count();
    let mut rounds = 0_u32;
    while rounds < max_rounds {
        rounds += 1;
        let mut changed = false;
        for e in 0..m {
            let (src, dst) = match direction {
                Direction::Forward => (csr.edge_from()[e] as usize, csr.edge_to()[e] as usize),
                Direction::Backward => (csr.edge_to()[e] as usize, csr.edge_from()[e] as usize),
            };
            if let Some(new) = transfer(e, &values[src], &values[dst]) {
                values[dst] = new;
                changed = true;
            }
        }
        if !changed {
            return FixedPoint {
                values,
                rounds,
                converged: true,
            };
        }
    }
    FixedPoint {
        values,
        rounds,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::{Dfg, OpKind};

    fn chain() -> Dfg {
        let mut g = Dfg::new("chain");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 2);
        let c = g.add_node("c", OpKind::Add, 3);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        g
    }

    #[test]
    fn forward_longest_path_converges() {
        let g = chain();
        let csr = g.csr();
        let times = csr.times().to_vec();
        let init: Vec<u64> = times.iter().map(|&t| u64::from(t)).collect();
        let n = csr.node_count() as u32;
        let fp = fixed_point(csr, Direction::Forward, init, n + 1, |e, src, dst| {
            let _ = e;
            let candidate = src + u64::from(times[csr.edge_to()[e] as usize]);
            (candidate > *dst).then_some(candidate)
        });
        assert!(fp.converged);
        assert_eq!(fp.values, vec![1, 3, 6]);
    }

    #[test]
    fn backward_direction_flows_against_edges() {
        let g = chain();
        let csr = g.csr();
        // Count of reachable sinks-to-node hops: distance to the chain end.
        let init = vec![0_u64; csr.node_count()];
        let fp = fixed_point(csr, Direction::Backward, init, 4, |_, src, dst| {
            let candidate = src + 1;
            (candidate > *dst).then_some(candidate)
        });
        assert!(fp.converged);
        assert_eq!(fp.values, vec![2, 1, 0]);
    }

    #[test]
    fn reinforcing_cycle_reports_non_convergence() {
        let mut g = Dfg::new("loop");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let csr = g.csr();
        let n = csr.node_count() as u32;
        let fp = fixed_point(
            csr,
            Direction::Forward,
            vec![0_u64; 2],
            n + 1,
            |_, src, dst| {
                let candidate = src + 1;
                (candidate > *dst).then_some(candidate)
            },
        );
        assert!(!fp.converged);
        assert_eq!(fp.rounds, n + 1);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = Dfg::new("empty");
        let fp = fixed_point::<u64>(g.csr(), Direction::Forward, Vec::new(), 8, |_, _, _| None);
        assert!(fp.converged);
        assert_eq!(fp.rounds, 1);
    }
}
