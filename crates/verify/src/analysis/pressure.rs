//! Lifetime and register-pressure analysis under the current retiming.
//!
//! Every retimed delay is a value that must survive at least one
//! iteration boundary, so `Σ_e max(d_r(e), 0)` — counting each fanout
//! edge separately — is the **static** register count and an upper
//! bound on any shared-register implementation. With a complete
//! schedule the pass also replays per-edge lifetimes against the
//! kernel: a value produced by `u` at `s(u) + t(u)` and consumed by
//! `v` at `s(v) + d_r(e)·L` is live for the steps in between, folded
//! modulo `L`; the per-step live counts give the pressure profile and
//! its peak (`A003`).
//!
//! The pass also prices the next move: for each candidate rotation
//! (the first control step's nodes when a schedule is given, otherwise
//! every down-rotatable node) it reports the static-register delta the
//! rotation would cause — out-degree minus in-degree, self-loops
//! excluded — so a search layer can weigh kernel length against
//! register cost before committing.

use crate::analysis::report::{AnalysisReport, CandidateDelta, PressureSection};
use crate::analysis::AnalysisContext;
use crate::diag::{Code, Diagnostic, Locus};
use rotsched_dfg::NodeId;

pub(crate) fn run(ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
    let csr = ctx.cache.csr();
    if ctx.cache.has_negative_retimed_delay() {
        return; // illegal retiming: lifetimes are meaningless (E007)
    }
    let retimed = ctx.cache.retimed_delays();
    let n = csr.node_count();
    let m = csr.edge_count();

    let static_registers: u64 = retimed.iter().map(|&d| d.max(0) as u64).sum();

    // Dynamic profile and candidate set need a complete schedule.
    let view = ctx.schedule.filter(|s| {
        s.kernel_length >= 1
            && s.starts.len() == n
            && (0..n).all(|v| s.starts.get(NodeId::from_index(v)).is_some())
    });

    let (max_live, peak_step) = match view {
        Some(s) => {
            let l = i64::from(s.kernel_length);
            let mut live = vec![0_u64; l as usize];
            let endpoints = csr.edge_from().iter().zip(csr.edge_to());
            for ((&from, &to), &d_r) in endpoints.zip(retimed) {
                let u = NodeId::from_index(from as usize);
                let v = NodeId::from_index(to as usize);
                let (Some(su), Some(sv)) = (s.starts.get(u), s.starts.get(v)) else {
                    continue;
                };
                let produced = i64::from(su) + i64::from(csr.times()[u.index()]);
                let consumed = i64::from(sv) + d_r.saturating_mul(l);
                let duration = (consumed - produced).max(0);
                // Fold [produced, consumed) onto the kernel steps.
                let whole = (duration / l) as u64;
                for slot in &mut live {
                    *slot = slot.saturating_add(whole);
                }
                for k in 0..duration % l {
                    let a = (produced - 1 + k).rem_euclid(l) as usize;
                    live[a] = live[a].saturating_add(1);
                }
            }
            let max = live.iter().copied().max().unwrap_or(0);
            let peak = live.iter().position(|&x| x == max).unwrap_or(0) as u32 + 1;
            (Some(max), Some(peak))
        }
        None => (None, None),
    };

    if let (Some(max), Some(step)) = (max_live, peak_step) {
        report.findings.push(
            Diagnostic::new(
                Code::RegisterPressurePeak,
                Locus::Step(step),
                format!(
                    "register pressure peaks at {max} live value(s) in kernel step {step} ({static_registers} static register(s) total)"
                ),
            )
            .with_hint("rotations with negative delta below reduce the static count"),
        );
    }

    // Per-node out − in degree, self-loops excluded, for the deltas.
    let mut out_deg = vec![0_i64; n];
    let mut in_deg = vec![0_i64; n];
    for e in 0..m {
        let u = csr.edge_from()[e] as usize;
        let v = csr.edge_to()[e] as usize;
        if u == v {
            continue;
        }
        out_deg[u] += 1;
        in_deg[v] += 1;
    }

    // Candidate set: the nodes one down-rotation would move.
    let in_set: Vec<bool> = (0..n)
        .map(|v| match view {
            Some(s) => s.starts.get(NodeId::from_index(v)) == Some(1),
            // Statically: down-rotatable, i.e. every in-edge carries a
            // (retimed) delay (vacuously true for source nodes).
            None => csr
                .in_range(v)
                .all(|i| retimed[csr.in_edge_ids()[i].index()] >= 1),
        })
        .collect();
    let candidates: Vec<CandidateDelta> = (0..n)
        .filter(|&v| in_set[v])
        .map(|v| CandidateDelta {
            node: v as u32,
            delta: out_deg[v] - in_deg[v],
        })
        .collect();

    // Rotating the whole first-step set at once only moves delays
    // across the set boundary; internal edges cancel.
    let rotation_set_delta = view.map(|_| {
        let mut delta = 0_i64;
        for e in 0..m {
            let u = csr.edge_from()[e] as usize;
            let v = csr.edge_to()[e] as usize;
            match (in_set[u], in_set[v]) {
                (true, false) => delta += 1,
                (false, true) => delta -= 1,
                _ => {}
            }
        }
        delta
    });

    report.pressure = Some(PressureSection {
        static_registers,
        max_live,
        peak_step,
        rotation_set_delta,
        candidates,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, ScheduleView};
    use crate::certify::StartTimes;
    use crate::spec::ResourceSpec;
    use rotsched_dfg::{Dfg, OpKind, Retiming};

    fn iir() -> Dfg {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        g
    }

    #[test]
    fn static_count_sums_retimed_delays() {
        let g = iir();
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let p = report.pressure.expect("legal retiming");
        assert_eq!(p.static_registers, 1);
        assert_eq!(p.max_live, None);
        assert_eq!(p.rotation_set_delta, None);
        // Statically only m is down-rotatable (its in-edge has d = 1);
        // a's in-edge m -> a has d = 0.
        assert_eq!(p.candidates.len(), 1);
        assert_eq!(p.candidates[0].node, 0);
        assert_eq!(p.candidates[0].delta, 0);
    }

    #[test]
    fn scheduled_profile_counts_live_values() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::zero(&g);
        let mut starts = StartTimes::empty(&g);
        starts.set(m, 1);
        starts.set(a, 3);
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 3,
        };
        let report = analyze(&g, &ResourceSpec::unlimited(), Some(&view));
        let p = report.pressure.expect("legal retiming");
        // m -> a (d_r 0): produced 1 + 2 = 3, consumed at 3 -> dead.
        // a -> m (d_r 1): produced 3 + 1 = 4, consumed 1 + 3 = 4 -> dead.
        // (Values handed off back-to-back never cross a step boundary.)
        assert_eq!(p.max_live, Some(0));
        assert_eq!(p.static_registers, 1);
        // First-step candidate set = {m}; rotating it moves the m -> a
        // delay forward (+1) and consumes a -> m's (-1): net 0.
        assert_eq!(p.candidates.len(), 1);
        assert_eq!(p.rotation_set_delta, Some(0));
        assert!(report
            .findings
            .iter()
            .any(|d| d.code == Code::RegisterPressurePeak));
    }

    #[test]
    fn long_lifetime_spans_kernel_steps() {
        let mut g = Dfg::new("span");
        let p = g.add_node("p", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Add, 1);
        g.add_edge(p, c, 2).unwrap();
        let r = Retiming::zero(&g);
        let mut starts = StartTimes::empty(&g);
        starts.set(p, 1);
        starts.set(c, 2);
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 2,
        };
        let report = analyze(&g, &ResourceSpec::unlimited(), Some(&view));
        let pr = report.pressure.expect("legal retiming");
        // Produced at 1 + 1 = 2, consumed at 2 + 2*2 = 6: live for 4
        // steps over a 2-step kernel -> 2 live copies in every step.
        assert_eq!(pr.max_live, Some(2));
        assert_eq!(pr.peak_step, Some(1));
    }

    #[test]
    fn illegal_retiming_suppresses_the_section() {
        let g = iir();
        let a = g.node_by_name("a").unwrap();
        let r = Retiming::from_set(&g, [a]); // a -> m drops to d_r = 0, m -> a to -1
        let starts = StartTimes::from_fn(&g, |_| Some(1));
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 1,
        };
        let report = analyze(&g, &ResourceSpec::unlimited(), Some(&view));
        assert!(report.pressure.is_none());
        assert!(!report
            .findings
            .iter()
            .any(|d| d.code == Code::RegisterPressurePeak));
    }

    #[test]
    fn self_loops_do_not_count_toward_deltas() {
        let mut g = Dfg::new("self");
        let v = g.add_node("v", OpKind::Add, 1);
        let w = g.add_node("w", OpKind::Add, 1);
        g.add_edge(v, v, 1).unwrap();
        g.add_edge(v, w, 1).unwrap();
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let p = report.pressure.expect("legal retiming");
        // v: self-loop excluded, out 1 / in 0 -> +1. w: in 1 -> -1.
        let v_cand = p.candidates.iter().find(|c| c.node == 0).unwrap();
        assert_eq!(v_cand.delta, 1);
        let w_cand = p.candidates.iter().find(|c| c.node == 1).unwrap();
        assert_eq!(w_cand.delta, -1);
    }
}
