//! The static-analysis framework: a pass registry over a shared
//! traversal cache, producing an [`AnalysisReport`] with stable `A0xx`
//! finding codes and byte-stable JSON.
//!
//! Where [`lint`] answers "is this input sane?",
//! the analysis passes answer "*where* is this instance tight?" — the
//! facts the rotation heuristic (and the future adaptive-search layer)
//! needs to focus further search:
//!
//! * [`critical_cycle`] — the cycle achieving the maximum
//!   time-to-delay ratio (Howard/Karp-style minimum cycle ratio,
//!   iterated over parametric Bellman–Ford probes on the SoA CSR
//!   view). Its ceiling is the iteration bound; its node set is the
//!   recurrence bottleneck.
//! * [`saturation`] — per-class occupancy and lower bounds, plus (when
//!   a schedule is given) per-step utilization and the binding class.
//! * [`pressure`] — per-edge value lifetimes under the current
//!   retiming, the register-pressure profile across kernel steps, and
//!   the pressure delta of each candidate rotation.
//! * [`chain_depth`] — the zero-delay chain depth histogram (the
//!   retimed graph's combinational profile), via the shared
//!   [`engine`] fixed-point solver.
//!
//! Every pass is **total**: arbitrary inputs (hostile parses, illegal
//! retimings, incomplete schedules) degrade a pass to an absent
//! section, never a panic. Findings are sorted canonically and the
//! report's sections render in a fixed schema order, so the output is
//! a function of the *inputs* alone — independent of pass registration
//! order (regression-tested by shuffling).

pub mod chain_depth;
pub mod critical_cycle;
pub mod engine;
pub mod pressure;
pub mod report;
pub mod saturation;

use rotsched_dfg::analysis::{strongly_connected_components_csr, SccDecomposition};
use rotsched_dfg::{CsrGraph, Dfg, Retiming};

use crate::certify::StartTimes;
use crate::diag::{sort_canonical, Code};
use crate::lint::{lint, LintContext, LintOptions};
use crate::spec::ResourceSpec;

pub use engine::{fixed_point, Direction, FixedPoint};
pub use report::{
    AnalysisReport, CandidateDelta, ChainSection, ClassProfile, CriticalCycleSection,
    PressureSection, RatioU64, SaturationSection,
};

/// A schedule handed to the analysis, in the verifier's own vocabulary
/// (the bridge from `rotsched-sched`'s `Schedule` lives on the
/// scheduler side, like the certify bridge).
#[derive(Clone, Copy, Debug)]
pub struct ScheduleView<'a> {
    /// Per-node start control steps (1-based).
    pub starts: &'a StartTimes,
    /// The realizing retiming (the rotation function).
    pub retiming: &'a Retiming,
    /// The kernel length `L` (initiation interval).
    pub kernel_length: u32,
}

/// Traversals shared by the passes, built once per [`analyze`] call:
/// the SoA CSR view, per-edge retimed delays, and the strongly
/// connected components. Passes read, never rebuild.
#[derive(Debug)]
pub struct TraversalCache<'a> {
    csr: &'a CsrGraph,
    /// `d_r(e) = d(e) + r(u) − r(v)` per edge, by `EdgeId` index; the
    /// plain delays when no (usable) retiming is given.
    retimed: Vec<i64>,
    scc: SccDecomposition,
}

impl<'a> TraversalCache<'a> {
    /// Builds the cache for `dfg` under the schedule's retiming (zero
    /// retiming when absent or of mismatched length — the lint engine
    /// reports the mismatch; the cache stays total).
    #[must_use]
    pub fn build(dfg: &'a Dfg, schedule: Option<&ScheduleView<'_>>) -> Self {
        let csr = dfg.csr();
        let retiming = schedule
            .map(|s| s.retiming)
            .filter(|r| r.len() == dfg.node_count());
        let m = csr.edge_count();
        let mut retimed = Vec::with_capacity(m);
        for e in 0..m {
            let d = i64::from(csr.edge_delays()[e]);
            retimed.push(match retiming {
                Some(r) => {
                    let u = csr.edge_from()[e] as usize;
                    let v = csr.edge_to()[e] as usize;
                    d.saturating_add(r.as_slice()[u])
                        .saturating_sub(r.as_slice()[v])
                }
                None => d,
            });
        }
        TraversalCache {
            csr,
            retimed,
            scc: strongly_connected_components_csr(csr),
        }
    }

    /// The SoA CSR view of the analyzed graph.
    #[must_use]
    pub fn csr(&self) -> &CsrGraph {
        self.csr
    }

    /// Per-edge retimed delays, by `EdgeId` index.
    #[must_use]
    pub fn retimed_delays(&self) -> &[i64] {
        &self.retimed
    }

    /// Whether some edge has a negative retimed delay (illegal
    /// retiming; retiming-sensitive passes bail out).
    #[must_use]
    pub fn has_negative_retimed_delay(&self) -> bool {
        self.retimed.iter().any(|&d| d < 0)
    }

    /// The strongly connected components of the full graph.
    #[must_use]
    pub fn scc(&self) -> &SccDecomposition {
        &self.scc
    }
}

/// Everything an analysis pass may read.
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    /// The graph under analysis.
    pub dfg: &'a Dfg,
    /// The resource allocation.
    pub spec: &'a ResourceSpec,
    /// The schedule to profile, if one exists yet.
    pub schedule: Option<ScheduleView<'a>>,
    /// The shared traversal cache.
    pub cache: &'a TraversalCache<'a>,
    /// The recurrence bound, computed at most once per run: the
    /// critical-cycle pass seeds it from its exact ratio (the two are
    /// equal by construction — the property suite proves it), other
    /// passes fall back to [`crate::bound::recurrence_bound`].
    recurrence: std::cell::OnceCell<Option<u32>>,
}

impl AnalysisContext<'_> {
    /// The graph's recurrence bound, shared across passes. Whichever
    /// pass asks first computes it; later passes reuse the value, so
    /// the Bellman–Ford binary search runs at most once per analysis.
    #[must_use]
    pub fn recurrence_bound(&self) -> Option<u32> {
        *self
            .recurrence
            .get_or_init(|| crate::bound::recurrence_bound(self.dfg))
    }

    /// Seeds the shared recurrence bound (first writer wins). The
    /// value must equal what [`crate::bound::recurrence_bound`] would
    /// return — seeding is a cache fill, never an override.
    pub(crate) fn seed_recurrence(&self, bound: Option<u32>) {
        let _ = self.recurrence.set(bound);
    }
}

/// One registered analysis pass.
pub struct AnalysisPass {
    /// Stable pass name (kebab-case).
    pub name: &'static str,
    /// The finding codes this pass can emit.
    pub codes: &'static [Code],
    run: fn(&AnalysisContext<'_>, &mut AnalysisReport),
}

/// The pass registry. Execution order is irrelevant to the output —
/// each pass fills its own report section and findings are sorted
/// canonically — which [`analyze_in_order`] lets tests prove.
pub const ANALYSIS_PASSES: &[AnalysisPass] = &[
    AnalysisPass {
        name: "critical-cycle",
        codes: &[Code::CriticalCycle],
        run: critical_cycle::run,
    },
    AnalysisPass {
        name: "saturation",
        codes: &[Code::SaturatedClass, Code::BindingConstraint],
        run: saturation::run,
    },
    AnalysisPass {
        name: "register-pressure",
        codes: &[Code::RegisterPressurePeak],
        run: pressure::run,
    },
    AnalysisPass {
        name: "chain-depth",
        codes: &[Code::DeepestChain],
        run: chain_depth::run,
    },
];

/// Runs the lint engine and every analysis pass over `dfg` and returns
/// the combined report. Total: never panics, whatever the input.
///
/// Without a schedule the passes report the static facts (critical
/// cycle, class occupancy bounds, per-retiming register count, chain
/// depths); with one they add the dynamic profile (per-step
/// utilization, live-value pressure, rotation candidates).
#[must_use]
pub fn analyze(
    dfg: &Dfg,
    spec: &ResourceSpec,
    schedule: Option<&ScheduleView<'_>>,
) -> AnalysisReport {
    let order: Vec<usize> = (0..ANALYSIS_PASSES.len()).collect();
    analyze_in_order(dfg, spec, schedule, &order)
}

/// [`analyze`] with an explicit pass execution order (a permutation of
/// `0..ANALYSIS_PASSES.len()`; out-of-range entries are skipped). The
/// report is byte-identical for every permutation — the hook exists so
/// the determinism suite can prove that, not to change behavior.
#[must_use]
pub fn analyze_in_order(
    dfg: &Dfg,
    spec: &ResourceSpec,
    schedule: Option<&ScheduleView<'_>>,
    order: &[usize],
) -> AnalysisReport {
    let cache = TraversalCache::build(dfg, schedule);
    let ctx = AnalysisContext {
        dfg,
        spec,
        schedule: schedule.copied(),
        cache: &cache,
        recurrence: std::cell::OnceCell::new(),
    };
    let mut report = AnalysisReport::new(dfg);
    for &i in order {
        if let Some(pass) = ANALYSIS_PASSES.get(i) {
            (pass.run)(&ctx, &mut report);
        }
    }
    // Lint last, so the engine can reuse whatever recurrence bound the
    // passes already computed (a hint is a cache fill — the lints are
    // byte-identical with or without it, whatever the pass order).
    let options = LintOptions::default();
    let lint_ctx = LintContext {
        spec: Some(spec),
        retiming: schedule.map(|s| s.retiming),
        options: &options,
        recurrence_hint: ctx.recurrence.get().copied(),
    };
    report.lints = lint(dfg, &lint_ctx);
    sort_canonical(&mut report.findings);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    fn iir() -> Dfg {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        g
    }

    #[test]
    fn registry_names_and_codes_are_well_formed() {
        let mut names: Vec<&str> = ANALYSIS_PASSES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ANALYSIS_PASSES.len());
        for pass in ANALYSIS_PASSES {
            assert!(!pass.codes.is_empty());
            for code in pass.codes {
                assert!(
                    code.as_str().starts_with('A'),
                    "{} emits {}",
                    pass.name,
                    code
                );
            }
        }
    }

    #[test]
    fn shuffled_pass_order_yields_identical_reports() {
        let g = iir();
        let spec = ResourceSpec::adders_multipliers(1, 1, false);
        let baseline = analyze(&g, &spec, None);
        let orders: [[usize; 4]; 3] = [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]];
        for order in orders {
            let shuffled = analyze_in_order(&g, &spec, None, &order);
            assert_eq!(
                baseline.render_json(&g),
                shuffled.render_json(&g),
                "order {order:?}"
            );
            assert_eq!(baseline.render_text(&g), shuffled.render_text(&g));
        }
    }

    #[test]
    fn cache_applies_the_retiming_to_edge_delays() {
        let g = iir();
        let m = g.node_by_name("m").unwrap();
        let r = Retiming::from_set(&g, [m]);
        let starts = StartTimes::empty(&g);
        let view = ScheduleView {
            starts: &starts,
            retiming: &r,
            kernel_length: 3,
        };
        let cache = TraversalCache::build(&g, Some(&view));
        // m -> a gains a delay (m rotated), a -> m loses one.
        assert_eq!(cache.retimed_delays(), &[1, 0]);
        assert!(!cache.has_negative_retimed_delay());
    }

    #[test]
    fn analysis_is_total_on_hostile_inputs() {
        // Zero-delay cycle, zero-time node, empty class: every pass
        // must degrade gracefully, not panic.
        let mut g = Dfg::new("bad");
        let a = g.add_node("a", OpKind::Add, 0);
        let b = g.add_node("b", OpKind::Mul, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let spec = ResourceSpec::adders_multipliers(0, 0, false);
        let report = analyze(&g, &spec, None);
        assert!(report.has_errors());
        assert!(report.critical_cycle.is_none());
        assert!(report.chains.is_none());
        let _ = report.render_json(&g);
        let _ = report.render_text(&g);
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use rotsched_dfg::OpKind;
    #[test]
    fn zero_time_cycle_seed() {
        let mut g = Dfg::new("zt");
        let a = g.add_node("a", OpKind::Add, 0);
        let b = g.add_node("b", OpKind::Add, 0);
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        let report = analyze(&g, &ResourceSpec::unlimited(), None);
        let cc = report.critical_cycle.as_ref().unwrap();
        assert_eq!(cc.iteration_bound, 0);
        assert_eq!(crate::bound::recurrence_bound(&g), Some(1));
    }
}
