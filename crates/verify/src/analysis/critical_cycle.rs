//! Critical-cycle extraction: the cycle achieving the maximum
//! time-to-delay ratio `max_C T(C)/D(C)` — the recurrence bottleneck.
//!
//! Howard/Karp-style iterated parametric search, re-derived here
//! independently of `rotsched-dfg`'s own `iteration_bound` (the two
//! must agree, and the property suite checks that they do):
//!
//! 1. find *any* delay-carrying cycle by DFS and take its exact ratio
//!    as the candidate `λ = num/den`;
//! 2. probe for a cycle with a higher ratio: under the integer weights
//!    `w(e) = den·t(u) − num·d_r(e)` a cycle has positive total weight
//!    exactly when its ratio exceeds `λ`. The probe is a longest-path
//!    run of the shared fixed-point [`engine`](super::engine) with a
//!    Bellman–Ford round budget; non-convergence means such a cycle
//!    exists, and the best-ratio cycle of the whole predecessor graph
//!    is extracted (a policy-improvement step, so few probes suffice);
//! 3. replace `λ` with the extracted cycle's exact ratio and repeat
//!    until the probe converges. Ratios strictly increase, so the loop
//!    terminates; the last witness is a critical cycle.
//!
//! The pass works on **retimed** delays; cycle delay sums are
//! retiming-invariant (`Σ_C d_r = Σ_C d`), so the ratio — and the
//! iteration bound — agree with the unretimed graph, while the witness
//! is expressed in the graph the schedule actually sees. Probes only
//! visit edges inside cyclic strongly connected components (from the
//! shared traversal cache); everything else cannot lie on a cycle.

use rotsched_dfg::CsrGraph;

use crate::analysis::engine::{fixed_point, Direction};
use crate::analysis::report::{AnalysisReport, CriticalCycleSection, RatioU64};
use crate::analysis::AnalysisContext;
use crate::diag::{Code, Diagnostic, Locus};
use rotsched_dfg::NodeId;

/// A cycle as flat CSR edge indices, in traversal order.
#[derive(Clone, Debug)]
struct Cycle {
    edges: Vec<usize>,
}

impl Cycle {
    /// Total raw computation time and total (retimed) delay count.
    fn totals(&self, csr: &CsrGraph, retimed: &[i64]) -> (u64, u64) {
        let mut t = 0_u64;
        let mut d = 0_u64;
        for &e in &self.edges {
            let u = csr.edge_from()[e] as usize;
            t = t.saturating_add(u64::from(csr.raw_times()[u]));
            d = d.saturating_add(retimed[e].max(0) as u64);
        }
        (t, d)
    }

    /// Rotates the edge list so the cycle starts at its smallest node
    /// index — the canonical form every run reports identically.
    fn normalize(&mut self, csr: &CsrGraph) {
        let Some(start) = (0..self.edges.len()).min_by_key(|&i| csr.edge_from()[self.edges[i]])
        else {
            return;
        };
        self.edges.rotate_left(start);
    }
}

/// `a/b > c/d` on exact u64 ratios.
fn ratio_gt(a: u64, b: u64, c: u64, d: u64) -> bool {
    u128::from(a) * u128::from(d) > u128::from(c) * u128::from(b)
}

pub(crate) fn run(ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
    let csr = ctx.cache.csr();
    let scc = ctx.cache.scc();
    report.acyclic = !scc.has_cycle(csr);
    if report.acyclic || ctx.cache.has_negative_retimed_delay() {
        return;
    }
    let retimed = ctx.cache.retimed_delays();

    // Edges that can lie on a cycle: inside one cyclic component.
    let cyclic: Vec<bool> = {
        let idx = scc.cyclic_component_indices(csr);
        let mut is_cyclic_comp = vec![false; scc.components().len()];
        for i in idx {
            is_cyclic_comp[i] = true;
        }
        (0..csr.edge_count())
            .map(|e| {
                let u = NodeId::from_index(csr.edge_from()[e] as usize);
                let v = NodeId::from_index(csr.edge_to()[e] as usize);
                scc.same_component(u, v) && is_cyclic_comp[scc.component_of(u)]
            })
            .collect()
    };

    let Some(mut witness) = find_any_cycle(csr, &cyclic) else {
        return; // unreachable for a cyclic graph; stay total
    };
    let (mut best_t, mut best_d) = witness.totals(csr, retimed);
    if best_d == 0 {
        return; // zero-delay cycle: E001 territory, no finite ratio
    }

    // Iterate: probe for a better cycle until none exists.
    let n = csr.node_count();
    loop {
        let num = i128::from(best_t);
        let den = i128::from(best_d);
        // Weights once per probe, not once per relaxation: the probe
        // sweeps every edge up to n+1 times and the two wide
        // multiplications would otherwise dominate it.
        let weights: Vec<i128> = (0..csr.edge_count())
            .map(|e| {
                let u = csr.edge_from()[e] as usize;
                den.saturating_mul(i128::from(csr.raw_times()[u]))
                    .saturating_sub(num.saturating_mul(i128::from(retimed[e].max(0))))
            })
            .collect();
        // No positive-weight edge on a cycle means no positive cycle:
        // the probe is already answered without a single relaxation.
        let max_w = (0..csr.edge_count())
            .filter(|&e| cyclic[e])
            .map(|e| weights[e])
            .max()
            .unwrap_or(0);
        if max_w <= 0 {
            break;
        }
        // Distances start at 0 and every simple path carries at most
        // (n−1)·max_w, so any distance beyond that proves a positive
        // cycle sits on the predecessor chain — the probe can stop
        // relaxing right there instead of finishing its round budget.
        let threshold = (i128::from(n as u64).saturating_sub(1)).saturating_mul(max_w);
        let mut pred_edge = vec![usize::MAX; n];
        let mut last_updated = usize::MAX;
        let mut over_threshold = false;
        let fp = fixed_point(
            csr,
            Direction::Forward,
            vec![0_i128; n],
            n as u32 + 1,
            |e, src, dst| {
                if over_threshold || !cyclic[e] {
                    return None;
                }
                let cand = src.saturating_add(weights[e]);
                if cand > *dst {
                    let to = csr.edge_to()[e] as usize;
                    pred_edge[to] = e;
                    last_updated = to;
                    over_threshold |= cand > threshold;
                    Some(cand)
                } else {
                    None
                }
            },
        );
        if !over_threshold && (fp.converged || last_updated == usize::MAX) {
            break; // no cycle beats the current ratio
        }
        // The predecessor graph usually holds many positive cycles,
        // not just the one under `last_updated`; taking the best of
        // them per probe makes each round a policy-improvement step,
        // and the loop converges in a handful of probes instead of one
        // probe per distinct cycle ratio in the graph.
        let Some(mut better) = best_pred_cycle(csr, retimed, &pred_edge) else {
            break; // cannot happen per the Bellman–Ford argument; stay total
        };
        better.normalize(csr);
        let (t, d) = better.totals(csr, retimed);
        if d == 0 {
            return; // a zero-delay cycle outranks every ratio: bail
        }
        if !ratio_gt(t, d, best_t, best_d) {
            break; // guard against a non-improving extraction looping
        }
        witness = better;
        best_t = t;
        best_d = d;
    }

    witness.normalize(csr);
    let ratio = RatioU64::new(best_t, best_d);
    let nodes: Vec<u32> = witness.edges.iter().map(|&e| csr.edge_from()[e]).collect();
    let edges: Vec<(u32, u32)> = witness
        .edges
        .iter()
        .map(|&e| (csr.edge_from()[e], csr.edge_to()[e]))
        .collect();
    let bound = ratio.ceil();
    // The exact ratio's ceiling IS the recurrence bound (the property
    // suite proves the agreement); seed the shared cell so no other
    // pass re-runs the Bellman–Ford binary search. `recurrence_bound`
    // reports bounds past u32::MAX − 1 as None — mirror that here.
    ctx.seed_recurrence(u32::try_from(bound).ok().filter(|&b| b < u32::MAX));
    let head = nodes.first().copied().unwrap_or(0);
    report.findings.push(
        Diagnostic::new(
            Code::CriticalCycle,
            Locus::Node(NodeId::from_index(head as usize)),
            format!(
                "critical cycle of {} node(s): T(C) = {best_t}, D(C) = {best_d}, ratio {}/{} forces every kernel to at least {bound} step(s)",
                nodes.len(),
                ratio.num,
                ratio.den,
            ),
        )
        .with_hint("rotations that do not touch this cycle cannot shorten the kernel"),
    );
    report.critical_cycle = Some(CriticalCycleSection {
        nodes,
        edges,
        total_time: best_t,
        total_delays: best_d,
        ratio,
        iteration_bound: bound,
    });
}

/// Any cycle among the `active` edges, by iterative DFS (first back
/// edge closes one), or `None` when the active subgraph is acyclic.
fn find_any_cycle(csr: &CsrGraph, active: &[bool]) -> Option<Cycle> {
    let n = csr.node_count();
    let mut state = vec![0_u8; n]; // 0 white, 1 on path, 2 done
    let mut frames: Vec<(usize, usize)> = Vec::new(); // (node, out offset)
    let mut path: Vec<(usize, usize)> = Vec::new(); // (node, entry edge)

    for root in 0..n {
        if state[root] != 0 {
            continue;
        }
        frames.push((root, 0));
        state[root] = 1;
        path.push((root, usize::MAX));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            let range = csr.out_range(v);
            let mut descend = None;
            while range.start + frame.1 < range.end {
                let pos = range.start + frame.1;
                frame.1 += 1;
                // Adjacency position -> flat edge index: `active` and
                // the returned cycle speak EdgeId order.
                let e = csr.out_edge_ids()[pos].index();
                if !active[e] {
                    continue;
                }
                let w = csr.out_heads()[pos] as usize;
                if state[w] == 0 {
                    descend = Some((w, e));
                    break;
                }
                if state[w] == 1 {
                    // Back edge: the cycle is w ... v plus e.
                    let start = path
                        .iter()
                        .position(|&(x, _)| x == w)
                        .expect("on-path node is on the path");
                    let mut edges: Vec<usize> =
                        path[start + 1..].iter().map(|&(_, entry)| entry).collect();
                    edges.push(e);
                    return Some(Cycle { edges });
                }
            }
            match descend {
                Some((w, e)) => {
                    state[w] = 1;
                    frames.push((w, 0));
                    path.push((w, e));
                }
                None => {
                    // Out-edges exhausted without descending: retreat.
                    state[v] = 2;
                    frames.pop();
                    path.pop();
                }
            }
        }
    }
    None
}

/// The best-ratio cycle in the Bellman–Ford predecessor graph.
///
/// Every node holds at most one predecessor edge, so the graph is
/// functional: one colored backward walk per root finds every cycle in
/// O(n) total. The probe's positive cycle is among them, and picking
/// the best ratio of the lot (a zero-delay cycle counts as infinite)
/// turns each probe into a policy-improvement step — the outer loop
/// converges in a handful of probes instead of one probe per distinct
/// cycle ratio in the graph.
fn best_pred_cycle(csr: &CsrGraph, retimed: &[i64], pred_edge: &[usize]) -> Option<Cycle> {
    let n = csr.node_count();
    let mut color = vec![0_u8; n]; // 0 new, 1 on current walk, 2 done
    let mut best: Option<(Cycle, u64, u64)> = None;
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        let mut v = root;
        while color[v] == 0 {
            color[v] = 1;
            let e = pred_edge[v];
            if e == usize::MAX {
                break;
            }
            v = csr.edge_from()[e] as usize;
        }
        // Re-entering the current walk closes a cycle through `v`
        // (a node with no predecessor ends the walk instead).
        if color[v] == 1 && pred_edge[v] != usize::MAX {
            let anchor = v;
            let mut edges = Vec::new();
            let mut u = anchor;
            loop {
                let e = pred_edge[u];
                edges.push(e);
                u = csr.edge_from()[e] as usize;
                if u == anchor || edges.len() > n {
                    break;
                }
            }
            if edges.len() <= n {
                edges.reverse();
                let cycle = Cycle { edges };
                let (t, d) = cycle.totals(csr, retimed);
                let improves = match &best {
                    None => true,
                    Some((_, bt, bd)) => {
                        if d == 0 {
                            *bd != 0
                        } else if *bd == 0 {
                            false
                        } else {
                            ratio_gt(t, d, *bt, *bd)
                        }
                    }
                };
                if improves {
                    best = Some((cycle, t, d));
                }
            }
        }
        // Retire the whole walk so later roots stop at it.
        let mut u = root;
        while color[u] == 1 {
            color[u] = 2;
            let e = pred_edge[u];
            if e == usize::MAX {
                break;
            }
            u = csr.edge_from()[e] as usize;
        }
    }
    best.map(|(c, _, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TraversalCache};
    use crate::spec::ResourceSpec;
    use rotsched_dfg::{analysis, Dfg, OpKind};

    fn spec() -> ResourceSpec {
        ResourceSpec::unlimited()
    }

    #[test]
    fn simple_loop_ratio_is_exact() {
        // 5 time units over 2 delays: ratio 5/2, bound 3.
        let mut g = Dfg::new("frac");
        let a = g.add_node("a", OpKind::Add, 2);
        let b = g.add_node("b", OpKind::Add, 3);
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        let report = analyze(&g, &spec(), None);
        let cc = report.critical_cycle.expect("cyclic graph");
        assert_eq!((cc.ratio.num, cc.ratio.den), (5, 2));
        assert_eq!(cc.iteration_bound, 3);
        assert_eq!(cc.total_time, 5);
        assert_eq!(cc.total_delays, 2);
        assert_eq!(cc.nodes, vec![0, 1]);
    }

    #[test]
    fn picks_the_worse_of_two_cycles() {
        let mut g = Dfg::new("two");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        let c = g.add_node("c", OpKind::Mul, 6);
        // Cycle 1: a <-> b, ratio 2/2 = 1. Cycle 2: c self-loop, 6/1.
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        g.add_edge(b, c, 0).unwrap();
        g.add_edge(c, c, 1).unwrap();
        let report = analyze(&g, &spec(), None);
        let cc = report.critical_cycle.expect("cyclic graph");
        assert_eq!((cc.ratio.num, cc.ratio.den), (6, 1));
        assert_eq!(cc.nodes, vec![c.index() as u32]);
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|d| d.code == Code::CriticalCycle)
                .count(),
            1
        );
    }

    #[test]
    fn agrees_with_dfg_iteration_bound_on_benchmarks() {
        for (name, g) in [
            ("frac", {
                let mut g = Dfg::new("frac");
                let a = g.add_node("a", OpKind::Add, 2);
                let b = g.add_node("b", OpKind::Mul, 3);
                g.add_edge(a, b, 1).unwrap();
                g.add_edge(b, a, 1).unwrap();
                g.add_edge(a, a, 2).unwrap();
                g
            }),
            ("iir", {
                let mut g = Dfg::new("iir");
                let m = g.add_node("m", OpKind::Mul, 2);
                let a = g.add_node("a", OpKind::Add, 1);
                g.add_edge(m, a, 0).unwrap();
                g.add_edge(a, m, 1).unwrap();
                g
            }),
        ] {
            let expected = analysis::iteration_bound(&g).unwrap().unwrap();
            let report = analyze(&g, &spec(), None);
            let cc = report
                .critical_cycle
                .unwrap_or_else(|| panic!("{name}: no cycle"));
            assert_eq!(cc.iteration_bound, expected, "{name}");
        }
    }

    #[test]
    fn acyclic_graph_reports_no_cycle() {
        let mut g = Dfg::new("dag");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        let report = analyze(&g, &spec(), None);
        assert!(report.acyclic);
        assert!(report.critical_cycle.is_none());
        assert!(!report
            .findings
            .iter()
            .any(|d| d.code == Code::CriticalCycle));
    }

    #[test]
    fn witness_edges_form_a_closed_walk() {
        let mut g = Dfg::new("ring");
        let v: Vec<_> = (0..4)
            .map(|i| g.add_node(format!("v{i}"), OpKind::Add, i + 1))
            .collect();
        for i in 0..4 {
            g.add_edge(v[i], v[(i + 1) % 4], u32::from(i == 3)).unwrap();
        }
        let report = analyze(&g, &spec(), None);
        let cc = report.critical_cycle.expect("ring is a cycle");
        assert_eq!(cc.nodes.len(), cc.edges.len());
        for (i, &(from, to)) in cc.edges.iter().enumerate() {
            assert_eq!(from, cc.nodes[i]);
            assert_eq!(to, cc.nodes[(i + 1) % cc.nodes.len()]);
        }
        assert_eq!(cc.total_time, 1 + 2 + 3 + 4);
        assert_eq!(cc.total_delays, 1);
    }

    #[test]
    fn cache_and_pass_tolerate_zero_delay_cycles() {
        let mut g = Dfg::new("bad");
        let a = g.add_node("a", OpKind::Add, 1);
        let b = g.add_node("b", OpKind::Add, 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let cache = TraversalCache::build(&g, None);
        assert!(cache.scc().has_cycle(cache.csr()));
        let report = analyze(&g, &spec(), None);
        assert!(report.critical_cycle.is_none(), "no finite ratio exists");
        assert!(!report.acyclic);
    }
}
