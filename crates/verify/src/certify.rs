//! The certificate checker: proves a concrete (graph, resources,
//! retiming, schedule) quadruple is a legal wrapped kernel, from first
//! principles.
//!
//! Nothing here calls scheduler code. The retimed delays are re-derived
//! from `d_r(e) = d(e) + r(u) − r(v)`, the reservation table is
//! replayed with the verifier's own modulo fold, and precedence is
//! checked with the uniform wrapped-schedule rule
//!
//! ```text
//! s(v) + d_r(e) · L  ≥  s(u) + t(u)       for every edge e: u → v
//! ```
//!
//! which specializes to the paper's three conditions: linear precedence
//! for `d_r = 0`, the one-delay tail condition for wrapped producers
//! (Section 4), and vacuous truth for `d_r ≥ 2` once tails are bounded
//! by two kernels (`E108`).

use rotsched_dfg::{Dfg, NodeId, Retiming};

use crate::bound::{recurrence_bound, recurrence_forces};
use crate::diag::{sort_canonical, Code, Diagnostic, Locus};
use crate::spec::ResourceSpec;

/// Per-node start control steps, the verifier's own schedule
/// representation (1-based, like the scheduler's).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartTimes {
    starts: Vec<Option<u32>>,
}

impl StartTimes {
    /// An empty assignment for `dfg` (no node scheduled).
    #[must_use]
    pub fn empty(dfg: &Dfg) -> Self {
        StartTimes {
            starts: vec![None; dfg.node_count()],
        }
    }

    /// Builds an assignment by asking `f` for every node of `dfg` —
    /// the bridge from any external schedule representation.
    #[must_use]
    pub fn from_fn(dfg: &Dfg, f: impl FnMut(NodeId) -> Option<u32>) -> Self {
        StartTimes {
            starts: dfg.node_ids().map(f).collect(),
        }
    }

    /// Sets node `v`'s start step.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the graph this was built for.
    pub fn set(&mut self, v: NodeId, cs: u32) {
        self.starts[v.index()] = Some(cs);
    }

    /// Unschedules node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the graph this was built for.
    pub fn clear(&mut self, v: NodeId) {
        self.starts[v.index()] = None;
    }

    /// Node `v`'s start step, if assigned (`None` also for out-of-range
    /// ids, keeping the checker total on mismatched inputs).
    #[must_use]
    pub fn get(&self, v: NodeId) -> Option<u32> {
        self.starts.get(v.index()).copied().flatten()
    }

    /// Number of nodes this assignment covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the assignment covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// Evidence that a schedule was certified legal: the independently
/// re-derived facts a consumer may rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Fingerprint of the certified graph's structure.
    pub graph_fingerprint: u64,
    /// The certified kernel length (initiation interval) `L`.
    pub kernel_length: u32,
    /// Pipeline depth `1 + max r − min r` of the certified retiming.
    pub depth: u32,
    /// How many nodes' executions cross the kernel boundary.
    pub wrapped_nodes: u32,
    /// The verifier's independent resource lower bound.
    pub resource_bound: u64,
    /// The verifier's independent recurrence lower bound (`None` only
    /// for graphs with zero-delay cycles, which never certify).
    pub recurrence_bound: Option<u32>,
}

impl Certificate {
    /// The strongest lower bound this certificate can vouch for.
    #[must_use]
    pub fn lower_bound(&self) -> u64 {
        self.resource_bound
            .max(u64::from(self.recurrence_bound.unwrap_or(1)))
            .max(1)
    }

    /// Whether the certified length provably cannot be improved.
    #[must_use]
    pub fn proves_optimal(&self) -> bool {
        u64::from(self.kernel_length) <= self.lower_bound()
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "certified: L={} depth={} wrapped={} lower-bound={}{}",
            self.kernel_length,
            self.depth,
            self.wrapped_nodes,
            self.lower_bound(),
            if self.proves_optimal() {
                " (optimal)"
            } else {
                ""
            }
        )
    }

    /// Byte-stable JSON rendering with a fixed key order.
    #[must_use]
    pub fn render_json(&self) -> String {
        format!(
            "{{\"kernel_length\":{},\"depth\":{},\"wrapped_nodes\":{},\"resource_bound\":{},\"recurrence_bound\":{},\"lower_bound\":{},\"proves_optimal\":{},\"graph_fingerprint\":\"{:016x}\"}}",
            self.kernel_length,
            self.depth,
            self.wrapped_nodes,
            self.resource_bound,
            self.recurrence_bound
                .map_or_else(|| "null".to_owned(), |b| b.to_string()),
            self.lower_bound(),
            self.proves_optimal(),
            self.graph_fingerprint,
        )
    }
}

/// A solver's statement about its own output, to be verified rather
/// than trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Claim {
    /// The kernel length the solver reported.
    pub kernel_length: u32,
    /// The pipeline depth the solver reported, if it reported one.
    pub depth: Option<u32>,
    /// Whether the solver declared the length optimal.
    pub optimal: bool,
    /// The static register count the solver reported (the sum of
    /// retimed delays, one register per value crossing an iteration
    /// boundary), if it reported one.
    pub registers: Option<u64>,
    /// The prologue + epilogue operation count the solver reported
    /// (`node_count × (depth − 1)`), if it reported one.
    pub code_size: Option<u64>,
}

/// Certifies that `starts` is a legal wrapped schedule of `dfg` retimed
/// by `retiming` (`None` = zero retiming) with kernel length
/// `kernel_length`, under `spec`.
///
/// # Errors
///
/// Returns **every** violation found, in canonical order, rather than
/// stopping at the first — a rejected certificate should explain
/// itself fully.
pub fn certify(
    dfg: &Dfg,
    spec: &ResourceSpec,
    retiming: Option<&Retiming>,
    starts: &StartTimes,
    kernel_length: u32,
) -> Result<Certificate, Vec<Diagnostic>> {
    let mut bad = Vec::new();
    let length = i128::from(kernel_length);
    if kernel_length == 0 {
        bad.push(Diagnostic::new(
            Code::InvalidStart,
            Locus::Graph,
            "kernel length is 0; control steps are 1-based",
        ));
        return Err(bad);
    }

    let retiming_usable = match retiming {
        Some(r) if r.len() != dfg.node_count() => {
            bad.push(Diagnostic::new(
                Code::CertIllegalRetiming,
                Locus::Graph,
                format!(
                    "retiming covers {} node(s) but the graph has {}",
                    r.len(),
                    dfg.node_count()
                ),
            ));
            false
        }
        _ => true,
    };

    // Completeness + per-node window: 1 ≤ s ≤ L, finish ≤ 2L.
    let mut wrapped = 0_u32;
    for (v, node) in dfg.nodes() {
        match starts.get(v) {
            None => bad.push(Diagnostic::new(
                Code::Unscheduled,
                Locus::Node(v),
                "node has no start step; a certificate requires a complete schedule",
            )),
            Some(0) => bad.push(Diagnostic::new(
                Code::InvalidStart,
                Locus::Node(v),
                "start step 0; control steps are 1-based",
            )),
            Some(s) => {
                let finish = u64::from(s) + u64::from(node.time().max(1)) - 1; // inclusive
                if u64::from(s) > u64::from(kernel_length) {
                    bad.push(Diagnostic::new(
                        Code::StartPastKernel,
                        Locus::Node(v),
                        format!(
                            "starts at step {s}, past the kernel end {kernel_length}; only tails may wrap"
                        ),
                    ));
                } else if finish > 2 * u64::from(kernel_length) {
                    bad.push(Diagnostic::new(
                        Code::TailTooLong,
                        Locus::Node(v),
                        format!(
                            "finishes at step {finish}, crossing more than one kernel boundary (L = {kernel_length})"
                        ),
                    ));
                } else if finish > u64::from(kernel_length) {
                    wrapped += 1;
                }
            }
        }
    }

    // Retimed-delay legality + uniform wrapped precedence.
    if retiming_usable {
        for (id, edge) in dfg.edges() {
            let dr = match retiming {
                Some(r) => r.retimed_delay(dfg, id),
                None => i64::from(edge.delays()),
            };
            if dr < 0 {
                bad.push(Diagnostic::new(
                    Code::CertIllegalRetiming,
                    Locus::Edge {
                        from: edge.from(),
                        to: edge.to(),
                    },
                    format!("retimed delay d_r = {dr} is negative; the retiming is illegal"),
                ));
                continue;
            }
            let (Some(su), Some(sv)) = (starts.get(edge.from()), starts.get(edge.to())) else {
                continue; // already reported as E101
            };
            let finish = i128::from(su) + i128::from(dfg.node(edge.from()).time().max(1)); // exclusive
            let slack = i128::from(sv) + i128::from(dr) * length - finish;
            if slack < 0 {
                let locus = Locus::Edge {
                    from: edge.from(),
                    to: edge.to(),
                };
                if dr == 0 {
                    bad.push(Diagnostic::new(
                        Code::PrecedenceViolation,
                        locus,
                        format!(
                            "producer finishes at step {} but the zero-delay consumer starts at {sv}",
                            finish - 1
                        ),
                    ));
                } else {
                    bad.push(Diagnostic::new(
                        Code::WrapPrecedenceViolation,
                        locus,
                        format!(
                            "wrapped tail ends at step {} of the next kernel but the {dr}-delay consumer starts at {sv}",
                            finish - 1 - length
                        ),
                    ));
                }
            }
        }
    }

    replay_reservations(dfg, spec, starts, kernel_length, &mut bad);

    if !bad.is_empty() {
        sort_canonical(&mut bad);
        return Err(bad);
    }
    Ok(Certificate {
        graph_fingerprint: dfg.structure_fingerprint(),
        kernel_length,
        depth: match retiming {
            Some(r) if !r.is_empty() => r.depth(),
            _ => 1,
        },
        wrapped_nodes: wrapped,
        resource_bound: spec.resource_bound(dfg),
        recurrence_bound: recurrence_bound(dfg),
    })
}

/// Certifies a schedule **and** the solver's claim about it.
///
/// On top of [`certify`], checks that a reported depth matches the
/// retiming (`E113`), that a reported optimality verdict is backed
/// by one of the verifier's own lower bounds (`E114`) — a forged
/// verdict cannot smuggle itself through an honest schedule — and that
/// every reported secondary score component (static registers, code
/// size) matches the value re-derived from the certified retiming
/// (`E115`).
///
/// # Errors
///
/// Every violation found, in canonical order.
pub fn certify_claim(
    dfg: &Dfg,
    spec: &ResourceSpec,
    retiming: Option<&Retiming>,
    starts: &StartTimes,
    claim: &Claim,
) -> Result<Certificate, Vec<Diagnostic>> {
    let mut bad = match certify(dfg, spec, retiming, starts, claim.kernel_length) {
        Ok(cert) => {
            let mut bad = Vec::new();
            check_claim_consistency(dfg, retiming, claim, &cert, &mut bad);
            if bad.is_empty() {
                return Ok(cert);
            }
            bad
        }
        Err(bad) => bad,
    };
    sort_canonical(&mut bad);
    Err(bad)
}

fn check_claim_consistency(
    dfg: &Dfg,
    retiming: Option<&Retiming>,
    claim: &Claim,
    cert: &Certificate,
    bad: &mut Vec<Diagnostic>,
) {
    if let Some(claimed) = claim.registers {
        // Re-derive from first principles: one register per retimed
        // delay, Σ_e max(d_r(e), 0) — the verifier's own pressure rule.
        let derived: u64 = dfg
            .edges()
            .map(|(id, edge)| match retiming {
                Some(r) => u64::try_from(r.retimed_delay(dfg, id).max(0)).unwrap_or(0),
                None => u64::from(edge.delays()),
            })
            .sum();
        if derived != claimed {
            bad.push(Diagnostic::new(
                Code::ScoreClaimMismatch,
                Locus::Graph,
                format!(
                    "claimed {claimed} static register(s) but the certified retiming holds {derived}"
                ),
            ));
        }
    }
    if let Some(claimed) = claim.code_size {
        // Prologue + epilogue ops: every node appears once per pipeline
        // stage beyond the kernel itself.
        let derived = dfg.node_count() as u64 * u64::from(cert.depth.saturating_sub(1));
        if derived != claimed {
            bad.push(Diagnostic::new(
                Code::ScoreClaimMismatch,
                Locus::Graph,
                format!(
                    "claimed a prologue/epilogue of {claimed} op(s) but the certified depth implies {derived}"
                ),
            ));
        }
    }
    if let Some(depth) = claim.depth {
        if depth != cert.depth {
            bad.push(Diagnostic::new(
                Code::LengthClaimMismatch,
                Locus::Graph,
                format!(
                    "claimed pipeline depth {depth} but the retiming has depth {}",
                    cert.depth
                ),
            ));
        }
    }
    if claim.optimal {
        let l = claim.kernel_length;
        let by_resources = cert.resource_bound >= u64::from(l);
        let by_recurrence = recurrence_forces(dfg, l);
        if !by_resources && !by_recurrence {
            bad.push(
                Diagnostic::new(
                    Code::ForgedOptimality,
                    Locus::Graph,
                    format!(
                        "claimed optimal at L = {l}, but the resource bound is {} and the recurrence bound is {}; neither proves L − 1 infeasible",
                        cert.resource_bound,
                        cert.recurrence_bound
                            .map_or_else(|| "∞".to_owned(), |b| b.to_string()),
                    ),
                )
                .with_hint("report the result as feasible, not optimal"),
            );
        }
    }
}

/// Replays every operation's unit occupancy folded modulo `L` and
/// reports each control step where a class is over-subscribed.
///
/// The fold is computed arithmetically (whole wraps + one cyclic
/// remainder range per operation) rather than step-by-step, so hostile
/// inputs with huge computation times cannot stall the checker.
fn replay_reservations(
    dfg: &Dfg,
    spec: &ResourceSpec,
    starts: &StartTimes,
    kernel_length: u32,
    bad: &mut Vec<Diagnostic>,
) {
    let l = u64::from(kernel_length);
    // Per class: constant base load (whole wraps) + difference events
    // for the remainder ranges, keyed by 1-based kernel step.
    let mut base = vec![0_u64; spec.classes().len()];
    let mut events: Vec<Vec<(u64, i64)>> = vec![Vec::new(); spec.classes().len()];
    let mut unbound_reported = [false; rotsched_dfg::OpKind::ALL.len()];

    for (v, node) in dfg.nodes() {
        let Some(s) = starts.get(v) else { continue };
        if s == 0 {
            continue; // already reported as E102
        }
        let Some(c) = spec.class_of(node.op()) else {
            let tag = rotsched_dfg::OpKind::ALL
                .iter()
                .position(|&k| k == node.op())
                .unwrap_or(0);
            if !unbound_reported[tag] {
                unbound_reported[tag] = true;
                bad.push(Diagnostic::new(
                    Code::UnboundOp,
                    Locus::Node(v),
                    format!("no resource class executes `{:?}`", node.op()),
                ));
            }
            continue;
        };
        let busy = u64::from(spec.classes()[c].busy_steps(node.time()));
        base[c] += busy / l;
        let rem = busy % l;
        if rem == 0 {
            continue;
        }
        // The remainder covers `rem` steps starting at the folded start.
        let start = (u64::from(s) - 1) % l; // 0-based
        let end = start + rem; // exclusive, ≤ 2l
        if end <= l {
            events[c].push((start, 1));
            events[c].push((end, -1));
        } else {
            events[c].push((start, 1));
            events[c].push((l, -1));
            events[c].push((0, 1));
            events[c].push((end - l, -1));
        }
    }

    for (c, class) in spec.classes().iter().enumerate() {
        let mut evs = core::mem::take(&mut events[c]);
        if base[c] == 0 && evs.is_empty() {
            continue;
        }
        evs.sort_unstable();
        let mut running = i64::try_from(base[c].min(u64::from(u32::MAX))).unwrap_or(i64::MAX);
        if base[c] > u64::from(class.units) {
            // Whole wraps alone over-subscribe every step.
            bad.push(overflow_diag(class, 1, base[c], u64::from(class.units)));
            continue;
        }
        let mut i = 0;
        let mut worst: Option<(u64, i64)> = None;
        while i < evs.len() {
            let step = evs[i].0;
            while i < evs.len() && evs[i].0 == step {
                running += evs[i].1;
                i += 1;
            }
            if running > i64::from(class.units) && worst.is_none_or(|(_, w)| running > w) {
                worst = Some((step, running));
            }
        }
        if let Some((step, used)) = worst {
            bad.push(overflow_diag(
                class,
                u32::try_from(step + 1).unwrap_or(u32::MAX),
                u64::try_from(used).unwrap_or(0),
                u64::from(class.units),
            ));
        }
    }
}

fn overflow_diag(class: &crate::spec::UnitClass, step: u32, used: u64, limit: u64) -> Diagnostic {
    Diagnostic::new(
        Code::ResourceOverflow,
        Locus::Step(step),
        format!(
            "class `{}` needs {used} unit(s) in this folded step but has {limit}",
            class.name
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    /// The running example: a 2-cycle multiply feeding an add through
    /// the same iteration, closed by one register.
    fn iir() -> (Dfg, NodeId, NodeId) {
        let mut g = Dfg::new("iir");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 0).unwrap();
        g.add_edge(a, m, 1).unwrap();
        (g, m, a)
    }

    fn spec() -> ResourceSpec {
        ResourceSpec::adders_multipliers(1, 1, false)
    }

    #[test]
    fn legal_schedule_certifies_with_facts() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 3);
        let cert = certify(&g, &spec(), None, &s, 3).expect("legal");
        assert_eq!(cert.kernel_length, 3);
        assert_eq!(cert.depth, 1);
        assert_eq!(cert.wrapped_nodes, 0);
        assert_eq!(cert.recurrence_bound, Some(3));
        assert!(cert.proves_optimal());
        assert!(cert.summary().contains("L=3"));
    }

    #[test]
    fn incomplete_schedule_is_e101() {
        let (g, m, _) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        let bad = certify(&g, &spec(), None, &s, 3).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::Unscheduled));
    }

    #[test]
    fn precedence_violation_is_e104() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 2); // m occupies steps 1-2, a must start at 3
        let bad = certify(&g, &spec(), None, &s, 3).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::PrecedenceViolation));
    }

    #[test]
    fn slot_collision_is_e105() {
        let mut g = Dfg::new("two-mults");
        let m1 = g.add_node("m1", OpKind::Mul, 2);
        let m2 = g.add_node("m2", OpKind::Mul, 2);
        g.add_edge(m1, m2, 1).unwrap();
        let mut s = StartTimes::empty(&g);
        s.set(m1, 1);
        s.set(m2, 2); // overlap at step 2 on the single multiplier
        let bad = certify(&g, &spec(), None, &s, 4).unwrap_err();
        let e105 = bad
            .iter()
            .find(|d| d.code == Code::ResourceOverflow)
            .expect("collision");
        assert!(matches!(e105.locus, Locus::Step(2)));
    }

    #[test]
    fn folded_collision_across_the_boundary_is_caught() {
        // One non-pipelined multiplier; a 2-step mult at step 2 of an
        // L=2 kernel wraps onto step 1, where another mult runs.
        let mut g = Dfg::new("fold");
        let m1 = g.add_node("m1", OpKind::Mul, 1);
        let m2 = g.add_node("m2", OpKind::Mul, 2);
        g.add_edge(m1, m2, 1).unwrap();
        let mut s = StartTimes::empty(&g);
        s.set(m1, 1);
        s.set(m2, 2); // occupies 2 and (wrapped) 1
        let bad = certify(&g, &spec(), None, &s, 2).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::ResourceOverflow));
    }

    #[test]
    fn wrapped_tail_respects_one_delay_consumer() {
        // m occupies steps 2-3 of an L=2 kernel: its tail wraps onto
        // step 1. Its 1-delay consumer at step 1 starts exactly when
        // the tail is still running -> E109; at step 2 it is fine.
        let mut g = Dfg::new("wrap");
        let m = g.add_node("m", OpKind::Mul, 2);
        let a = g.add_node("a", OpKind::Add, 1);
        g.add_edge(m, a, 1).unwrap();
        let sp = ResourceSpec::adders_multipliers(1, 1, false);
        let mut s = StartTimes::empty(&g);
        s.set(m, 2);
        s.set(a, 1);
        let bad = certify(&g, &sp, None, &s, 2).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::WrapPrecedenceViolation));
        s.set(a, 2);
        let cert = certify(&g, &sp, None, &s, 2).expect("legal wrap");
        assert_eq!(cert.wrapped_nodes, 1);
    }

    #[test]
    fn start_past_kernel_and_long_tail_are_rejected() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 4); // > L = 3
        s.set(a, 3);
        let bad = certify(&g, &spec(), None, &s, 3).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::StartPastKernel));
        // Tail across two boundaries: 5-step op starting at step 2, L=2.
        let mut g2 = Dfg::new("long");
        let x = g2.add_node("x", OpKind::Add, 5);
        let y = g2.add_node("y", OpKind::Add, 1);
        g2.add_edge(x, y, 2).unwrap();
        let mut s2 = StartTimes::empty(&g2);
        s2.set(x, 2);
        s2.set(y, 1);
        let bad = certify(&g2, &ResourceSpec::unlimited(), None, &s2, 2).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::TailTooLong));
    }

    #[test]
    fn illegal_retiming_is_e103_even_with_consistent_starts() {
        let (g, m, a) = iir();
        let r = Retiming::from_set(&g, [a]); // m -> a loses its (only) zero delay
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 1);
        let bad = certify(&g, &spec(), Some(&r), &s, 3).unwrap_err();
        assert!(bad.iter().any(|d| d.code == Code::CertIllegalRetiming));
    }

    #[test]
    fn rotation_retiming_relaxes_the_precedence() {
        // After rotating m down, m -> a carries a delay: a may start
        // before m finishes within the kernel.
        let (g, m, a) = iir();
        let r = Retiming::from_set(&g, [m]);
        let mut s = StartTimes::empty(&g);
        s.set(m, 2);
        s.set(a, 1);
        let cert = certify(&g, &spec(), Some(&r), &s, 3).expect("legal rotated kernel");
        assert_eq!(cert.depth, 2);
    }

    #[test]
    fn zero_kernel_length_is_rejected_not_panicked() {
        let (g, _, _) = iir();
        let s = StartTimes::empty(&g);
        let bad = certify(&g, &spec(), None, &s, 0).unwrap_err();
        assert_eq!(bad[0].code, Code::InvalidStart);
    }

    #[test]
    fn forged_optimality_is_e114() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 3);
        // L = 4 is feasible (just padded) but not optimal: bounds say 3.
        let mut st4 = StartTimes::empty(&g);
        st4.set(m, 1);
        st4.set(a, 3);
        let claim = Claim {
            kernel_length: 4,
            depth: Some(1),
            optimal: true,
            registers: None,
            code_size: None,
        };
        let bad = certify_claim(&g, &spec(), None, &st4, &claim).unwrap_err();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].code, Code::ForgedOptimality);
        // The honest claim passes.
        let honest = Claim {
            kernel_length: 4,
            depth: Some(1),
            optimal: false,
            registers: None,
            code_size: None,
        };
        certify_claim(&g, &spec(), None, &st4, &honest).expect("honest");
        // And a true optimality claim at L = 3 is confirmed.
        let tight = Claim {
            kernel_length: 3,
            depth: Some(1),
            optimal: true,
            registers: None,
            code_size: None,
        };
        certify_claim(&g, &spec(), None, &s, &tight).expect("confirmed optimal");
    }

    #[test]
    fn depth_claim_mismatch_is_e113() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 3);
        let claim = Claim {
            kernel_length: 3,
            depth: Some(7),
            optimal: false,
            registers: None,
            code_size: None,
        };
        let bad = certify_claim(&g, &spec(), None, &s, &claim).unwrap_err();
        assert_eq!(bad[0].code, Code::LengthClaimMismatch);
    }

    #[test]
    fn score_claim_mismatch_is_e115() {
        // Rotated iir kernel: m -> a gains a delay, a -> m loses its
        // one. Registers = Σ d_r = 1, depth 2 ⇒ code size = 2 × 1 = 2.
        let (g, m, a) = iir();
        let r = Retiming::from_set(&g, [m]);
        let mut s = StartTimes::empty(&g);
        s.set(m, 2);
        s.set(a, 1);
        let honest = Claim {
            kernel_length: 3,
            depth: Some(2),
            optimal: false,
            registers: Some(1),
            code_size: Some(2),
        };
        certify_claim(&g, &spec(), Some(&r), &s, &honest).expect("honest score components");
        // Forged register count.
        let forged_regs = Claim {
            registers: Some(0),
            ..honest
        };
        let bad = certify_claim(&g, &spec(), Some(&r), &s, &forged_regs).unwrap_err();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].code, Code::ScoreClaimMismatch);
        assert!(bad[0].message.contains("register"));
        // Forged code size.
        let forged_code = Claim {
            code_size: Some(99),
            ..honest
        };
        let bad = certify_claim(&g, &spec(), Some(&r), &s, &forged_code).unwrap_err();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].code, Code::ScoreClaimMismatch);
        assert!(bad[0].message.contains("prologue"));
        // Unclaimed components are not audited: the pre-objective claim
        // shape keeps certifying.
        let silent = Claim {
            registers: None,
            code_size: None,
            ..honest
        };
        certify_claim(&g, &spec(), Some(&r), &s, &silent).expect("silent components pass");
        // With no retiming, registers re-derive from the raw delays.
        let mut flat = StartTimes::empty(&g);
        flat.set(m, 1);
        flat.set(a, 3);
        let zero_ret = Claim {
            kernel_length: 3,
            depth: Some(1),
            optimal: false,
            registers: Some(1),
            code_size: Some(0),
        };
        certify_claim(&g, &spec(), None, &flat, &zero_ret).expect("raw-delay registers");
    }

    #[test]
    fn huge_times_do_not_stall_the_replay() {
        let mut g = Dfg::new("huge");
        let x = g.add_node("x", OpKind::Add, u32::MAX);
        g.add_edge(x, x, 1).unwrap();
        let mut s = StartTimes::empty(&g);
        s.set(x, 1);
        // Certification fails (tail far past 2L) but must return fast.
        let bad = certify(
            &g,
            &ResourceSpec::adders_multipliers(1, 0, false),
            None,
            &s,
            4,
        )
        .unwrap_err();
        assert!(!bad.is_empty());
    }

    #[test]
    fn certificate_json_is_stable() {
        let (g, m, a) = iir();
        let mut s = StartTimes::empty(&g);
        s.set(m, 1);
        s.set(a, 3);
        let c1 = certify(&g, &spec(), None, &s, 3).unwrap();
        let c2 = certify(&g, &spec(), None, &s, 3).unwrap();
        assert_eq!(c1.render_json(), c2.render_json());
        assert!(c1.render_json().starts_with("{\"kernel_length\":3,"));
    }
}
