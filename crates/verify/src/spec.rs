//! The verifier's own resource model.
//!
//! This deliberately re-states the semantics of the scheduler's
//! `ResourceSet` instead of importing it: the certificate checker must
//! not inherit a bug in the scheduler's occupancy or class-binding
//! logic. The shared contract is behavioural, pinned by tests, not a
//! shared type:
//!
//! * an operation kind binds to the **first** class that lists it;
//! * a non-pipelined unit is busy for every control step of the
//!   operation (`t` steps, at least one);
//! * a pipelined unit is contended for only in the start step.

use rotsched_dfg::{Dfg, OpKind};

/// One class of functional units as the verifier models it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitClass {
    /// Human-readable name, used in diagnostics (`adder`, `multiplier`).
    pub name: String,
    /// Number of units available per control step.
    pub units: u32,
    /// Whether a new operation can start on a busy unit every step.
    pub pipelined: bool,
    /// The operation kinds this class executes.
    pub ops: Vec<OpKind>,
}

impl UnitClass {
    /// Creates a class.
    #[must_use]
    pub fn new(name: impl Into<String>, units: u32, pipelined: bool, ops: Vec<OpKind>) -> Self {
        UnitClass {
            name: name.into(),
            units,
            pipelined,
            ops,
        }
    }

    /// Control steps one operation of duration `time` keeps a unit busy.
    #[must_use]
    pub fn busy_steps(&self, time: u32) -> u32 {
        if self.pipelined {
            1
        } else {
            time.max(1)
        }
    }
}

/// A complete resource allocation, from the verifier's point of view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceSpec {
    classes: Vec<UnitClass>,
}

impl ResourceSpec {
    /// Builds a spec from explicit classes. Binding order matters: an
    /// operation kind claimed by several classes goes to the first.
    #[must_use]
    pub fn new(classes: Vec<UnitClass>) -> Self {
        ResourceSpec { classes }
    }

    /// The paper's standard allocation: `adders` adder-class units
    /// (add/sub/cmp/shift/other, never pipelined) and `multipliers`
    /// multiplier-class units (mul/div), pipelined or not.
    #[must_use]
    pub fn adders_multipliers(adders: u32, multipliers: u32, pipelined_mult: bool) -> Self {
        ResourceSpec::new(vec![
            UnitClass::new(
                "adder",
                adders,
                false,
                vec![
                    OpKind::Add,
                    OpKind::Sub,
                    OpKind::Cmp,
                    OpKind::Shift,
                    OpKind::Other,
                ],
            ),
            UnitClass::new(
                "multiplier",
                multipliers,
                pipelined_mult,
                vec![OpKind::Mul, OpKind::Div],
            ),
        ])
    }

    /// An effectively unconstrained allocation.
    #[must_use]
    pub fn unlimited() -> Self {
        ResourceSpec::new(vec![UnitClass::new(
            "any",
            u32::MAX,
            false,
            OpKind::ALL.to_vec(),
        )])
    }

    /// The classes, in binding order.
    #[must_use]
    pub fn classes(&self) -> &[UnitClass] {
        &self.classes
    }

    /// Index of the class executing `op` (first match wins), if any.
    #[must_use]
    pub fn class_of(&self, op: OpKind) -> Option<usize> {
        self.classes.iter().position(|c| c.ops.contains(&op))
    }

    /// The resource lower bound on the kernel length: the busiest class's
    /// total occupancy divided by its unit count, rounded up. Classes
    /// with zero units and unbound operations are skipped (they are
    /// errors in their own right, reported elsewhere).
    #[must_use]
    pub fn resource_bound(&self, dfg: &Dfg) -> u64 {
        let mut per_class = vec![0_u64; self.classes.len()];
        for (_, node) in dfg.nodes() {
            if let Some(c) = self.class_of(node.op()) {
                per_class[c] += u64::from(self.classes[c].busy_steps(node.time()));
            }
        }
        per_class
            .iter()
            .zip(&self.classes)
            .filter(|&(_, class)| class.units > 0)
            .map(|(&occ, class)| occ.div_ceil(u64::from(class.units)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::Dfg;

    #[test]
    fn first_match_wins() {
        let spec = ResourceSpec::new(vec![
            UnitClass::new("a", 1, false, vec![OpKind::Add]),
            UnitClass::new("b", 1, false, vec![OpKind::Add, OpKind::Mul]),
        ]);
        assert_eq!(spec.class_of(OpKind::Add), Some(0));
        assert_eq!(spec.class_of(OpKind::Mul), Some(1));
        assert_eq!(spec.class_of(OpKind::Div), None);
    }

    #[test]
    fn busy_steps_respects_pipelining() {
        let p = UnitClass::new("p", 1, true, vec![OpKind::Mul]);
        let n = UnitClass::new("n", 1, false, vec![OpKind::Mul]);
        assert_eq!(p.busy_steps(3), 1);
        assert_eq!(n.busy_steps(3), 3);
        assert_eq!(n.busy_steps(0), 1);
    }

    #[test]
    fn resource_bound_counts_occupancy() {
        let mut g = Dfg::new("g");
        for i in 0..4 {
            g.add_node(format!("m{i}"), OpKind::Mul, 2);
        }
        assert_eq!(
            ResourceSpec::adders_multipliers(0, 2, false).resource_bound(&g),
            4
        );
        assert_eq!(
            ResourceSpec::adders_multipliers(0, 2, true).resource_bound(&g),
            2
        );
    }

    #[test]
    fn zero_unit_class_does_not_divide_by_zero() {
        let mut g = Dfg::new("g");
        g.add_node("m", OpKind::Mul, 1);
        assert_eq!(
            ResourceSpec::adders_multipliers(1, 0, false).resource_bound(&g),
            0
        );
    }
}
