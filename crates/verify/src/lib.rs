//! Independent static analysis for rotation scheduling: a DFG lint
//! engine and a certifying verifier.
//!
//! This crate deliberately shares **no scheduling code** with the
//! scheduler crates — its only dependency is the `rotsched-dfg` data
//! model. Retimed delays, reservation folding, precedence rules, and
//! lower bounds are all re-derived here from the paper's definitions,
//! so a certificate is evidence from an implementation diverse from
//! the optimizer that produced the schedule:
//!
//! * [`lint`](crate::lint::lint) — a registry of total analysis passes
//!   over a graph (plus optional resource spec and retiming), emitting
//!   structured [`Diagnostic`]s with stable `E0xx`/`W0xx` codes;
//! * [`certify`](crate::certify::certify) — proves a concrete
//!   (graph, resources, retiming, schedule) quadruple is a legal
//!   wrapped kernel, or returns every violation (`E1xx`);
//! * [`certify_pipeline`] — checks
//!   the prologue/kernel/epilogue expansion against the plain unrolled
//!   loop over a bounded iteration window;
//! * [`analyze`] — the static-analysis
//!   framework: critical-cycle extraction, resource saturation,
//!   register pressure, and chain depths over a shared traversal
//!   cache, rendered as a byte-stable `A0xx` bottleneck report.
//!
//! # Example
//!
//! ```
//! use rotsched_dfg::{Dfg, OpKind};
//! use rotsched_verify::{certify, ResourceSpec, StartTimes};
//!
//! let mut g = Dfg::new("iir");
//! let m = g.add_node("m", OpKind::Mul, 2);
//! let a = g.add_node("a", OpKind::Add, 1);
//! g.add_edge(m, a, 0).unwrap();
//! g.add_edge(a, m, 1).unwrap();
//!
//! let spec = ResourceSpec::adders_multipliers(1, 1, false);
//! let mut s = StartTimes::empty(&g);
//! s.set(m, 1);
//! s.set(a, 3);
//! let cert = certify(&g, &spec, None, &s, 3).expect("legal kernel");
//! assert!(cert.proves_optimal());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod bound;
pub mod certify;
pub mod diag;
pub mod lint;
pub mod pipeline;
pub mod spec;

pub use analysis::{
    analyze, analyze_in_order, AnalysisContext, AnalysisPass, AnalysisReport, ScheduleView,
    TraversalCache, ANALYSIS_PASSES,
};
pub use bound::{recurrence_bound, recurrence_forces};
pub use certify::{certify, certify_claim, Certificate, Claim, StartTimes};
pub use diag::{render_json_array, sort_canonical, Code, Diagnostic, Locus, Severity};
pub use lint::{has_errors, lint, lint_in_order, LintContext, LintOptions, LintPass, PASSES};
pub use pipeline::{certify_pipeline, expand, ExecEvent, PipelineCertificate};
pub use spec::{ResourceSpec, UnitClass};
