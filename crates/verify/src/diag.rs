//! Structured diagnostics with stable codes.
//!
//! Every finding the lint engine or the certificate checker produces is
//! a [`Diagnostic`]: a stable machine-readable [`Code`], a derived
//! [`Severity`], a [`Locus`] naming the graph element at fault, a
//! human-readable message, and an optional fix hint. The code space is
//! frozen — codes are never renumbered, only appended — so downstream
//! tooling can branch on them:
//!
//! * `E0xx` / `W0xx` — **input lints**: pathologies of the graph,
//!   resource spec, or retiming fed to the scheduler.
//! * `E1xx` — **certification violations**: a concrete (graph,
//!   resources, retiming, schedule) quadruple that is not a legal
//!   pipeline, or a claim about one that does not hold.
//! * `A0xx` — **analysis findings**: informational facts the static
//!   analysis passes extract (critical cycle, binding resource class,
//!   register-pressure peak); never failures.

use core::fmt;

use rotsched_dfg::{Dfg, NodeId};

/// Stable diagnostic codes. The numeric part is frozen: a code, once
/// shipped, always means the same condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// `E001` — a cycle of zero-delay edges: no schedule of any kind can
    /// order the nodes within one iteration.
    ZeroDelayCycle,
    /// `E002` — a node with computation time 0: it occupies no control
    /// step and breaks precedence and reservation accounting.
    ZeroTimeNode,
    /// `E003` — a delay or computation time large enough that schedule
    /// arithmetic saturates (≥ 2³⁰); results past that point are
    /// clamped, not exact.
    OverflowHazard,
    /// `E004` — an operation kind no resource class executes.
    UnboundOp,
    /// `E005` — operations bound to a class with zero units: no schedule
    /// can ever place them.
    EmptyClass,
    /// `E006` — a reference to a graph element that does not exist
    /// (dangling node id, zero-delay self loop, malformed input).
    MalformedInput,
    /// `E007` — an illegal retiming: some edge's retimed delay is
    /// negative.
    IllegalRetiming,
    /// `W001` — an isolated node (no edges at all).
    IsolatedNode,
    /// `W002` — a dead-end node: its result is never consumed.
    DeadEndNode,
    /// `W003` — a zero-delay chain deeper than the configured limit
    /// (combinational-depth hazard when operations are chained).
    ChainDepthHazard,
    /// `W004` — a resource class that executes no operation present in
    /// the graph.
    UnusedClass,
    /// `W005` — a multi-cycle operation longer than the recurrence bound:
    /// every bound-achieving schedule must wrap it across the iteration
    /// boundary.
    BoundaryCrossingOp,
    /// `W006` — a retiming that is not normalized (`min r ≠ 0`).
    UnnormalizedRetiming,
    /// `E101` — a node missing from a schedule that must be complete.
    Unscheduled,
    /// `E102` — a start step outside `1..` (control steps are 1-based).
    InvalidStart,
    /// `E103` — the certificate's retiming is illegal (negative retimed
    /// delay), so the schedule proves nothing about the original graph.
    CertIllegalRetiming,
    /// `E104` — a zero-retimed-delay precedence violated: the producer
    /// finishes after the consumer starts.
    PrecedenceViolation,
    /// `E105` — more units of a class demanded in one control step than
    /// exist (independent reservation replay).
    ResourceOverflow,
    /// `E107` — a node *starting* past the kernel boundary (only tails
    /// may wrap).
    StartPastKernel,
    /// `E108` — a tail spanning more than two kernel instances.
    TailTooLong,
    /// `E109` — a one-delay consumer of a wrapped node starting before
    /// the wrapped tail ends.
    WrapPrecedenceViolation,
    /// `E110` — the expanded loop executes some (node, iteration) pair
    /// zero or multiple times.
    ExecutionMultiplicity,
    /// `E111` — a cross-iteration dependency violated in absolute time
    /// in the expanded loop.
    UnrolledPrecedenceViolation,
    /// `E112` — an absolute control step of the expanded loop
    /// over-subscribes a resource class.
    UnrolledResourceOverflow,
    /// `E113` — a claimed schedule length that does not match the
    /// certified kernel length.
    LengthClaimMismatch,
    /// `E114` — a claimed optimality verdict that neither the recurrence
    /// bound nor the resource bound supports.
    ForgedOptimality,
    /// `E115` — a claimed secondary score component (static register
    /// count or prologue/epilogue code size) that does not match the
    /// value re-derived from the certified retiming.
    ScoreClaimMismatch,
    /// `A001` — a critical cycle: a cycle achieving the maximum
    /// time-to-delay ratio, i.e. the recurrence bottleneck every further
    /// rotation is limited by.
    CriticalCycle,
    /// `A002` — a saturated resource class: the class whose utilization
    /// binds the kernel length under the given spec (and schedule, when
    /// one is analyzed).
    SaturatedClass,
    /// `A003` — the register-pressure peak: the kernel step holding the
    /// maximum number of simultaneously live values.
    RegisterPressurePeak,
    /// `A004` — the deepest zero-delay chain in the graph (the
    /// combinational critical path under the current retiming).
    DeepestChain,
    /// `A005` — which lower bound binds the schedule: the recurrence
    /// bound (critical cycle) or the resource bound (saturated class).
    BindingConstraint,
}

impl Code {
    /// The stable textual code, e.g. `"E001"`.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::ZeroDelayCycle => "E001",
            Code::ZeroTimeNode => "E002",
            Code::OverflowHazard => "E003",
            Code::UnboundOp => "E004",
            Code::EmptyClass => "E005",
            Code::MalformedInput => "E006",
            Code::IllegalRetiming => "E007",
            Code::IsolatedNode => "W001",
            Code::DeadEndNode => "W002",
            Code::ChainDepthHazard => "W003",
            Code::UnusedClass => "W004",
            Code::BoundaryCrossingOp => "W005",
            Code::UnnormalizedRetiming => "W006",
            Code::Unscheduled => "E101",
            Code::InvalidStart => "E102",
            Code::CertIllegalRetiming => "E103",
            Code::PrecedenceViolation => "E104",
            Code::ResourceOverflow => "E105",
            Code::StartPastKernel => "E107",
            Code::TailTooLong => "E108",
            Code::WrapPrecedenceViolation => "E109",
            Code::ExecutionMultiplicity => "E110",
            Code::UnrolledPrecedenceViolation => "E111",
            Code::UnrolledResourceOverflow => "E112",
            Code::LengthClaimMismatch => "E113",
            Code::ForgedOptimality => "E114",
            Code::ScoreClaimMismatch => "E115",
            Code::CriticalCycle => "A001",
            Code::SaturatedClass => "A002",
            Code::RegisterPressurePeak => "A003",
            Code::DeepestChain => "A004",
            Code::BindingConstraint => "A005",
        }
    }

    /// The severity implied by the code (`E` = error, `W` = warning,
    /// `A` = informational analysis finding).
    #[must_use]
    pub const fn severity(self) -> Severity {
        match self.as_str().as_bytes()[0] {
            b'W' => Severity::Warning,
            b'A' => Severity::Info,
            _ => Severity::Error,
        }
    }

    /// A stable one-line summary of the condition, suitable for a code
    /// reference table.
    #[must_use]
    pub const fn summary(self) -> &'static str {
        match self {
            Code::ZeroDelayCycle => "cycle of zero-delay edges",
            Code::ZeroTimeNode => "node with zero computation time",
            Code::OverflowHazard => "delay or time large enough to saturate arithmetic",
            Code::UnboundOp => "operation with no resource class",
            Code::EmptyClass => "operations bound to a zero-unit class",
            Code::MalformedInput => "reference to a nonexistent graph element",
            Code::IllegalRetiming => "retiming with a negative retimed delay",
            Code::IsolatedNode => "node with no edges",
            Code::DeadEndNode => "node whose result is never consumed",
            Code::ChainDepthHazard => "zero-delay chain deeper than the limit",
            Code::UnusedClass => "resource class executing no operation of the graph",
            Code::BoundaryCrossingOp => "operation longer than the recurrence bound",
            Code::UnnormalizedRetiming => "retiming with nonzero minimum",
            Code::Unscheduled => "node missing from the schedule",
            Code::InvalidStart => "start step outside 1-based range",
            Code::CertIllegalRetiming => "certificate retiming is illegal",
            Code::PrecedenceViolation => "zero-delay precedence violated",
            Code::ResourceOverflow => "reservation replay over-subscribes a class",
            Code::StartPastKernel => "node starts past the kernel boundary",
            Code::TailTooLong => "tail spans more than two kernel instances",
            Code::WrapPrecedenceViolation => "one-delay consumer starts inside a wrapped tail",
            Code::ExecutionMultiplicity => "expanded loop misses or repeats an execution",
            Code::UnrolledPrecedenceViolation => "unrolled-loop dependency violated",
            Code::UnrolledResourceOverflow => "unrolled-loop step over-subscribes a class",
            Code::LengthClaimMismatch => "claimed length differs from the certified kernel",
            Code::ForgedOptimality => "optimality claim unsupported by any bound",
            Code::ScoreClaimMismatch => "claimed score component differs from the re-derived value",
            Code::CriticalCycle => "cycle achieving the maximum time-to-delay ratio",
            Code::SaturatedClass => "resource class whose utilization binds the kernel",
            Code::RegisterPressurePeak => "kernel step with the most simultaneously live values",
            Code::DeepestChain => "deepest zero-delay chain under the current retiming",
            Code::BindingConstraint => "which lower bound limits the schedule length",
        }
    }

    /// Every code, in code order. The reference table the documentation
    /// and the JSON schema tests iterate.
    pub const ALL: [Code; 32] = [
        Code::ZeroDelayCycle,
        Code::ZeroTimeNode,
        Code::OverflowHazard,
        Code::UnboundOp,
        Code::EmptyClass,
        Code::MalformedInput,
        Code::IllegalRetiming,
        Code::IsolatedNode,
        Code::DeadEndNode,
        Code::ChainDepthHazard,
        Code::UnusedClass,
        Code::BoundaryCrossingOp,
        Code::UnnormalizedRetiming,
        Code::Unscheduled,
        Code::InvalidStart,
        Code::CertIllegalRetiming,
        Code::PrecedenceViolation,
        Code::ResourceOverflow,
        Code::StartPastKernel,
        Code::TailTooLong,
        Code::WrapPrecedenceViolation,
        Code::ExecutionMultiplicity,
        Code::UnrolledPrecedenceViolation,
        Code::UnrolledResourceOverflow,
        Code::LengthClaimMismatch,
        Code::ForgedOptimality,
        Code::ScoreClaimMismatch,
        Code::CriticalCycle,
        Code::SaturatedClass,
        Code::RegisterPressurePeak,
        Code::DeepestChain,
        Code::BindingConstraint,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The input or schedule is unusable as-is.
    Error,
    /// Suspicious but not fatal; the scheduler will still run.
    Warning,
    /// An extracted fact, not a problem (analysis findings).
    Info,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The graph element a diagnostic points at.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locus {
    /// The whole input (no single element at fault).
    Graph,
    /// One node.
    Node(NodeId),
    /// One edge, identified by its endpoints (parallel edges share a
    /// locus; the message disambiguates).
    Edge {
        /// Producer endpoint.
        from: NodeId,
        /// Consumer endpoint.
        to: NodeId,
    },
    /// One control step of the kernel (reservation-replay findings).
    Step(u32),
    /// One absolute control step of the expanded loop (may be
    /// non-positive during the prologue).
    AbsoluteStep(i64),
    /// One resource class, by name.
    Class(String),
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// What the finding points at.
    pub locus: Locus,
    /// Human-readable explanation with concrete values.
    pub message: String,
    /// A suggested fix, when one is mechanical.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a hint.
    #[must_use]
    pub fn new(code: Code, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            locus,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The severity derived from the code.
    #[must_use]
    pub const fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the locus with human-readable node names from `dfg`.
    #[must_use]
    pub fn locus_text(&self, dfg: &Dfg) -> String {
        match &self.locus {
            Locus::Graph => "graph".to_owned(),
            Locus::Node(v) => format!("node {}", node_label(dfg, *v)),
            Locus::Edge { from, to } => format!(
                "edge {} -> {}",
                node_label(dfg, *from),
                node_label(dfg, *to)
            ),
            Locus::Step(cs) => format!("control step {cs}"),
            Locus::AbsoluteStep(t) => format!("absolute step {t}"),
            Locus::Class(name) => format!("class {name}"),
        }
    }

    /// One text line: `E001 error [locus] message (hint: ...)`.
    #[must_use]
    pub fn render_text(&self, dfg: &Dfg) -> String {
        let mut line = format!(
            "{} {} [{}] {}",
            self.code,
            self.severity(),
            self.locus_text(dfg),
            self.message
        );
        if let Some(hint) = &self.hint {
            line.push_str(&format!(" (hint: {hint})"));
        }
        line
    }

    /// One JSON object with a fixed key order:
    /// `{"code":…,"severity":…,"locus":…,"message":…,"hint":…}`.
    /// The output is byte-stable for equal inputs.
    #[must_use]
    pub fn render_json(&self, dfg: &Dfg) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity()));
        out.push_str(",\"locus\":");
        match &self.locus {
            Locus::Graph => out.push_str("{\"kind\":\"graph\"}"),
            Locus::Node(v) => out.push_str(&format!(
                "{{\"kind\":\"node\",\"index\":{},\"name\":{}}}",
                v.index(),
                json_string(dfg.node(*v).name())
            )),
            Locus::Edge { from, to } => out.push_str(&format!(
                "{{\"kind\":\"edge\",\"from\":{},\"to\":{}}}",
                json_string(dfg.node(*from).name()),
                json_string(dfg.node(*to).name())
            )),
            Locus::Step(cs) => out.push_str(&format!("{{\"kind\":\"step\",\"cs\":{cs}}}")),
            Locus::AbsoluteStep(t) => {
                out.push_str(&format!("{{\"kind\":\"absolute-step\",\"t\":{t}}}"));
            }
            Locus::Class(name) => out.push_str(&format!(
                "{{\"kind\":\"class\",\"name\":{}}}",
                json_string(name)
            )),
        }
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match &self.hint {
            Some(hint) => out.push_str(&format!(",\"hint\":{}", json_string(hint))),
            None => out.push_str(",\"hint\":null"),
        }
        out.push('}');
        out
    }
}

/// `name` when it is unique enough, otherwise `name#index`.
fn node_label(dfg: &Dfg, v: NodeId) -> String {
    format!("{}#{}", dfg.node(v).name(), v.index())
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a diagnostic list as one stable JSON array (sorted by the
/// caller; this function preserves order).
#[must_use]
pub fn render_json_array(diags: &[Diagnostic], dfg: &Dfg) -> String {
    let items: Vec<String> = diags.iter().map(|d| d.render_json(dfg)).collect();
    format!("[{}]", items.join(","))
}

/// Sorts diagnostics into the canonical report order: errors before
/// warnings before info, then by code, then by locus, then by message
/// and hint. The full key makes the order a function of the finding
/// *set* alone — independent of pass registration order — so rendered
/// reports are byte-stable however the findings were produced.
pub fn sort_canonical(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity(), a.code, &a.locus, &a.message, &a.hint).cmp(&(
            b.severity(),
            b.code,
            &b.locus,
            &b.message,
            &b.hint,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsched_dfg::OpKind;

    fn graph() -> Dfg {
        let mut g = Dfg::new("g");
        g.add_node("a", OpKind::Add, 1);
        g.add_node("b", OpKind::Mul, 2);
        g
    }

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for code in Code::ALL {
            let s = code.as_str();
            assert!(seen.insert(s), "duplicate code {s}");
            assert_eq!(s.len(), 4);
            assert!(s.starts_with('E') || s.starts_with('W') || s.starts_with('A'));
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn severity_follows_the_code_letter() {
        assert_eq!(Code::ZeroDelayCycle.severity(), Severity::Error);
        assert_eq!(Code::IsolatedNode.severity(), Severity::Warning);
        assert_eq!(Code::CriticalCycle.severity(), Severity::Info);
    }

    #[test]
    fn canonical_sort_is_total_on_equal_loci() {
        // Two findings with the same (severity, code, locus) still have
        // a deterministic order: the message tie-breaks.
        let mk = |msg: &str| Diagnostic::new(Code::CriticalCycle, Locus::Graph, msg);
        let mut a = vec![mk("beta"), mk("alpha")];
        let mut b = vec![mk("alpha"), mk("beta")];
        sort_canonical(&mut a);
        sort_canonical(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].message, "alpha");
    }

    #[test]
    fn json_is_escaped_and_ordered() {
        let g = graph();
        let d = Diagnostic::new(
            Code::ZeroTimeNode,
            Locus::Node(NodeId::from_index(0)),
            "has \"zero\" time",
        )
        .with_hint("set time >= 1");
        let json = d.render_json(&g);
        assert!(json.starts_with("{\"code\":\"E002\",\"severity\":\"error\",\"locus\":"));
        assert!(json.contains("\\\"zero\\\""));
        assert!(json.contains("\"hint\":\"set time >= 1\""));
    }

    #[test]
    fn canonical_sort_puts_errors_first() {
        let mut diags = vec![
            Diagnostic::new(Code::IsolatedNode, Locus::Node(NodeId::from_index(1)), "w"),
            Diagnostic::new(Code::ZeroTimeNode, Locus::Node(NodeId::from_index(0)), "e"),
        ];
        sort_canonical(&mut diags);
        assert_eq!(diags[0].code, Code::ZeroTimeNode);
    }

    #[test]
    fn text_rendering_names_the_locus() {
        let g = graph();
        let d = Diagnostic::new(
            Code::DeadEndNode,
            Locus::Node(NodeId::from_index(1)),
            "never consumed",
        );
        let text = d.render_text(&g);
        assert!(text.contains("W002 warning [node b#1]"), "{text}");
    }
}
